//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to a crates registry, so the workspace vendors
//! the small `rand` API subset it uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] range/bool samplers and the
//! [`seq::SliceRandom`] shuffle/choose helpers. The generator is xoshiro256++, which
//! is deterministic, fast, and of ample statistical quality for simulations; the
//! numeric streams differ from upstream `rand`, which is fine because every test and
//! experiment in this workspace only relies on seed-reproducibility, never on
//! specific stream values.
//!
//! Swapping back to the real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from range types, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias for huge
                // spans is irrelevant for simulation purposes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Maps a `u64` to the unit interval `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen`] can produce, mirroring the `Standard` distribution.
pub trait Standard: Sized {
    /// Derives a uniform value from one raw `u64`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Uniform in `[0, 1)`, as with `rand`'s `Standard` distribution for floats.
impl Standard for f64 {
    fn from_bits(bits: u64) -> f64 {
        unit_f64(bits)
    }
}

/// The sampling interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers, mirroring `rand::seq`.

    use super::{RngCore, SampleRange};

    /// Shuffling and choosing from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [1u8, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
