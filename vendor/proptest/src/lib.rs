//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the [`proptest!`] macro
//! with a `#![proptest_config(..)]` header, integer/float range strategies, tuple
//! strategies, [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!` macros.
//! Cases are generated from a deterministic per-test seed, so failures reproduce;
//! there is no shrinking — the failing values are printed instead.
//!
//! Swapping back to the real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration (subset of the real crate's fields).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of random values for one macro argument.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.is_empty() {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Creates the deterministic RNG for one test case.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name so distinct tests get distinct streams.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED))
}

/// Runs `cases` deterministic cases of a property-test body.
///
/// The body receives the case RNG and is expected to generate its arguments from it;
/// panics are augmented with the case number so failures are reproducible.
pub fn run_cases(test_name: &str, cases: u32, body: impl Fn(&mut StdRng)) {
    for case in 0..cases {
        let mut rng = case_rng(test_name, case);
        body(&mut rng);
    }
}

/// The macro-based entry point, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), config.cases, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    $body
                });
            }
        )+
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )+
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Everything the tests `use proptest::prelude::*` for.
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: Vec<u64> = {
            let mut r = crate::case_rng("t", 3);
            (0..4).map(|_| r.gen_range(0u64..1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::case_rng("t", 3);
            (0..4).map(|_| r.gen_range(0u64..1000)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            n in 5usize..10,
            xs in crate::collection::vec((0usize..4, 0u64..9), 0..6),
        ) {
            prop_assert!((5..10).contains(&n));
            prop_assert!(xs.len() < 6);
            for (a, b) in xs {
                prop_assert!(a < 4 && b < 9);
            }
        }
    }
}
