//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_with_input`/`bench_function`, `Bencher::iter`,
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`] macros. Each
//! benchmark runs its closure `sample_size` times after one warm-up and prints the
//! mean wall-clock time — no statistics, plotting, or baseline storage.
//!
//! Swapping back to the real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id like `"{function}/{parameter}"`.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// The per-benchmark timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup {
    group: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.name, &b);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(name, &b);
    }

    /// Prints the group's trailing separator (kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, name: &str, b: &Bencher) {
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.total / b.iters as u32
        };
        println!(
            "bench {:<40} {:>12.3?}/iter ({} iters)",
            format!("{}/{name}", self.group),
            mean,
            b.iters
        );
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            group: name.to_string(),
            samples: 10,
        }
    }
}

/// Declares a function running the listed benchmarks, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        // One warm-up plus five timed samples.
        assert_eq!(runs, 6);
        g.finish();
    }
}
