//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small subset the workspace uses on top of `std::thread::scope`:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — work is split into one
//!   contiguous chunk per worker thread; each worker writes its results into a
//!   disjoint region of the output, so ordering matches the input exactly (as
//!   with real rayon's indexed parallel iterators) and no unsafe code is needed.
//! * [`scope`] / [`Scope::spawn`] — structured task spawning with the same
//!   signature shape as rayon's, for callers that partition mutable state with
//!   `split_at_mut` and hand each chunk to its own task.
//!
//! Like the real crate, the worker count honors the `RAYON_NUM_THREADS`
//! environment variable (a positive integer) and otherwise defaults to the
//! number of available cores.
//!
//! Swapping back to the real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Returns the number of worker threads used for parallel maps and scopes.
///
/// Reads `RAYON_NUM_THREADS` first (any positive integer; mirroring real
/// rayon's thread-pool sizing), then falls back to
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(threads) = value.trim().parse::<usize>() {
            if threads >= 1 {
                return threads;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A structured-concurrency scope: tasks spawned on it are joined before
/// [`scope`] returns (a thin wrapper over [`std::thread::scope`] exposing the
/// rayon `Scope` API shape).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; the task is joined
    /// (and any panic propagated) when the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a [`Scope`] on which tasks can be spawned; returns once every
/// spawned task has finished. Panics in tasks propagate to the caller.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator: the result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Runs the map on all worker threads and collects the results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect::<Vec<U>>().into();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| scope.spawn(move || items.iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("parallel map worker panicked"));
            }
        });
        out.into_iter().flatten().collect::<Vec<U>>().into()
    }
}

/// Borrowing conversion into a parallel iterator (`rayon::prelude` trait).
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    //! The traits needed for `x.par_iter().map(..).collect()`.
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..256).collect();
        let _: Vec<()> = v
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        // With >1 core available the chunks must land on distinct worker threads.
        if super::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn scope_joins_spawned_tasks_and_allows_disjoint_mutation() {
        let mut data = vec![0usize; 64];
        let (lo, hi) = data.split_at_mut(32);
        super::scope(|s| {
            s.spawn(|_| {
                for (i, slot) in lo.iter_mut().enumerate() {
                    *slot = i;
                }
            });
            s.spawn(|_| {
                for (i, slot) in hi.iter_mut().enumerate() {
                    *slot = 32 + i;
                }
            });
        });
        assert_eq!(data, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
