//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small parallel-iterator subset the workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — on top of `std::thread::scope`.
//! Work is split into one contiguous chunk per available core; each worker writes its
//! results into a disjoint region of the output, so ordering matches the input exactly
//! (as with real rayon's indexed parallel iterators) and no unsafe code is needed.
//!
//! Swapping back to the real crate is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;

/// Returns the number of worker threads used for parallel maps.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator: the result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Applies `f` to every element in parallel, preserving order.
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        U: Send,
        F: Fn(&'a T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> ParMap<'a, T, F> {
    /// Runs the map on all available cores and collects the results in input order.
    pub fn collect<C: From<Vec<U>>>(self) -> C {
        let n = self.items.len();
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect::<Vec<U>>().into();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|items| scope.spawn(move || items.iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("parallel map worker panicked"));
            }
        });
        out.into_iter().flatten().collect::<Vec<U>>().into()
    }
}

/// Borrowing conversion into a parallel iterator (`rayon::prelude` trait).
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    //! The traits needed for `x.par_iter().map(..).collect()`.
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let v: Vec<usize> = (0..256).collect();
        let _: Vec<()> = v
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        // With >1 core available the chunks must land on distinct worker threads.
        if super::current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }
}
