//! A multi-seed churn sweep: how much overlay still forms when nodes join late?
//!
//! Runs the registered `join-churn` scenario (15% of a cycle's nodes join with
//! bounded initial knowledge, staggered over the first 40% of construction) across
//! many seeds — in parallel via rayon — and prints the aggregated JSON report. The
//! sweep is deterministic: the same seeds produce a byte-identical report, on any
//! number of worker threads.
//!
//! Run with `cargo run --release --example churn_sweep [scenario] [seeds]`, e.g.
//! `cargo run --release --example churn_sweep join-churn 32`. Available scenarios
//! are listed by passing `list`.

use overlay_networks::scenarios::{registry, report, Sweep};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "join-churn".to_string());
    let seeds: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    if name == "list" {
        println!("registered scenarios:");
        for s in registry() {
            println!("  {:<22} {}", s.name, s.description);
        }
        return;
    }
    let Some(scenario) = overlay_networks::scenarios::find(&name) else {
        eprintln!("unknown scenario {name:?}; try `churn_sweep list`");
        std::process::exit(1);
    };

    let sweep = Sweep::over_seeds(scenario, 0, seeds);
    let sequential = sweep.run_sequential();
    let parallel = sweep.run();

    assert_eq!(
        sequential.to_json().render(),
        parallel.to_json().render(),
        "parallel and sequential sweeps must agree bit-for-bit"
    );

    eprintln!("# {}", parallel.summary());
    // Ad-hoc runs land next to — not on top of — the committed 16-seed regression
    // baselines in `reports/`, which only `sweep_runner` (and the full experiments
    // run) regenerate.
    match report::write_report(&parallel, "reports/adhoc") {
        Ok(path) => eprintln!("# report persisted to {}", path.display()),
        Err(e) => eprintln!("# could not persist report: {e}"),
    }
    eprintln!(
        "# sequential wall: {:?}; parallel wall: {:?} on {} worker(s) — speedup scales \
         with cores, this machine has {}",
        sequential.wall,
        parallel.wall,
        parallel.workers,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    );
    println!("{}", parallel.to_json_string());
}
