//! Hybrid-network analytics on an arbitrary-degree, possibly disconnected network.
//!
//! A sensor deployment (the "Internet of things" motivation from the introduction) is
//! modelled as several clusters of very different shapes — a dense hub-and-spoke
//! cluster, a mesh, and a chain — some of which have lost connectivity to the others.
//! Using the hybrid-model algorithms (Theorems 1.2, 1.3, 1.4 and 1.5) the deployment
//! figures out its component structure, per-component spanning trees, single points of
//! failure, and a maximal independent set to use as a backbone of cluster heads.
//!
//! Run with `cargo run --example hybrid_analytics`.

use overlay_networks::graph::{generators, sequential};
use overlay_networks::hybrid::{
    ComponentsConfig, DistributedBiconnectivity, HybridComponents, HybridMis, HybridSpanningTree,
};

fn main() {
    // Three independent clusters: a star (hub-and-spoke), a grid (mesh), a chain of
    // rings (pipeline with articulation points).
    let network = generators::disjoint_union(&[
        generators::star(200),
        generators::grid(12, 12),
        generators::chained_cycles(4, 8),
    ]);
    let n = network.node_count();
    println!("== Hybrid-network analytics ==");
    println!(
        "deployment: {n} sensors, {} links, max degree {}",
        network.to_undirected().edge_count(),
        network.to_undirected().max_degree()
    );

    // Theorem 1.2: connected components + well-formed tree per component.
    let components = HybridComponents::new(ComponentsConfig {
        seed: 1,
        ..ComponentsConfig::default()
    })
    .run(&network)
    .expect("component construction succeeds");
    println!(
        "\n[Theorem 1.2] {} components found in {} rounds",
        components.component_count(),
        components.rounds
    );
    for (tree, members) in components.trees.iter().zip(&components.members) {
        println!(
            "  component of size {:4}: overlay tree height {}, degree ≤ {}",
            members.len(),
            tree.height(),
            tree.max_degree()
        );
    }

    // Theorems 1.3 and 1.4 operate on connected graphs; analyse the chained-cycles
    // cluster, which is the one with articulation points.
    let pipeline = generators::chained_cycles(4, 8);
    let spanning = HybridSpanningTree::default()
        .run(&pipeline)
        .expect("spanning tree succeeds");
    println!(
        "\n[Theorem 1.3] pipeline cluster: spanning tree over {} sensors in {} rounds",
        pipeline.node_count(),
        spanning.rounds
    );

    let bicc = DistributedBiconnectivity::default()
        .run(&pipeline)
        .expect("biconnectivity succeeds");
    println!(
        "[Theorem 1.4] pipeline cluster: {} biconnected blocks, cut sensors {:?}, {} bridges ({} rounds)",
        bicc.components.len(),
        bicc.cut_vertices.iter().map(|v| v.raw()).collect::<Vec<_>>(),
        bicc.bridges.len(),
        bicc.rounds
    );
    if !bicc.cut_vertices.is_empty() {
        println!("  -> these sensors are single points of failure; duplicate them first.");
    }

    // Theorem 1.5: cluster heads via MIS on the whole deployment.
    let mis = HybridMis::default().run(&network);
    assert!(sequential::is_maximal_independent_set(
        &network.to_undirected(),
        &mis.mis
    ));
    println!(
        "\n[Theorem 1.5] cluster-head election: {} heads, {} rounds ({} shattering + {} finishing)",
        mis.mis.len(),
        mis.total_rounds(),
        mis.shattering_rounds,
        mis.finishing_rounds
    );
    println!(
        "  shattering left {} undecided sensors (largest leftover component: {})",
        mis.undecided_after_shattering, mis.largest_undecided_component
    );
}
