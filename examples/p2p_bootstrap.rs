//! A peer-to-peer bootstrap scenario — over the simulator or a real transport.
//!
//! The introduction motivates the algorithm with logical networks (cryptocurrencies,
//! IoT fleets, VPNs) that must organise themselves starting from whatever sparse
//! knowledge graph the join procedure left behind. This example runs such a
//! bootstrap: peers start on a sparse, high-diameter "who referred whom" graph, build
//! the overlay, and then use the resulting well-formed tree for the two everyday tasks
//! the paper lists — aggregation and broadcast — comparing against doing the same over
//! the raw referral graph.
//!
//! The same protocol code runs over three media (see `overlay-net`):
//!
//! ```text
//! cargo run --example p2p_bootstrap -- [n] [--seed S]         # lockstep simulator
//! cargo run --example p2p_bootstrap -- [n] --backend channel  # a thread per peer
//! cargo run --example p2p_bootstrap -- [n] --backend tcp --spawn --procs 4
//!     # real multi-process bootstrap: spawns procs-1 child processes and meshes
//!     # them over localhost TCP; every process runs n/procs peers
//! ```
//!
//! Manual multi-process form (run each in its own terminal):
//!
//! ```text
//! cargo run --example p2p_bootstrap -- 128 --backend tcp --listen 127.0.0.1:7700 --procs 4
//! cargo run --example p2p_bootstrap -- --backend tcp --join 127.0.0.1:7700   # ×3
//! ```
//!
//! Joiners need no `n`/`--seed`: the listener packs the graph seed into the
//! roster's config word, so every process rebuilds the identical referral
//! graph and the builds stay bit-equal. `--load J` repeats the bootstrap J
//! times (fresh listener + freshly spawned joiners each wave) to exercise the
//! concurrent-join path under load; per-wave wall-clocks are printed.

use overlay_networks::baselines::flooding;
use overlay_networks::core::{ExpanderParams, OverlayBuilder, OverlayResult};
use overlay_networks::graph::{analysis, DiGraph, NodeId};
use overlay_networks::net::{Backend, ChannelBackend, NetRunner, TcpBackend, TcpHost};
use std::time::{Duration, Instant};

/// Builds a referral graph: every joining peer knows only the peer that invited it,
/// plus an occasional extra contact — a random tree with a few shortcuts.
///
/// Degrees are kept within `max_degree`, the cap the NCC0 pipeline supports for
/// the initial knowledge graph ([`ExpanderParams::max_initial_degree`]).
fn referral_graph(n: usize, seed: u64, max_degree: usize) -> DiGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    let mut deg = vec![0usize; n];
    for v in 1..n {
        // Preferentially refer from a recent peer so the tree is path-like
        // (deep); fall back to any peer with spare degree when the recent
        // window is saturated (one always exists: each join adds at most two
        // degree units per endpoint).
        let lo = v.saturating_sub(4);
        let recent: Vec<usize> = (lo..v).filter(|&r| deg[r] < max_degree).collect();
        let referrer = if recent.is_empty() {
            (0..v)
                .rev()
                .find(|&r| deg[r] < max_degree)
                .expect("some peer has spare degree")
        } else {
            recent[rng.gen_range(0..recent.len())]
        };
        g.add_edge(NodeId::from(referrer), NodeId::from(v));
        deg[referrer] += 1;
        deg[v] += 1;
        if rng.gen_bool(0.05) {
            let shortcut = rng.gen_range(0..v);
            if shortcut != referrer && deg[shortcut] < max_degree && deg[v] < max_degree {
                g.add_edge(NodeId::from(shortcut), NodeId::from(v));
                deg[shortcut] += 1;
                deg[v] += 1;
            }
        }
    }
    g
}

#[derive(Clone)]
struct Options {
    n: usize,
    seed: u64,
    backend: String,
    listen: String,
    join: Option<String>,
    procs: usize,
    spawn: bool,
    load: usize,
}

fn parse_args() -> Options {
    let mut opts = Options {
        n: 1024,
        seed: 7,
        backend: "sim".into(),
        listen: String::new(),
        join: None,
        procs: 4,
        spawn: false,
        load: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => opts.seed = value("--seed").parse().expect("--seed"),
            "--backend" => opts.backend = value("--backend"),
            "--listen" => opts.listen = value("--listen"),
            "--join" => opts.join = Some(value("--join")),
            "--procs" => opts.procs = value("--procs").parse().expect("--procs"),
            "--spawn" => opts.spawn = true,
            "--load" => opts.load = value("--load").parse().expect("--load"),
            other => {
                opts.n = other
                    .parse()
                    .unwrap_or_else(|_| panic!("unknown argument {other}"))
            }
        }
    }
    opts
}

const TIMEOUT: Duration = Duration::from_secs(60);

/// A joiner process: everything it needs to know arrives in the roster.
fn run_joiner(addr: &str) {
    let backend = TcpBackend::join(addr, TIMEOUT).expect("join listener");
    let (rank, n, seed) = (backend.rank(), backend.n(), backend.config());
    let params = ExpanderParams::for_n(n).with_seed(11);
    let g = referral_graph(n, seed, params.max_initial_degree());
    let builder = OverlayBuilder::new(params);
    let started = Instant::now();
    let mut runner = NetRunner::new(backend);
    let result = builder
        .build_over(&g, &mut runner)
        .expect("construction succeeds w.h.p.");
    runner.shutdown().expect("quiescence handshake");
    println!(
        "[rank {rank}] built the overlay in {:.2?}: {} rounds, tree height {}, valid = {}",
        started.elapsed(),
        result.rounds.total(),
        result.tree.height(),
        result.tree.is_valid()
    );
    assert!(result.tree.is_valid(), "finalize validation failed");
}

/// One TCP bootstrap wave from the listener's side; returns the result and the
/// accept+build wall-clock.
fn run_tcp_listener(
    opts: &Options,
    g: &DiGraph,
    builder: &OverlayBuilder,
) -> (OverlayResult, Duration) {
    let bind_to = if opts.listen.is_empty() {
        "127.0.0.1:0"
    } else {
        opts.listen.as_str()
    };
    let host = TcpHost::bind(bind_to).expect("bind listener");
    let addr = host.local_addr().expect("listener address").to_string();
    println!(
        "[rank 0] listening on {addr}, waiting for {} joiners",
        opts.procs - 1
    );
    let mut children = Vec::new();
    if opts.spawn {
        let exe = std::env::current_exe().expect("own executable path");
        for _ in 1..opts.procs {
            children.push(
                std::process::Command::new(&exe)
                    .args(["--backend", "tcp", "--join", &addr])
                    .spawn()
                    .expect("spawn joiner process"),
            );
        }
    }
    let started = Instant::now();
    let backend = host
        .accept(opts.procs, opts.n, opts.seed, TIMEOUT)
        .expect("mesh formation");
    let mut runner = NetRunner::new(backend);
    let result = builder
        .build_over(g, &mut runner)
        .expect("construction succeeds w.h.p.");
    runner.shutdown().expect("quiescence handshake");
    let elapsed = started.elapsed();
    for mut child in children {
        let status = child.wait().expect("joiner exit status");
        assert!(status.success(), "a joiner process failed: {status}");
    }
    (result, elapsed)
}

fn main() {
    let opts = parse_args();

    // Joiners learn n and the graph seed from the roster; nothing to set up.
    if let Some(addr) = &opts.join {
        run_joiner(addr);
        return;
    }

    let Options { n, seed, .. } = opts;
    let params = ExpanderParams::for_n(n).with_seed(11);
    let g = referral_graph(n, seed, params.max_initial_degree());
    let und = g.to_undirected();
    println!("== P2P bootstrap ({} backend) ==", opts.backend);
    println!(
        "referral graph: n = {n}, diameter = {:?}, max degree = {}",
        analysis::diameter(&und),
        und.max_degree()
    );

    // How long would a broadcast take on the raw referral graph?
    let raw_broadcast =
        flooding::rounds_until_all_know_minimum(&g, 1, 4 * n).expect("graph is connected");
    println!("broadcast over the raw referral graph: {raw_broadcast} rounds (Θ(diameter))");

    // Build the overlay over the selected medium.
    let builder = OverlayBuilder::new(params);
    let mut result = None;
    for wave in 0..opts.load.max(1) {
        let started = Instant::now();
        let (r, build_time) = match opts.backend.as_str() {
            "sim" => {
                let r = builder.build(&g).expect("construction succeeds w.h.p.");
                (r, started.elapsed())
            }
            "channel" => {
                let mut runner = NetRunner::new(ChannelBackend::new(n));
                let r = builder
                    .build_over(&g, &mut runner)
                    .expect("construction succeeds w.h.p.");
                (r, started.elapsed())
            }
            "tcp" => run_tcp_listener(&opts, &g, &builder),
            other => panic!("unknown backend {other} (expected sim, channel or tcp)"),
        };
        if opts.load > 1 {
            println!("wave {wave}: bootstrap wall-clock {build_time:.2?}");
        } else {
            println!("bootstrap wall-clock: {build_time:.2?}");
        }
        result = Some(r);
    }
    let result = result.expect("at least one wave ran");
    let tree = &result.tree;
    assert!(tree.is_valid(), "finalize validation failed");
    println!(
        "\noverlay construction: {} rounds, {} messages delivered",
        result.rounds.total(),
        result.messages.total_delivered
    );
    println!(
        "well-formed tree: degree ≤ {}, height {} (log₂ n = {:.1})",
        tree.max_degree(),
        tree.height(),
        (n as f64).log2()
    );

    // Everyday P2P tasks over the tree: aggregation (count peers, find max load) is a
    // convergecast, broadcast is the reverse — both cost one tree traversal.
    let per_peer_load: Vec<u64> = (0..n as u64).map(|v| (v * 37) % 101).collect();
    let mut subtree_load = per_peer_load.clone();
    let mut subtree_size = vec![1u64; n];
    // Convergecast bottom-up in height(T) rounds.
    let depths = tree.depths();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(depths[v].unwrap_or(0)));
    for &v in &order {
        let p = tree.parent(NodeId::from(v));
        if p.index() != v {
            subtree_load[p.index()] += subtree_load[v];
            subtree_size[p.index()] += subtree_size[v];
        }
    }
    let root = tree.root();
    println!(
        "\n-- aggregation over the tree ({} rounds = tree height) --",
        tree.height()
    );
    println!(
        "root {root} learns: {} peers online, total load {}",
        subtree_size[root.index()],
        subtree_load[root.index()]
    );
    println!(
        "broadcast back down: {} rounds over the tree vs {} rounds over the referral graph ({}x faster)",
        tree.height(),
        raw_broadcast,
        raw_broadcast / tree.height().max(1)
    );
}
