//! A peer-to-peer bootstrap scenario.
//!
//! The introduction motivates the algorithm with logical networks (cryptocurrencies,
//! IoT fleets, VPNs) that must organise themselves starting from whatever sparse
//! knowledge graph the join procedure left behind. This example simulates such a
//! bootstrap: peers start on a sparse, high-diameter "who referred whom" graph, build
//! the overlay, and then use the resulting well-formed tree for the two everyday tasks
//! the paper lists — aggregation and broadcast — comparing against doing the same over
//! the raw referral graph.
//!
//! Run with `cargo run --example p2p_bootstrap [n]`.

use overlay_networks::baselines::flooding;
use overlay_networks::core::{ExpanderParams, OverlayBuilder};
use overlay_networks::graph::{analysis, DiGraph, NodeId};

/// Builds a referral graph: every joining peer knows only the peer that invited it,
/// plus an occasional extra contact — a random tree with a few shortcuts.
fn referral_graph(n: usize, seed: u64) -> DiGraph {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for v in 1..n {
        // Preferentially refer from a recent peer so the tree is path-like (deep).
        let lo = v.saturating_sub(4);
        let referrer = rng.gen_range(lo..v);
        g.add_edge(NodeId::from(referrer), NodeId::from(v));
        if rng.gen_bool(0.05) {
            let shortcut = rng.gen_range(0..v);
            g.add_edge(NodeId::from(shortcut), NodeId::from(v));
        }
    }
    g
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    let g = referral_graph(n, 7);
    let und = g.to_undirected();
    println!("== P2P bootstrap ==");
    println!(
        "referral graph: n = {n}, diameter = {:?}, max degree = {}",
        analysis::diameter(&und),
        und.max_degree()
    );

    // How long would a broadcast take on the raw referral graph?
    let raw_broadcast =
        flooding::rounds_until_all_know_minimum(&g, 1, 4 * n).expect("graph is connected");
    println!("broadcast over the raw referral graph: {raw_broadcast} rounds (Θ(diameter))");

    // Build the overlay.
    let params = ExpanderParams::for_n(n).with_seed(11);
    let result = OverlayBuilder::new(params)
        .build(&g)
        .expect("construction succeeds w.h.p.");
    let tree = &result.tree;
    println!(
        "\noverlay construction: {} rounds, ≤ {} messages/node/round",
        result.rounds.total(),
        result.messages.max_per_node_per_round
    );
    println!(
        "well-formed tree: degree ≤ {}, height {} (log₂ n = {:.1})",
        tree.max_degree(),
        tree.height(),
        (n as f64).log2()
    );

    // Everyday P2P tasks over the tree: aggregation (count peers, find max load) is a
    // convergecast, broadcast is the reverse — both cost one tree traversal.
    let per_peer_load: Vec<u64> = (0..n as u64).map(|v| (v * 37) % 101).collect();
    let mut subtree_load = per_peer_load.clone();
    let mut subtree_size = vec![1u64; n];
    // Convergecast bottom-up in height(T) rounds.
    let depths = tree.depths();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(depths[v].unwrap_or(0)));
    for &v in &order {
        let p = tree.parent(NodeId::from(v));
        if p.index() != v {
            subtree_load[p.index()] += subtree_load[v];
            subtree_size[p.index()] += subtree_size[v];
        }
    }
    let root = tree.root();
    println!(
        "\n-- aggregation over the tree ({} rounds = tree height) --",
        tree.height()
    );
    println!(
        "root {root} learns: {} peers online, total load {}",
        subtree_size[root.index()],
        subtree_load[root.index()]
    );
    println!(
        "broadcast back down: {} rounds over the tree vs {} rounds over the referral graph ({}x faster)",
        tree.height(),
        raw_broadcast,
        raw_broadcast / tree.height().max(1)
    );
}
