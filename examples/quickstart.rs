//! Quickstart: build a well-formed tree from the paper's worst-case input (a line).
//!
//! Run with `cargo run --example quickstart [n]`.

use overlay_networks::core::{ExpanderParams, OverlayBuilder};
use overlay_networks::graph::{analysis, generators};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);

    println!("== Time-optimal overlay construction: quickstart ==");
    println!(
        "initial graph: line with n = {n} (diameter {}, conductance Θ(1/n))",
        n - 1
    );

    let params = ExpanderParams::for_n(n).with_seed(42);
    println!(
        "parameters: Δ = {}, Λ = {}, ℓ = {}, L = {}, NCC0 cap = {} messages/round",
        params.delta, params.lambda, params.walk_len, params.evolutions, params.ncc0_cap
    );

    let result = OverlayBuilder::new(params)
        .build(&generators::line(n))
        .expect("construction succeeds w.h.p.");

    let expander = result.expander.simplify();
    println!("\n-- final expander G_L --");
    println!("connected:          {}", analysis::is_connected(&expander));
    println!("diameter:           {:?}", analysis::diameter(&expander));
    println!("max distinct degree: {}", expander.max_degree());

    let tree = &result.tree;
    println!("\n-- well-formed tree --");
    println!("valid spanning tree: {}", tree.is_valid());
    println!("root:                {}", tree.root());
    println!("max degree:          {}", tree.max_degree());
    println!("height:              {}", tree.height());

    println!("\n-- model-level costs (Theorem 1.1 bounds) --");
    println!(
        "rounds: {} total ({} construction + {} BFS + {} finalize) — Θ(log n) with log₂ n = {}",
        result.rounds.total(),
        result.rounds.construction,
        result.rounds.bfs,
        result.rounds.finalize,
        (n as f64).log2()
    );
    println!(
        "messages: max {}/node/round (cap {}), max {} total per node, {} dropped",
        result.messages.max_per_node_per_round,
        params.ncc0_cap,
        result.messages.max_total_per_node,
        result.messages.dropped_receive + result.messages.dropped_send
    );
}
