//! Umbrella crate of the *Time-Optimal Construction of Overlay Networks* reproduction
//! (Götte, Hinnenthal, Scheideler, Werthmann — PODC 2021).
//!
//! This crate re-exports the workspace's public API so that examples and downstream
//! users need a single dependency:
//!
//! * [`graph`] (`overlay-graph`) — graph types, generators, analysis and sequential
//!   reference algorithms,
//! * [`netsim`] (`overlay-netsim`) — the synchronous message-passing simulator with the
//!   NCC0 and hybrid capacity models,
//! * [`transport`] (`overlay-transport`) — the reliable-delivery layer (per-peer
//!   sequence numbers, acks, retransmission, duplicate suppression) that wraps any
//!   protocol so the construction survives message loss,
//! * [`core`] (`overlay-core`) — the `CreateExpander` pipeline of Theorem 1.1, with
//!   each paper phase a first-class `Phase` value (`overlay_core::pipeline`) and
//!   per-phase round-budget/transport overrides,
//! * [`traffic`] (`overlay-traffic`) — request workloads routed over the finished
//!   overlay: seeded workload generators, a greedy/tree router protocol, and
//!   latency/congestion reports measuring what the paper's guarantees bought,
//! * [`hybrid`] (`overlay-hybrid`) — connected components, spanning trees, biconnected
//!   components and MIS in the hybrid model (Theorems 1.2–1.5),
//! * [`net`] (`overlay-net`) — the same protocol code over real byte streams: a
//!   threaded channel backend and a multi-process TCP backend behind the
//!   `PhaseExecutor` seam, with the simulator as the CI-checked model,
//! * [`baselines`] (`overlay-baselines`) — supernode merging, pointer jumping, flooding
//!   and Luby MIS baselines,
//! * [`scenarios`] (`overlay-scenarios`) — declarative churn/fault scenarios (message
//!   loss, delays, crash waves, join churn, partitions) and a rayon-parallel
//!   multi-seed sweep runner with JSON reports.
//!
//! # Quick start
//!
//! ```
//! use overlay_networks::core::{ExpanderParams, OverlayBuilder};
//! use overlay_networks::graph::generators;
//!
//! let g = generators::line(64);
//! let tree = OverlayBuilder::new(ExpanderParams::for_n(64))
//!     .build(&g)
//!     .unwrap()
//!     .tree;
//! assert!(tree.is_valid() && tree.max_degree() <= 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use overlay_baselines as baselines;
pub use overlay_core as core;
pub use overlay_graph as graph;
pub use overlay_hybrid as hybrid;
pub use overlay_net as net;
pub use overlay_netsim as netsim;
pub use overlay_scenarios as scenarios;
pub use overlay_traffic as traffic;
pub use overlay_transport as transport;
