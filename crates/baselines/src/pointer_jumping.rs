//! Pointer jumping with unbounded communication: the strawman from the introduction.
//!
//! If nodes could send arbitrarily many messages per round, the diameter of any weakly
//! connected graph could be reduced to one by `O(log n)` rounds of pointer jumping:
//! every node repeatedly introduces all nodes it knows to one another. The price is
//! communication — in the worst case a node has to send `Θ(n)` messages in a single
//! round, which is exactly what the NCC0 model forbids and what experiment E12
//! measures.

use overlay_graph::{DiGraph, NodeId};
use overlay_netsim::{Ctx, Envelope, Protocol, RunMetrics, SimConfig, Simulator};
use std::collections::BTreeSet;

/// Messages of the pointer-jumping protocol: a single identifier being introduced.
pub type IntroduceMsg = NodeId;

/// Per-node state of the unbounded pointer-jumping protocol.
#[derive(Debug)]
pub struct PointerJumpingNode {
    id: NodeId,
    known: BTreeSet<NodeId>,
    rounds: usize,
    done: bool,
}

impl PointerJumpingNode {
    /// Creates the state machine for node `id` with its initial out-neighbors, running
    /// for `rounds` rounds.
    pub fn new(id: NodeId, out_neighbors: Vec<NodeId>, rounds: usize) -> Self {
        PointerJumpingNode {
            id,
            known: out_neighbors.into_iter().filter(|&v| v != id).collect(),
            rounds,
            done: false,
        }
    }

    /// The identifiers this node knows (excluding itself).
    pub fn known(&self) -> &BTreeSet<NodeId> {
        &self.known
    }

    fn introduce_all(&self, ctx: &mut Ctx<'_, IntroduceMsg>) {
        // Introduce every known node to every other known node (including introducing
        // ourselves), i.e. full pointer jumping. This is Θ(k²) messages for k known
        // nodes — the point of the experiment.
        for &target in &self.known {
            ctx.send_global(target, self.id);
            for &other in &self.known {
                if other != target {
                    ctx.send_global(target, other);
                }
            }
        }
    }
}

impl Protocol for PointerJumpingNode {
    type Message = IntroduceMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, IntroduceMsg>) {
        self.introduce_all(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, IntroduceMsg>, inbox: &[Envelope<IntroduceMsg>]) {
        for env in inbox {
            self.known.insert(env.from);
            if env.payload != self.id {
                self.known.insert(env.payload);
            }
        }
        if ctx.round() < self.rounds {
            self.introduce_all(ctx);
        } else {
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Result of a pointer-jumping run.
#[derive(Clone, Debug)]
pub struct PointerJumpingReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Whether every node ended up knowing every other node (diameter one).
    pub complete: bool,
    /// Communication metrics of the run; `max_sent_in_any_round` is the interesting
    /// quantity (it reaches `Θ(n²)` messages for the hub of a star and `Θ(n)` even on a
    /// line).
    pub metrics: RunMetrics,
}

/// Runs pointer jumping with unbounded communication for `rounds` rounds on `g`.
pub fn run_pointer_jumping(g: &DiGraph, rounds: usize, seed: u64) -> PointerJumpingReport {
    let und = g.to_undirected();
    let nodes: Vec<PointerJumpingNode> = und
        .nodes()
        .map(|v| PointerJumpingNode::new(v, und.distinct_neighbors(v), rounds))
        .collect();
    let config = SimConfig {
        seed,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(nodes, config);
    sim.run(rounds + 2);
    let n = sim.node_count();
    let complete = sim.nodes().iter().all(|node| node.known().len() == n - 1);
    PointerJumpingReport {
        rounds: sim.round(),
        complete,
        metrics: sim.metrics().clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;
    use overlay_netsim::caps::log2_ceil;

    #[test]
    fn line_becomes_complete_in_logarithmic_rounds() {
        let n = 64;
        let report = run_pointer_jumping(&generators::line(n), 2 * log2_ceil(n), 1);
        assert!(report.complete);
    }

    #[test]
    fn communication_explodes_beyond_ncc0_budget() {
        let n = 128;
        let report = run_pointer_jumping(&generators::line(n), 2 * log2_ceil(n), 2);
        assert!(report.complete);
        // Some node sends Ω(n) messages in one round — far beyond the O(log n) budget.
        assert!(
            report.metrics.max_sent_in_any_round() >= n,
            "expected at least {n} messages in a round, saw {}",
            report.metrics.max_sent_in_any_round()
        );
    }

    #[test]
    fn too_few_rounds_leave_graph_incomplete() {
        let report = run_pointer_jumping(&generators::line(256), 2, 3);
        assert!(!report.complete);
    }
}
