//! Flooding over the initial edges only.
//!
//! Without establishing new connections, learning even a single global piece of
//! information (say, the smallest identifier) takes `Θ(D)` rounds on a graph of
//! diameter `D` — `Θ(n)` on the line. This baseline quantifies how much the overlay
//! construction buys compared to staying on the initial topology.

use overlay_graph::{DiGraph, NodeId};
use overlay_netsim::{Ctx, Envelope, Protocol, SimConfig, Simulator};

/// Per-node state of the leader-election-by-flooding baseline.
#[derive(Debug)]
pub struct FloodingNode {
    neighbors: Vec<NodeId>,
    best: NodeId,
    rounds_without_change: usize,
    done: bool,
}

impl FloodingNode {
    /// Creates the state machine for node `id` with its (undirected) neighbors.
    pub fn new(id: NodeId, neighbors: Vec<NodeId>) -> Self {
        FloodingNode {
            neighbors,
            best: id,
            rounds_without_change: 0,
            done: false,
        }
    }

    /// The smallest identifier this node has seen.
    pub fn best(&self) -> NodeId {
        self.best
    }

    /// The round in which this node last improved its estimate (used by the harness to
    /// measure convergence time).
    pub fn converged(&self) -> bool {
        self.done
    }
}

impl Protocol for FloodingNode {
    type Message = NodeId;

    fn on_start(&mut self, ctx: &mut Ctx<'_, NodeId>) {
        for &v in &self.neighbors {
            ctx.send_local(v, self.best);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, NodeId>, inbox: &[Envelope<NodeId>]) {
        let mut improved = false;
        for env in inbox {
            if env.payload < self.best {
                self.best = env.payload;
                improved = true;
            }
        }
        if improved {
            self.rounds_without_change = 0;
            for &v in &self.neighbors.clone() {
                ctx.send_local(v, self.best);
            }
        } else {
            self.rounds_without_change += 1;
            // Nodes cannot detect global termination locally; the harness stops the
            // simulation. We mark a node quiescent after it has been silent for a while
            // so `all_done` eventually becomes true on small graphs.
            if self.rounds_without_change > 2 * ctx.log_n() {
                self.done = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

/// Runs the flooding baseline and returns the number of rounds until every node knew
/// the smallest identifier (measured by the harness, which can see the global state).
pub fn rounds_until_all_know_minimum(g: &DiGraph, seed: u64, max_rounds: usize) -> Option<usize> {
    let und = g.to_undirected();
    let local_edges: Vec<Vec<NodeId>> = und.nodes().map(|v| und.distinct_neighbors(v)).collect();
    let nodes: Vec<FloodingNode> = und
        .nodes()
        .map(|v| FloodingNode::new(v, und.distinct_neighbors(v)))
        .collect();
    let config = SimConfig {
        seed,
        local_edges: Some(local_edges),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(nodes, config);
    let minimum = NodeId::from(0usize);
    for round in 0..max_rounds {
        if sim.nodes().iter().all(|n| n.best() == minimum) {
            return Some(round);
        }
        sim.step();
    }
    if sim.nodes().iter().all(|n| n.best() == minimum) {
        Some(max_rounds)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;

    #[test]
    fn flooding_on_line_takes_linear_rounds() {
        let n = 64;
        let rounds = rounds_until_all_know_minimum(&generators::line(n), 1, 2 * n).unwrap();
        assert!(
            rounds >= n - 2,
            "line flooding must take ~n rounds, took {rounds}"
        );
        assert!(rounds <= n + 2);
    }

    #[test]
    fn flooding_on_star_takes_constant_rounds() {
        let rounds = rounds_until_all_know_minimum(&generators::star(50), 1, 20).unwrap();
        assert!(rounds <= 3);
    }

    #[test]
    fn flooding_respects_round_limit() {
        assert_eq!(
            rounds_until_all_know_minimum(&generators::line(128), 1, 10),
            None
        );
    }
}
