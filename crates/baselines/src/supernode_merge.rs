//! Supernode grouping/merging overlay construction (the Angluin et al. lineage).
//!
//! All previous `O(log² n)`–`O(log^{3/2} n)` algorithms follow the same high-level
//! scheme: nodes are grouped into *supernodes*; in every phase each supernode finds an
//! edge to an adjacent supernode, the resulting merge requests are resolved, and the
//! merged supernodes are consolidated so that every member learns the new supernode
//! identity. Grouping at least halves the number of supernodes per phase, so `Θ(log n)`
//! phases suffice — but every phase costs `Θ(log n)` rounds of intra-supernode
//! communication (convergecast and broadcast along the supernode's spanning tree, plus
//! merge-chain resolution), giving `Θ(log² n)` rounds overall.
//!
//! This module executes the merging scheme on the graph and *charges* the per-phase
//! round cost explicitly (tree depth for convergecast/broadcast, `⌈log₂ n⌉` for the
//! merge-chain resolution). The accounting is deliberately optimistic — a message-level
//! implementation pays at least these rounds — so the comparison in experiment E12
//! favours the baseline.

use overlay_graph::{analysis, DiGraph, NodeId};
use overlay_netsim::caps::log2_ceil;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Per-phase and aggregate costs of a supernode-merging run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupernodeMergeReport {
    /// Number of merge phases executed.
    pub phases: usize,
    /// Rounds charged per phase.
    pub rounds_per_phase: Vec<usize>,
    /// Number of supernodes after every phase.
    pub supernodes_after_phase: Vec<usize>,
}

impl SupernodeMergeReport {
    /// Total rounds charged across all phases.
    pub fn total_rounds(&self) -> usize {
        self.rounds_per_phase.iter().sum()
    }
}

/// The supernode-merging baseline.
#[derive(Clone, Debug)]
pub struct SupernodeMerge {
    seed: u64,
}

impl SupernodeMerge {
    /// Creates the baseline with the given seed (merge-partner selection is random, as
    /// in the randomized variants of the scheme).
    pub fn new(seed: u64) -> Self {
        SupernodeMerge { seed }
    }

    /// Runs the merging scheme on (the undirected version of) `g` until a single
    /// supernode remains, returning the charged costs.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or not connected.
    pub fn run(&self, g: &DiGraph) -> SupernodeMergeReport {
        let und = g.to_undirected();
        let n = und.node_count();
        assert!(n > 0, "graph must be non-empty");
        assert!(analysis::is_connected(&und), "graph must be connected");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let log_n = log2_ceil(n).max(1);

        // supernode[v] = representative of v's supernode; members listed per supernode.
        let mut supernode: Vec<usize> = (0..n).collect();
        let mut members: Vec<Vec<usize>> = (0..n).map(|v| vec![v]).collect();
        let mut report = SupernodeMergeReport::default();

        let mut active: Vec<usize> = (0..n).collect();
        while active.len() > 1 {
            // Each supernode proposes a merge along a random outgoing edge.
            let mut proposal: Vec<Option<usize>> = vec![None; n];
            let mut max_depth = 1usize;
            for &s in &active {
                // Convergecast: the root learns one outgoing edge. We charge the
                // supernode's (BFS-tree) depth, approximated by ⌈log₂ |members|⌉ + 1,
                // which is the best any consolidation scheme can achieve.
                max_depth = max_depth.max(log2_ceil(members[s].len()) + 1);
                let mut outgoing: Vec<usize> = Vec::new();
                for &v in &members[s] {
                    for &w in und.neighbors(NodeId::from(v)) {
                        if supernode[w.index()] != s {
                            outgoing.push(supernode[w.index()]);
                        }
                    }
                }
                if !outgoing.is_empty() {
                    proposal[s] = outgoing.choose(&mut rng).copied();
                }
            }

            // Resolve merge chains: union the proposal graph with a union-find; this
            // costs Θ(log n) rounds of pointer jumping in the distributed setting.
            let mut uf = overlay_graph::sequential::UnionFind::new(n);
            for &s in &active {
                if let Some(t) = proposal[s] {
                    uf.union(s, t);
                }
            }

            // Consolidate: every member learns its new representative (broadcast along
            // the merged supernode, charged like the convergecast).
            let mut new_members: Vec<Vec<usize>> = vec![Vec::new(); n];
            for &s in &active {
                let root = uf.find(s);
                let moved = std::mem::take(&mut members[s]);
                new_members[root].extend(moved);
            }
            for &s in &active {
                if !new_members[s].is_empty() {
                    for &v in &new_members[s] {
                        supernode[v] = s;
                    }
                }
            }
            members = new_members;
            active = (0..n).filter(|&s| !members[s].is_empty()).collect();

            report.phases += 1;
            report.rounds_per_phase.push(2 * max_depth + log_n);
            report.supernodes_after_phase.push(active.len());

            assert!(
                report.phases <= 4 * log_n + 8,
                "merging did not converge within the expected number of phases"
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;

    #[test]
    fn merging_converges_to_one_supernode() {
        let g = generators::line(64);
        let report = SupernodeMerge::new(1).run(&g);
        assert_eq!(*report.supernodes_after_phase.last().unwrap(), 1);
        assert!(report.phases >= 3, "must need several phases");
    }

    #[test]
    fn phase_count_is_logarithmic() {
        for n in [32usize, 128, 512] {
            let report = SupernodeMerge::new(7).run(&generators::cycle(n));
            let log_n = log2_ceil(n);
            assert!(
                report.phases <= 3 * log_n,
                "n={n}: {} phases exceed 3 log n",
                report.phases
            );
        }
    }

    #[test]
    fn total_rounds_grow_superlinearly_in_log_n() {
        let small = SupernodeMerge::new(3)
            .run(&generators::line(64))
            .total_rounds();
        let large = SupernodeMerge::new(3)
            .run(&generators::line(1024))
            .total_rounds();
        // log² growth: quadrupling log n (6 -> 10) should more than double the rounds.
        assert!(
            large as f64 >= 1.8 * small as f64,
            "expected super-linear growth in log n: {small} vs {large}"
        );
    }

    #[test]
    fn supernode_count_roughly_halves_per_phase() {
        let report = SupernodeMerge::new(11).run(&generators::grid(16, 16));
        let mut prev = 256usize;
        for &count in &report.supernodes_after_phase {
            assert!(count <= prev, "supernode count must be monotone");
            prev = count;
        }
        assert_eq!(prev, 1);
    }

    #[test]
    #[should_panic(expected = "must be connected")]
    fn disconnected_input_is_rejected() {
        let g = generators::disjoint_union(&[generators::line(4), generators::line(4)]);
        SupernodeMerge::new(0).run(&g);
    }
}
