//! Baseline algorithms the paper's contribution is compared against.
//!
//! * [`supernode_merge`] — the supernode grouping/merging approach of Angluin et al.
//!   (SPAA'05) and its successors, which needs `Θ(log² n)` rounds because every one of
//!   the `Θ(log n)` merge phases pays `Θ(log n)` rounds of intra-supernode
//!   coordination. We account the rounds optimistically (the real message-level
//!   protocol would only be slower), so the comparison favours the baseline.
//! * [`pointer_jumping`] — the unbounded-communication strawman from the introduction:
//!   pointer jumping reduces the diameter to one in `O(log n)` rounds but requires
//!   nodes to send `Θ(n)` messages per round, which the NCC0 model forbids.
//! * [`flooding`] — flooding identifiers over the initial edges only; takes `Θ(D)`
//!   rounds on a graph of diameter `D` (i.e. `Θ(n)` on the line).
//! * [`luby_mis`] — Luby/Métivier-style MIS in the CONGEST model, the `O(log n)` round
//!   baseline that Theorem 1.5's `O(log d + log log n)` algorithm is measured against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flooding;
pub mod luby_mis;
pub mod pointer_jumping;
pub mod supernode_merge;

pub use flooding::FloodingNode;
pub use luby_mis::{run_luby_mis, LubyMisNode};
pub use pointer_jumping::{run_pointer_jumping, PointerJumpingNode};
pub use supernode_merge::{SupernodeMerge, SupernodeMergeReport};
