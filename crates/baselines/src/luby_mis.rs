//! Luby/Métivier MIS in the CONGEST model — the `O(log n)`-round baseline for
//! Theorem 1.5.
//!
//! Every undecided node draws a random value each round and sends it to its undecided
//! neighbors; local minima join the MIS, their neighbors leave the graph, and the
//! process repeats. In expectation half the edges disappear per round (Métivier et
//! al.), so the algorithm finishes in `O(log n)` rounds w.h.p.

use overlay_graph::{DiGraph, NodeId};
use overlay_netsim::{Ctx, Envelope, Protocol, SimConfig, Simulator};
use rand::Rng;
use std::collections::BTreeSet;

/// Messages of the MIS protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LubyMsg {
    /// The sender's random value for this round.
    Value(u64),
    /// The sender joined the MIS; the receiver must leave the competition.
    Joined,
    /// The sender has decided (either way) and will no longer participate.
    Decided,
}

/// Decision state of a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisState {
    /// Still competing.
    Undecided,
    /// Joined the independent set.
    InMis,
    /// A neighbor joined the set.
    Covered,
}

/// Per-node state of the Luby/Métivier MIS protocol.
#[derive(Debug)]
pub struct LubyMisNode {
    id: NodeId,
    active_neighbors: BTreeSet<NodeId>,
    state: MisState,
    my_value: u64,
    rounds: usize,
}

impl LubyMisNode {
    /// Creates the state machine for node `id` with its (undirected) neighbors.
    pub fn new(id: NodeId, neighbors: Vec<NodeId>) -> Self {
        LubyMisNode {
            id,
            active_neighbors: neighbors.into_iter().filter(|&v| v != id).collect(),
            state: MisState::Undecided,
            my_value: 0,
            rounds: 0,
        }
    }

    /// The node's decision.
    pub fn state(&self) -> MisState {
        self.state
    }

    /// Number of rounds until this node decided.
    pub fn rounds_to_decision(&self) -> usize {
        self.rounds
    }

    fn draw_and_send(&mut self, ctx: &mut Ctx<'_, LubyMsg>) {
        self.my_value = ctx.rng().gen::<u64>() ^ (self.id.raw() << 1);
        for &v in &self.active_neighbors {
            ctx.send_local(v, LubyMsg::Value(self.my_value));
        }
    }

    fn decide(&mut self, ctx: &mut Ctx<'_, LubyMsg>, state: MisState) {
        self.state = state;
        self.rounds = ctx.round();
        let msg = if state == MisState::InMis {
            LubyMsg::Joined
        } else {
            LubyMsg::Decided
        };
        for &v in &self.active_neighbors {
            ctx.send_local(v, msg);
        }
        self.active_neighbors.clear();
    }
}

impl Protocol for LubyMisNode {
    type Message = LubyMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, LubyMsg>) {
        if self.active_neighbors.is_empty() {
            // Isolated nodes join immediately.
            self.state = MisState::InMis;
            return;
        }
        self.draw_and_send(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, LubyMsg>, inbox: &[Envelope<LubyMsg>]) {
        if self.state != MisState::Undecided {
            return;
        }
        let mut lowest = true;
        let mut covered = false;
        for env in inbox {
            match env.payload {
                LubyMsg::Value(v) => {
                    // Ties are broken by identifier so the comparison is a total order.
                    if (v, env.from) < (self.my_value, self.id) {
                        lowest = false;
                    }
                }
                LubyMsg::Joined => covered = true,
                LubyMsg::Decided => {
                    self.active_neighbors.remove(&env.from);
                }
            }
        }
        for env in inbox {
            if matches!(env.payload, LubyMsg::Joined) {
                self.active_neighbors.remove(&env.from);
            }
        }
        if covered {
            self.decide(ctx, MisState::Covered);
            return;
        }
        if lowest && !inbox.is_empty() || self.active_neighbors.is_empty() {
            self.decide(ctx, MisState::InMis);
            return;
        }
        self.draw_and_send(ctx);
    }

    fn is_done(&self) -> bool {
        self.state != MisState::Undecided
    }
}

/// Result of a Luby MIS run.
#[derive(Clone, Debug)]
pub struct LubyMisReport {
    /// The independent set.
    pub mis: Vec<NodeId>,
    /// Rounds until the last node decided.
    pub rounds: usize,
    /// Whether every node decided within the round budget.
    pub complete: bool,
}

/// Runs Luby/Métivier MIS in the CONGEST model on (the undirected version of) `g`.
pub fn run_luby_mis(g: &DiGraph, seed: u64, max_rounds: usize) -> LubyMisReport {
    let und = g.to_undirected();
    let local_edges: Vec<Vec<NodeId>> = und.nodes().map(|v| und.distinct_neighbors(v)).collect();
    let nodes: Vec<LubyMisNode> = und
        .nodes()
        .map(|v| LubyMisNode::new(v, und.distinct_neighbors(v)))
        .collect();
    let config = SimConfig {
        seed,
        local_edges: Some(local_edges),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(nodes, config);
    let outcome = sim.run(max_rounds);
    let mis = sim
        .nodes()
        .iter()
        .filter(|n| n.state() == MisState::InMis)
        .map(|n| n.id)
        .collect();
    LubyMisReport {
        mis,
        rounds: sim
            .nodes()
            .iter()
            .map(LubyMisNode::rounds_to_decision)
            .max()
            .unwrap_or(0),
        complete: outcome.all_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::{generators, sequential};

    fn check(g: &DiGraph, seed: u64) -> LubyMisReport {
        let report = run_luby_mis(g, seed, 200);
        assert!(report.complete, "MIS must terminate");
        let und = g.to_undirected();
        assert!(
            sequential::is_maximal_independent_set(&und, &report.mis),
            "output must be a maximal independent set"
        );
        report
    }

    #[test]
    fn mis_is_valid_on_various_graphs() {
        check(&generators::line(64), 1);
        check(&generators::cycle(65), 2);
        check(&generators::star(40), 3);
        check(&generators::grid(8, 8), 4);
        check(&generators::connected_random(100, 0.05, 5), 5);
    }

    #[test]
    fn rounds_are_logarithmic() {
        let report = check(&generators::connected_random(256, 0.03, 9), 7);
        assert!(
            report.rounds <= 40,
            "expected O(log n) rounds, took {}",
            report.rounds
        );
    }

    #[test]
    fn isolated_nodes_join_immediately() {
        let g = DiGraph::new(5);
        let report = run_luby_mis(&g, 1, 10);
        assert_eq!(report.mis.len(), 5);
        assert_eq!(report.rounds, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run_luby_mis(&generators::grid(6, 6), 42, 100).mis;
        let b = run_luby_mis(&generators::grid(6, 6), 42, 100).mis;
        assert_eq!(a, b);
    }
}
