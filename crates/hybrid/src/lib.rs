//! Hybrid-model applications of time-optimal overlay construction (Section 4 of the
//! paper).
//!
//! The hybrid model combines CONGEST communication over the *local* edges of the
//! initial graph with a polylogarithmic per-node budget of *global* (overlay) messages.
//! On top of the NCC0 pipeline of `overlay-core`, this crate provides:
//!
//! * [`sparsify`](mod@sparsify) — the degree-reduction preprocessing of Section 4.2: an
//!   Elkin–Neiman-style spanner followed by edge delegation turns a graph of arbitrary
//!   degree into a graph `H` of degree `O(log n)` with the same connected components.
//! * [`components`] (Theorem 1.2) — a well-formed tree on every connected component.
//! * [`spanning_tree`] (Theorem 1.3) — a spanning tree of the initial graph obtained by
//!   unwinding the random walks over which the overlay edges were established.
//! * [`biconnectivity`] (Theorem 1.4) — Tarjan–Vishkin biconnected components, cut
//!   vertices and bridges.
//! * [`mis`] (Theorem 1.5) — maximal independent set in `O(log d + log log n)` rounds
//!   via shattering plus parallel Métivier executions on the shattered components.
//!
//! Each module documents which steps run as message-level protocols in the simulator
//! and which steps are executed by the harness with explicit round accounting (see
//! DESIGN.md for the substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biconnectivity;
pub mod components;
pub mod mis;
pub mod spanning_tree;
pub mod sparsify;

pub use biconnectivity::{BiconnectivityResult, DistributedBiconnectivity};
pub use components::{ComponentsConfig, ComponentsResult, HybridComponents};
pub use mis::{HybridMis, HybridMisResult};
pub use spanning_tree::{HybridSpanningTree, SpanningTreeResult};
pub use sparsify::{sparsify, SparsifyResult};
