//! Connected components and per-component well-formed trees (Theorem 1.2).
//!
//! The pipeline follows Section 4.2: the initial graph (arbitrary degree, possibly
//! disconnected) is degree-reduced with [`crate::sparsify()`], and on every connected
//! component of the reduced graph the NCC0 construction of `overlay-core` is executed
//! with parameters sized for the component. The result is a well-formed tree per
//! component; the component identifier is the root of that tree.
//!
//! The adapted algorithm of Theorem 4.1 additionally stitches short walks into longer
//! ones (Lemma 4.2) to shave the round complexity from `O(log m · ℓ)` to
//! `O(log m + log log n)`; this reproduction runs the plain evolutions, so measured
//! rounds scale as `O(log m)` with the constant `ℓ + 1` (see DESIGN.md).

use crate::sparsify::{sparsify, SparsifyResult};
use overlay_core::{ExpanderParams, OverlayBuilder, OverlayError, WellFormedTree};
use overlay_graph::{analysis, DiGraph, NodeId};
use overlay_netsim::caps::log2_ceil;

/// Configuration of the hybrid components pipeline.
#[derive(Clone, Copy, Debug)]
pub struct ComponentsConfig {
    /// Seed for all randomness.
    pub seed: u64,
    /// The constant `c` of the spanner's low-degree rule.
    pub degree_threshold_factor: usize,
    /// Random-walk length used by the per-component expander construction.
    pub walk_len: usize,
}

impl Default for ComponentsConfig {
    fn default() -> Self {
        ComponentsConfig {
            seed: 0xC0C0_0001,
            degree_threshold_factor: 4,
            walk_len: 16,
        }
    }
}

/// The output of the hybrid components pipeline.
#[derive(Clone, Debug)]
pub struct ComponentsResult {
    /// For every node, the identifier of its component (the root of its well-formed
    /// tree, in original node identifiers).
    pub component_of: Vec<NodeId>,
    /// The well-formed tree of every component, with node identifiers mapped back to
    /// the original graph. Singleton components get a single-node tree.
    pub trees: Vec<WellFormedTree>,
    /// For every component tree, the original identifiers of its members in local
    /// index order (`trees[i]` node `j` corresponds to `members[i][j]`).
    pub members: Vec<Vec<NodeId>>,
    /// Rounds charged: preprocessing plus the maximum over components of the
    /// construction rounds (components run in parallel).
    pub rounds: usize,
    /// The preprocessing result (kept for downstream algorithms).
    pub sparsified: SparsifyResult,
}

impl ComponentsResult {
    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.trees.len()
    }

    /// Returns `true` if `u` and `v` are in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.component_of[u.index()] == self.component_of[v.index()]
    }
}

/// Computes, for every connected component of an arbitrary directed graph, a
/// well-formed tree spanning that component (Theorem 1.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct HybridComponents {
    config: ComponentsConfig,
}

impl HybridComponents {
    /// Creates the pipeline with the given configuration.
    pub fn new(config: ComponentsConfig) -> Self {
        HybridComponents { config }
    }

    /// Runs the pipeline on `g`.
    ///
    /// # Errors
    ///
    /// Propagates [`OverlayError`] from the per-component construction (which does not
    /// happen w.h.p. with the default parameters).
    pub fn run(&self, g: &DiGraph) -> Result<ComponentsResult, OverlayError> {
        let n = g.node_count();
        if n == 0 {
            return Err(OverlayError::EmptyGraph);
        }
        let sparsified = sparsify(g, self.config.seed, self.config.degree_threshold_factor);
        let reduced = &sparsified.reduced;
        let comps = analysis::connected_components(reduced);
        let groups = comps.members();

        let mut component_of = vec![NodeId::from(0usize); n];
        let mut trees = Vec::with_capacity(groups.len());
        let mut members_out = Vec::with_capacity(groups.len());
        let mut max_component_rounds = 0usize;

        for members in groups {
            let m = members.len();
            // Map original identifiers to local indices 0..m.
            let mut local_index = vec![usize::MAX; n];
            for (i, &v) in members.iter().enumerate() {
                local_index[v.index()] = i;
            }
            let tree = if m == 1 {
                WellFormedTree::from_parents(vec![NodeId::from(0usize)])
            } else {
                let mut local = DiGraph::new(m);
                for &v in &members {
                    for w in reduced.distinct_neighbors(v) {
                        local.add_edge(
                            NodeId::from(local_index[v.index()]),
                            NodeId::from(local_index[w.index()]),
                        );
                    }
                }
                local.dedup_edges();
                let params = component_params(&local, self.config);
                let result = OverlayBuilder::new(params).build(&local)?;
                max_component_rounds = max_component_rounds.max(result.rounds.total());
                result.tree
            };
            // The component identifier is the original id of the tree root.
            let root_original = members[tree.root().index()];
            for &v in &members {
                component_of[v.index()] = root_original;
            }
            trees.push(tree);
            members_out.push(members);
        }

        Ok(ComponentsResult {
            component_of,
            trees,
            members: members_out,
            rounds: sparsified.rounds + max_component_rounds,
            sparsified,
        })
    }
}

/// Chooses expander parameters for a component of the reduced graph: the component's
/// maximum degree is `O(log n)`, so `Δ = Θ(d·log m)` is polylogarithmic, which the
/// hybrid model's global capacity allows.
fn component_params(local: &DiGraph, config: ComponentsConfig) -> ExpanderParams {
    let m = local.node_count();
    let log_m = log2_ceil(m).max(2);
    let degree = local.to_undirected().max_degree().max(1);
    let lambda = 2 * log_m;
    // Round Δ up to a multiple of 8 satisfying the laziness constraint 2·d·Λ ≤ Δ.
    let delta = (2 * degree * lambda).max(16 * log_m).div_ceil(8) * 8;
    let mut params = ExpanderParams::for_n(m);
    params.delta = delta;
    params.lambda = lambda;
    params.walk_len = config.walk_len;
    params.evolutions = log_m + 4;
    params.ncc0_cap = 2 * delta;
    params.bfs_rounds = 4 * log_m + 8;
    params.seed = config.seed ^ (m as u64).rotate_left(17);
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;

    fn run(g: &DiGraph, seed: u64) -> ComponentsResult {
        let config = ComponentsConfig {
            seed,
            walk_len: 12,
            ..ComponentsConfig::default()
        };
        HybridComponents::new(config)
            .run(g)
            .expect("pipeline must succeed")
    }

    #[test]
    fn single_component_produces_one_tree() {
        let g = generators::cycle(48);
        let result = run(&g, 1);
        assert_eq!(result.component_count(), 1);
        assert!(result.trees[0].is_valid());
        assert_eq!(result.trees[0].node_count(), 48);
        assert!(result.trees[0].max_degree() <= 4);
    }

    #[test]
    fn components_match_ground_truth() {
        let g = generators::disjoint_union(&[
            generators::cycle(32),
            generators::line(17),
            generators::star(40),
            generators::line(1),
        ]);
        let result = run(&g, 2);
        assert_eq!(result.component_count(), 4);
        let truth = analysis::connected_components(&g.to_undirected());
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    truth.same_component(u, v),
                    result.same_component(u, v),
                    "mismatch for {u}, {v}"
                );
            }
        }
        // All members of a component share its identifier, which is a member itself.
        for v in g.nodes() {
            let c = result.component_of[v.index()];
            assert!(truth.same_component(v, c));
        }
    }

    #[test]
    fn high_degree_components_are_handled() {
        // A star is the canonical arbitrary-degree input that the NCC0 pipeline rejects
        // but the hybrid pipeline handles.
        let g = generators::star(96);
        let result = run(&g, 3);
        assert_eq!(result.component_count(), 1);
        let tree = &result.trees[0];
        assert!(tree.is_valid());
        assert_eq!(tree.node_count(), 96);
        assert!(tree.max_degree() <= 4);
    }

    #[test]
    fn trees_cover_exactly_their_members() {
        let g = generators::disjoint_union(&[generators::grid(5, 5), generators::cycle(10)]);
        let result = run(&g, 4);
        let total: usize = result.members.iter().map(Vec::len).sum();
        assert_eq!(total, 35);
        for (tree, members) in result.trees.iter().zip(&result.members) {
            assert_eq!(tree.node_count(), members.len());
        }
    }

    #[test]
    fn rounds_scale_with_largest_component() {
        let small = run(
            &generators::disjoint_union(&vec![generators::line(16); 4]),
            5,
        )
        .rounds;
        let large = run(&generators::line(256), 5).rounds;
        assert!(
            large > small,
            "a single big component ({large}) must cost more rounds than many small ones ({small})"
        );
    }

    #[test]
    fn empty_graph_is_rejected() {
        let err = HybridComponents::new(ComponentsConfig::default())
            .run(&DiGraph::new(0))
            .unwrap_err();
        assert_eq!(err, OverlayError::EmptyGraph);
    }

    #[test]
    fn singleton_nodes_become_singleton_trees() {
        let g = DiGraph::new(3);
        let result = run(&g, 7);
        assert_eq!(result.component_count(), 3);
        for tree in &result.trees {
            assert_eq!(tree.node_count(), 1);
            assert!(tree.is_valid());
        }
    }
}
