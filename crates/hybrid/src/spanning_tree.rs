//! Spanning trees of the initial graph by unwinding random walks (Theorem 1.3).
//!
//! The overlay edges created by `CreateExpander` do not exist in the initial graph, but
//! every one of them was established along a random walk whose steps *are* initial
//! edges (of the degree-reduced graph `H`, whose edges in turn map back to initial
//! edges via the spanner and the delegation centers). The algorithm therefore:
//!
//! 1. degree-reduces the graph ([`crate::sparsify()`]),
//! 2. runs the evolutions while annotating every established edge with the walk that
//!    created it ([`TracedEvolution`]),
//! 3. takes a BFS tree of the final low-diameter graph `G_{L'}`,
//! 4. replaces its edges level by level by the walks that created them until only edges
//!    of `H` remain, maps those back to edges of the initial graph, and
//! 5. extracts a spanning tree from the resulting connected spanning subgraph
//!    (the paper's loop-erasure step).
//!
//! Steps 2–3 run the same random experiment as the distributed protocol; steps 4–5 are
//! executed by the harness with the paper's round accounting (one round per unwinding
//! level plus `O(log n)` for the loop erasure; see DESIGN.md).

use crate::sparsify::{sparsify, SparsifyResult};
use overlay_core::{benign, ExpanderParams, OverlayError};
use overlay_graph::{analysis, sequential, DiGraph, NodeId, UGraph};
use overlay_netsim::caps::log2_ceil;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

type EdgeKey = (NodeId, NodeId);

fn norm(a: NodeId, b: NodeId) -> EdgeKey {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// One level of traced evolutions: for every established (non-loop) edge, the walk —
/// a list of lower-level edges — that created it.
#[derive(Clone, Debug, Default)]
pub struct TraceLevel {
    paths: HashMap<EdgeKey, Vec<EdgeKey>>,
}

/// The traced evolution engine: identical random experiment to
/// [`overlay_core::EvolutionEngine`], additionally remembering the walk behind every
/// established edge.
#[derive(Debug)]
pub struct TracedEvolution {
    params: ExpanderParams,
    graph: UGraph,
    rng: StdRng,
    levels: Vec<TraceLevel>,
}

impl TracedEvolution {
    /// Creates the engine from a benign graph.
    pub fn from_benign(graph: UGraph, params: ExpanderParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed ^ 0x7AACE);
        TracedEvolution {
            params,
            graph,
            rng,
            levels: Vec::new(),
        }
    }

    /// The current graph.
    pub fn graph(&self) -> &UGraph {
        &self.graph
    }

    /// The recorded trace levels (one per evolution).
    pub fn levels(&self) -> &[TraceLevel] {
        &self.levels
    }

    /// Runs one traced evolution.
    pub fn evolve(&mut self) {
        let n = self.graph.node_count();
        let delta = self.params.delta;
        let tokens = self.params.tokens_per_node();
        let walk_len = self.params.walk_len;

        let mut arrived: Vec<Vec<(NodeId, Vec<EdgeKey>)>> = vec![Vec::new(); n];
        for v in 0..n {
            for _ in 0..tokens {
                let mut pos = NodeId::from(v);
                let mut path = Vec::new();
                for _ in 0..walk_len {
                    let slots = self.graph.neighbors(pos);
                    let next = slots[self.rng.gen_range(0..slots.len())];
                    if next != pos {
                        path.push(norm(pos, next));
                    }
                    pos = next;
                }
                arrived[pos.index()].push((NodeId::from(v), path));
            }
        }

        let mut next = UGraph::new(n);
        let mut level = TraceLevel::default();
        for (w, accepted) in arrived.iter_mut().enumerate() {
            accepted.shuffle(&mut self.rng);
            accepted.truncate(self.params.max_accepts());
            for (origin, path) in accepted.drain(..) {
                next.add_edge(NodeId::from(w), origin);
                if origin.index() != w {
                    level
                        .paths
                        .entry(norm(origin, NodeId::from(w)))
                        .or_insert(path);
                }
            }
        }
        for v in next.nodes().collect::<Vec<_>>() {
            while next.degree(v) < delta {
                next.add_self_loop(v);
            }
        }
        self.graph = next;
        self.levels.push(level);
    }
}

/// The output of the spanning-tree algorithm.
#[derive(Clone, Debug)]
pub struct SpanningTreeResult {
    /// Parent pointer of every node (the root points to itself); the parent edges are
    /// edges of the initial graph.
    pub parent: Vec<NodeId>,
    /// Rounds charged across all phases.
    pub rounds: usize,
    /// The degree-reduction result (exposed for downstream algorithms).
    pub sparsified: SparsifyResult,
}

/// Computes a spanning tree of a weakly connected graph in the hybrid model
/// (Theorem 1.3).
#[derive(Clone, Copy, Debug)]
pub struct HybridSpanningTree {
    /// Seed for all randomness.
    pub seed: u64,
    /// Random-walk length of the evolutions.
    pub walk_len: usize,
}

impl Default for HybridSpanningTree {
    fn default() -> Self {
        HybridSpanningTree {
            seed: 0x5AAA_0001,
            walk_len: 12,
        }
    }
}

impl HybridSpanningTree {
    /// Runs the algorithm on (the undirected version of) `g`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Disconnected`] if `g` is not weakly connected and
    /// [`OverlayError::EmptyGraph`] for empty inputs.
    pub fn run(&self, g: &DiGraph) -> Result<SpanningTreeResult, OverlayError> {
        let n = g.node_count();
        if n == 0 {
            return Err(OverlayError::EmptyGraph);
        }
        let und = g.to_undirected();
        if !analysis::is_connected(&und) {
            return Err(OverlayError::Disconnected);
        }
        if n == 1 {
            return Ok(SpanningTreeResult {
                parent: vec![NodeId::from(0usize)],
                rounds: 0,
                sparsified: sparsify(g, self.seed, 4),
            });
        }

        // Step 1: degree reduction.
        let sparsified = sparsify(g, self.seed, 4);
        let h = &sparsified.reduced;

        // Step 2: traced evolutions on the benign version of H.
        let h_digraph = DiGraph::from_edges(n, h.edges().into_iter().filter(|(a, b)| a != b));
        let params = tree_params(h, self.seed, self.walk_len);
        let benign_graph = benign::make_benign(&h_digraph, &params)?;
        let mut engine = TracedEvolution::from_benign(benign_graph, params);
        for _ in 0..params.evolutions {
            engine.evolve();
        }

        // Step 3: BFS tree of the final low-diameter graph.
        let final_simple = engine.graph().simplify();
        if !analysis::is_connected(&final_simple) {
            return Err(OverlayError::PhaseIncomplete {
                phase: "traced-evolutions",
                budget: params.evolutions,
            });
        }
        let (overlay_parent, _) = sequential::bfs_tree(&final_simple, NodeId::from(0usize));

        // Step 4: unwind the tree edges level by level down to H-edges, then map those
        // back to initial edges.
        let mut current: Vec<EdgeKey> = overlay_parent
            .iter()
            .enumerate()
            .filter(|(v, p)| p.index() != *v)
            .map(|(v, p)| norm(NodeId::from(v), *p))
            .collect();
        for level in engine.levels().iter().rev() {
            let mut lower = Vec::new();
            for edge in current {
                match level.paths.get(&edge) {
                    Some(path) => lower.extend(path.iter().copied()),
                    // Padding self-loops never enter `current`; an edge missing from the
                    // level map can only be a benign-graph edge surviving in the overlay
                    // (impossible, evolutions replace all edges), so treat it as already
                    // unwound.
                    None => lower.push(edge),
                }
            }
            lower.sort_unstable();
            lower.dedup();
            current = lower;
        }

        // The remaining edges are edges of the benign graph, i.e. (copies of) H-edges;
        // map delegated H-edges back to pairs of initial edges.
        let mut subgraph = UGraph::new(n);
        for (a, b) in current {
            if und.neighbors(a).contains(&b) {
                subgraph.add_edge(a, b);
            } else if let Some(c) = sparsified.center_of(a, b) {
                subgraph.add_edge(a, c);
                subgraph.add_edge(b, c);
            }
        }

        // Step 5: loop erasure — extract a spanning tree of the unwound subgraph.
        if !analysis::is_connected(&subgraph) {
            return Err(OverlayError::PhaseIncomplete {
                phase: "walk-unwinding",
                budget: params.evolutions,
            });
        }
        let (parent, unreachable) = sequential::bfs_tree(&subgraph, NodeId::from(0usize));
        debug_assert!(unreachable.is_empty());

        let log_n = log2_ceil(n).max(1);
        let construction_rounds = params.evolutions * (params.walk_len + 1) + 1;
        let rounds = sparsified.rounds
            + construction_rounds
            + params.bfs_rounds
            + params.evolutions // one round per unwinding level
            + 2 * log_n; // loop erasure via pointer jumping / prefix sums
        Ok(SpanningTreeResult {
            parent,
            rounds,
            sparsified,
        })
    }
}

fn tree_params(h: &UGraph, seed: u64, walk_len: usize) -> ExpanderParams {
    let n = h.node_count();
    let log_n = log2_ceil(n).max(2);
    let degree = h.max_degree().max(1);
    let lambda = 2 * log_n;
    let delta = (2 * degree * lambda).max(16 * log_n).div_ceil(8) * 8;
    let mut params = ExpanderParams::for_n(n);
    params.delta = delta;
    params.lambda = lambda;
    params.walk_len = walk_len;
    params.evolutions = log_n + 4;
    params.ncc0_cap = 2 * delta;
    params.seed = seed;
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;

    fn check(g: &DiGraph, seed: u64) -> SpanningTreeResult {
        let algo = HybridSpanningTree { seed, walk_len: 12 };
        let result = algo.run(g).expect("spanning tree must succeed");
        assert!(
            analysis::is_spanning_tree(&g.to_undirected(), &result.parent),
            "output must be a spanning tree of the input graph"
        );
        result
    }

    #[test]
    fn spanning_tree_of_line_and_cycle() {
        check(&generators::line(64), 1);
        check(&generators::cycle(64), 2);
    }

    #[test]
    fn spanning_tree_of_high_degree_graphs() {
        check(&generators::star(128), 3);
        check(&generators::connected_random(96, 0.15, 4), 4);
    }

    #[test]
    fn spanning_tree_of_grid_and_caveman() {
        check(&generators::grid(8, 8), 5);
        check(&generators::caveman(6, 8), 6);
    }

    #[test]
    fn rounds_are_polylogarithmic() {
        let result = check(&generators::connected_random(128, 0.1, 7), 7);
        // Generous polylog bound for n = 128 (log n = 7).
        assert!(
            result.rounds <= 60 * 7,
            "rounds {} look super-polylogarithmic",
            result.rounds
        );
    }

    #[test]
    fn singleton_and_errors() {
        let result = HybridSpanningTree::default().run(&DiGraph::new(1)).unwrap();
        assert_eq!(result.parent, vec![NodeId::from(0usize)]);
        assert!(HybridSpanningTree::default().run(&DiGraph::new(0)).is_err());
        let disconnected = generators::disjoint_union(&[generators::line(4), generators::line(4)]);
        assert_eq!(
            HybridSpanningTree::default()
                .run(&disconnected)
                .unwrap_err(),
            OverlayError::Disconnected
        );
    }
}
