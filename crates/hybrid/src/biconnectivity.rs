//! Biconnected components via Tarjan–Vishkin (Theorem 1.4).
//!
//! The algorithm follows Section 4.4: compute a rooted spanning tree `T` of `G`
//! (Theorem 1.3), label every vertex with its preorder number `l(v)`, subtree size
//! `nd(v)` and the subtree aggregates `low(v)`/`high(v)`, build the helper graph `G''`
//! whose nodes are the tree edges of `T` and whose edges are given by the paper's three
//! rules (Figure 1), compute the connected components of `G''` with the machinery of
//! Theorem 1.2, and finally attach the non-tree edges (rule 3). Two edges of `G` end up
//! in the same component of `G''` if and only if they lie on a common simple cycle,
//! i.e. belong to the same biconnected component.
//!
//! The spanning tree, the helper-graph component computation and the final grouping run
//! through the hybrid pipelines of this crate; the label/aggregate computation
//! (`l`, `nd`, `low`, `high`) is performed by the harness and charged `O(log n)` rounds,
//! standing in for the Euler-tour/pointer-jumping primitives of \[19\] the paper invokes
//! (see DESIGN.md).

use crate::components::{ComponentsConfig, HybridComponents};
use crate::spanning_tree::{HybridSpanningTree, SpanningTreeResult};
use overlay_core::OverlayError;
use overlay_graph::{analysis, DiGraph, NodeId, UGraph};
use overlay_netsim::caps::log2_ceil;
use std::collections::{BTreeMap, BTreeSet};

type EdgeKey = (NodeId, NodeId);

fn norm(a: NodeId, b: NodeId) -> EdgeKey {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The output of the distributed biconnectivity algorithm.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BiconnectivityResult {
    /// The biconnected components, each as a set of (deduplicated, undirected) edges.
    pub components: Vec<BTreeSet<EdgeKey>>,
    /// Cut vertices (articulation points).
    pub cut_vertices: BTreeSet<NodeId>,
    /// Bridge edges.
    pub bridges: BTreeSet<EdgeKey>,
    /// Whether the whole graph is biconnected.
    pub biconnected: bool,
    /// Rounds charged across all phases.
    pub rounds: usize,
}

impl BiconnectivityResult {
    /// The component index of an edge, if the edge exists.
    pub fn component_of_edge(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let key = norm(u, v);
        self.components.iter().position(|c| c.contains(&key))
    }
}

/// Computes biconnected components, cut vertices and bridges of a weakly connected
/// graph in the hybrid model (Theorem 1.4).
#[derive(Clone, Copy, Debug)]
pub struct DistributedBiconnectivity {
    /// Seed for all randomness.
    pub seed: u64,
}

impl Default for DistributedBiconnectivity {
    fn default() -> Self {
        DistributedBiconnectivity { seed: 0xB1C0_0001 }
    }
}

/// Per-vertex labels of the rooted spanning tree.
#[derive(Clone, Debug)]
struct TreeLabels {
    parent: Vec<NodeId>,
    preorder: Vec<usize>,
    nd: Vec<usize>,
    low: Vec<usize>,
    high: Vec<usize>,
    children: Vec<Vec<NodeId>>,
}

impl DistributedBiconnectivity {
    /// Runs the algorithm on (the undirected version of) `g`.
    ///
    /// # Errors
    ///
    /// Propagates errors from the spanning-tree phase (empty or disconnected inputs).
    pub fn run(&self, g: &DiGraph) -> Result<BiconnectivityResult, OverlayError> {
        let und = g.to_undirected();
        let n = und.node_count();
        if n == 0 {
            return Err(OverlayError::EmptyGraph);
        }

        // Step 1: rooted spanning tree (Theorem 1.3).
        let tree_algo = HybridSpanningTree {
            seed: self.seed,
            walk_len: 12,
        };
        let SpanningTreeResult {
            parent,
            rounds: tree_rounds,
            ..
        } = tree_algo.run(g)?;

        // Step 2: preorder labels and subtree aggregates.
        let labels = compute_labels(&und, &parent);

        // Step 3: helper graph G'' over tree edges. The G''-node of a non-root vertex v
        // represents the tree edge {v, parent(v)}.
        let tree_node: Vec<Option<usize>> = (0..n)
            .map(|v| (labels.parent[v].index() != v).then_some(v))
            .collect();
        let gpp_index: BTreeMap<usize, usize> = tree_node
            .iter()
            .flatten()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut gpp = DiGraph::new(gpp_index.len());
        let add_gpp_edge = |a: usize, b: usize, gpp: &mut DiGraph| {
            let (ia, ib) = (gpp_index[&a], gpp_index[&b]);
            gpp.add_edge(NodeId::from(ia), NodeId::from(ib));
        };

        let l = &labels.preorder;
        let nd = &labels.nd;
        for v in 0..n {
            // Rule 1: non-tree edges between different subtrees connect the two parent
            // edges.
            for &w in &und.distinct_neighbors(NodeId::from(v)) {
                let w = w.index();
                if labels.parent[w].index() == v || labels.parent[v].index() == w {
                    continue; // tree edge
                }
                if l[v] + nd[v] <= l[w] {
                    add_gpp_edge(v, w, &mut gpp);
                }
            }
            // Rule 2: a child w of v whose subtree reaches outside v's subtree connects
            // the parent edges of w and v.
            if labels.parent[v].index() != v {
                for &w in &labels.children[v] {
                    let w = w.index();
                    if labels.low[w] < l[v] || labels.high[w] >= l[v] + nd[v] {
                        add_gpp_edge(w, v, &mut gpp);
                    }
                }
            }
        }
        gpp.dedup_edges();

        // Step 4: connected components of G'' via Theorem 1.2.
        let comp_config = ComponentsConfig {
            seed: self.seed ^ 0x00B1_C077,
            walk_len: 12,
            ..ComponentsConfig::default()
        };
        let gpp_components = if gpp.node_count() > 0 {
            Some(HybridComponents::new(comp_config).run(&gpp)?)
        } else {
            None
        };

        // Step 5: group the tree edges by component and attach the non-tree edges
        // (rule 3: a non-tree edge {v, w} with l(v) < l(w) joins the component of w's
        // parent edge).
        let mut component_of_tree_edge: BTreeMap<usize, NodeId> = BTreeMap::new();
        if let Some(result) = &gpp_components {
            for (&v, &i) in &gpp_index {
                component_of_tree_edge.insert(v, result.component_of[i]);
            }
        }
        let mut groups: BTreeMap<NodeId, BTreeSet<EdgeKey>> = BTreeMap::new();
        for (&v, &comp) in &component_of_tree_edge {
            let p = labels.parent[v];
            groups
                .entry(comp)
                .or_default()
                .insert(norm(NodeId::from(v), p));
        }
        for v in 0..n {
            for &w in &und.distinct_neighbors(NodeId::from(v)) {
                let w_idx = w.index();
                if labels.parent[w_idx].index() == v || labels.parent[v].index() == w_idx {
                    continue;
                }
                if l[v] < l[w_idx] {
                    // Attach to the component of w's parent edge.
                    if let Some(&comp) = component_of_tree_edge.get(&w_idx) {
                        groups
                            .entry(comp)
                            .or_default()
                            .insert(norm(NodeId::from(v), w));
                    }
                }
            }
        }

        let components: Vec<BTreeSet<EdgeKey>> = groups.into_values().collect();
        let mut membership_count = vec![0usize; n];
        for component in &components {
            let mut seen = BTreeSet::new();
            for &(a, b) in component {
                seen.insert(a);
                seen.insert(b);
            }
            for v in seen {
                membership_count[v.index()] += 1;
            }
        }
        let cut_vertices: BTreeSet<NodeId> = (0..n)
            .filter(|&v| membership_count[v] >= 2)
            .map(NodeId::from)
            .collect();
        let bridges: BTreeSet<EdgeKey> = components
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| *c.iter().next().expect("non-empty component"))
            .collect();
        let biconnected =
            analysis::is_connected(&und) && cut_vertices.is_empty() && components.len() <= 1;

        let log_n = log2_ceil(n).max(1);
        let gpp_rounds = gpp_components.as_ref().map(|c| c.rounds).unwrap_or(0);
        let rounds = tree_rounds + 4 * log_n + gpp_rounds + 2;
        Ok(BiconnectivityResult {
            components,
            cut_vertices,
            bridges,
            biconnected,
            rounds,
        })
    }
}

/// Computes preorder numbers, subtree sizes and the `low`/`high` subtree aggregates of
/// the rooted spanning tree given by `parent`, with respect to the graph `g`.
fn compute_labels(g: &UGraph, parent: &[NodeId]) -> TreeLabels {
    let n = parent.len();
    let root = (0..n)
        .find(|&v| parent[v].index() == v)
        .map(NodeId::from)
        .expect("spanning tree has a root");
    let mut children = vec![Vec::new(); n];
    for (v, &p) in parent.iter().enumerate() {
        if p.index() != v {
            children[p.index()].push(NodeId::from(v));
        }
    }
    for c in &mut children {
        c.sort_unstable();
    }

    // Iterative preorder DFS.
    let mut preorder = vec![0usize; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![root];
    let mut counter = 0usize;
    while let Some(v) = stack.pop() {
        preorder[v.index()] = counter;
        counter += 1;
        order.push(v);
        for &c in children[v.index()].iter().rev() {
            stack.push(c);
        }
    }

    // Subtree sizes and low/high aggregates in reverse DFS order.
    let mut nd = vec![1usize; n];
    let mut low = vec![0usize; n];
    let mut high = vec![0usize; n];
    for &v in &order {
        let mut lo = preorder[v.index()];
        let mut hi = preorder[v.index()];
        for &w in g.neighbors(v) {
            lo = lo.min(preorder[w.index()]);
            hi = hi.max(preorder[w.index()]);
        }
        low[v.index()] = lo;
        high[v.index()] = hi;
    }
    for &v in order.iter().rev() {
        let p = parent[v.index()];
        if p != v {
            nd[p.index()] += nd[v.index()];
            let (lv, hv) = (low[v.index()], high[v.index()]);
            low[p.index()] = low[p.index()].min(lv);
            high[p.index()] = high[p.index()].max(hv);
        }
    }

    let _ = root;
    TreeLabels {
        parent: parent.to_vec(),
        preorder,
        nd,
        low,
        high,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::{generators, sequential};

    fn check_against_tarjan(g: &DiGraph, seed: u64) -> BiconnectivityResult {
        let result = DistributedBiconnectivity { seed }
            .run(g)
            .expect("biconnectivity must succeed");
        let truth = sequential::biconnected_components(&g.to_undirected());
        assert_eq!(
            result.cut_vertices, truth.cut_vertices,
            "cut vertices must match Tarjan's"
        );
        assert_eq!(result.bridges, truth.bridges, "bridges must match Tarjan's");
        let mut ours: Vec<BTreeSet<EdgeKey>> = result.components.clone();
        let mut theirs: Vec<BTreeSet<EdgeKey>> = truth.components.clone();
        ours.sort();
        theirs.sort();
        assert_eq!(ours, theirs, "biconnected components must match Tarjan's");
        result
    }

    #[test]
    fn cycle_is_biconnected() {
        let result = check_against_tarjan(&generators::cycle(24), 1);
        assert!(result.biconnected);
        assert_eq!(result.components.len(), 1);
    }

    #[test]
    fn line_is_all_bridges() {
        let result = check_against_tarjan(&generators::line(16), 2);
        assert!(!result.biconnected);
        assert_eq!(result.bridges.len(), 15);
        assert_eq!(result.cut_vertices.len(), 14);
    }

    #[test]
    fn chained_cycles_have_one_component_per_block() {
        let result = check_against_tarjan(&generators::chained_cycles(4, 6), 3);
        assert_eq!(result.components.len(), 4);
        assert_eq!(result.cut_vertices.len(), 3);
        assert!(result.bridges.is_empty());
    }

    #[test]
    fn figure_one_example_matches() {
        // Triangle {0,1,2} plus pendant edge {2,3}: Figure 1's structure.
        let mut g = DiGraph::new(4);
        g.add_edge(0.into(), 1.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(0.into(), 2.into());
        g.add_edge(2.into(), 3.into());
        let result = check_against_tarjan(&g, 4);
        assert_eq!(result.components.len(), 2);
        assert_eq!(
            result.cut_vertices.iter().copied().collect::<Vec<_>>(),
            vec![NodeId::from(2usize)]
        );
    }

    #[test]
    fn star_and_grid() {
        check_against_tarjan(&generators::star(24), 5);
        check_against_tarjan(&generators::grid(5, 4), 6);
    }

    #[test]
    fn random_graphs_match_tarjan() {
        for seed in 0..3u64 {
            let g = generators::connected_random(40, 0.08, seed);
            check_against_tarjan(&g, 10 + seed);
        }
    }

    #[test]
    fn labels_are_consistent() {
        let g = generators::binary_tree(15).to_undirected();
        let (parent, _) = sequential::bfs_tree(&g, NodeId::from(0usize));
        let labels = compute_labels(&g, &parent);
        assert_eq!(labels.nd[0], 15);
        // Preorder numbers are a permutation of 0..n.
        let mut sorted = labels.preorder.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..15).collect::<Vec<_>>());
    }
}
