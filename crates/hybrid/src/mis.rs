//! Maximal independent set in `O(log d + log log n)` rounds (Theorem 1.5).
//!
//! The algorithm combines the shattering technique with the overlay construction:
//!
//! 1. **Shattering:** Ghaffari's desire-level algorithm runs for `Θ(log d)` CONGEST
//!    rounds on the local edges ([`GhaffariNode`]), after which w.h.p. only small,
//!    isolated components of undecided nodes remain.
//! 2. **Finishing:** on every undecided component, `Θ(log n)` independent executions of
//!    Métivier et al.'s single-bit MIS run in parallel; the component's well-formed tree
//!    (Theorem 1.2) lets the root detect the first execution that finished and broadcast
//!    its index, which takes `O(log m + log log n)` rounds for components of size `m`.
//!
//! The Ghaffari stage runs as a message-level protocol in the simulator. The parallel
//! Métivier executions and the winner selection are simulated by the harness per
//! component (each execution is the exact random process, with its round count
//! recorded); the charged rounds follow the paper's accounting (see DESIGN.md).

use overlay_graph::{analysis, DiGraph, NodeId, UGraph};
use overlay_netsim::caps::log2_ceil;
use overlay_netsim::{Ctx, Envelope, Protocol, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Decision state of a node during the MIS computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MisDecision {
    /// Not decided yet.
    Undecided,
    /// In the independent set.
    InMis,
    /// Dominated by a neighbor in the set.
    Covered,
}

/// Messages of the Ghaffari shattering protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GhaffariMsg {
    /// Per-round exchange: whether the sender marked itself, and its desire level.
    Round {
        /// Marked this round.
        marked: bool,
        /// Current desire level.
        desire: f64,
    },
    /// The sender joined the MIS.
    Joined,
    /// The sender decided (covered) and stops participating.
    Retired,
}

/// Per-node state of Ghaffari's desire-level MIS algorithm (the shattering stage).
#[derive(Debug)]
pub struct GhaffariNode {
    active_neighbors: BTreeSet<NodeId>,
    desire: f64,
    marked: bool,
    decision: MisDecision,
    rounds_budget: usize,
}

impl GhaffariNode {
    /// Creates the state machine for node `id` with its (undirected) neighbors, running
    /// for `rounds_budget` rounds.
    pub fn new(id: NodeId, neighbors: Vec<NodeId>, rounds_budget: usize) -> Self {
        GhaffariNode {
            active_neighbors: neighbors.into_iter().filter(|&v| v != id).collect(),
            desire: 0.5,
            marked: false,
            decision: MisDecision::Undecided,
            rounds_budget,
        }
    }

    /// The node's decision after the shattering stage (possibly still undecided).
    pub fn decision(&self) -> MisDecision {
        self.decision
    }

    fn announce(&mut self, ctx: &mut Ctx<'_, GhaffariMsg>) {
        self.marked = ctx.rng().gen_bool(self.desire);
        for &v in &self.active_neighbors {
            ctx.send_local(
                v,
                GhaffariMsg::Round {
                    marked: self.marked,
                    desire: self.desire,
                },
            );
        }
    }

    fn retire(&mut self, ctx: &mut Ctx<'_, GhaffariMsg>, decision: MisDecision) {
        self.decision = decision;
        let msg = if decision == MisDecision::InMis {
            GhaffariMsg::Joined
        } else {
            GhaffariMsg::Retired
        };
        for &v in &self.active_neighbors {
            ctx.send_local(v, msg);
        }
        self.active_neighbors.clear();
    }
}

impl Protocol for GhaffariNode {
    type Message = GhaffariMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GhaffariMsg>) {
        if self.active_neighbors.is_empty() {
            self.decision = MisDecision::InMis;
            return;
        }
        self.announce(ctx);
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, GhaffariMsg>, inbox: &[Envelope<GhaffariMsg>]) {
        if self.decision != MisDecision::Undecided {
            return;
        }
        let mut neighbor_marked = false;
        let mut effective_degree = 0.0;
        let mut covered = false;
        for env in inbox {
            match env.payload {
                GhaffariMsg::Round { marked, desire } => {
                    if self.active_neighbors.contains(&env.from) {
                        neighbor_marked |= marked;
                        effective_degree += desire;
                    }
                }
                GhaffariMsg::Joined => {
                    covered = true;
                    self.active_neighbors.remove(&env.from);
                }
                GhaffariMsg::Retired => {
                    self.active_neighbors.remove(&env.from);
                }
            }
        }
        if covered {
            self.retire(ctx, MisDecision::Covered);
            return;
        }
        if self.marked && !neighbor_marked {
            self.retire(ctx, MisDecision::InMis);
            return;
        }
        if self.active_neighbors.is_empty() {
            self.retire(ctx, MisDecision::InMis);
            return;
        }
        // Desire-level update (Ghaffari 2016): halve under contention, double otherwise.
        if effective_degree >= 2.0 {
            self.desire /= 2.0;
        } else {
            self.desire = (self.desire * 2.0).min(0.5);
        }
        if ctx.round() < self.rounds_budget {
            self.announce(ctx);
        } else {
            // Past the budget no marks are exchanged any more; clearing the stale mark
            // prevents two neighbors from both joining based on old information.
            self.marked = false;
        }
    }

    fn is_done(&self) -> bool {
        self.decision != MisDecision::Undecided
    }
}

/// The output of the hybrid MIS algorithm.
#[derive(Clone, Debug)]
pub struct HybridMisResult {
    /// The maximal independent set.
    pub mis: Vec<NodeId>,
    /// Rounds of the shattering stage.
    pub shattering_rounds: usize,
    /// Rounds charged for the finishing stage (the maximum over components of the
    /// winning execution's rounds plus the overlay aggregation overhead).
    pub finishing_rounds: usize,
    /// Size of the largest undecided component after shattering (the quantity the
    /// shattering lemma bounds by `O(d⁴ log_d n)`).
    pub largest_undecided_component: usize,
    /// Number of nodes still undecided after shattering.
    pub undecided_after_shattering: usize,
}

impl HybridMisResult {
    /// Total rounds charged.
    pub fn total_rounds(&self) -> usize {
        self.shattering_rounds + self.finishing_rounds
    }
}

/// Computes a maximal independent set of (the undirected version of) an arbitrary
/// graph in the hybrid model.
#[derive(Clone, Copy, Debug)]
pub struct HybridMis {
    /// Seed for all randomness.
    pub seed: u64,
    /// Multiplier `c` for the shattering budget `c·(⌈log₂ d⌉ + 1)`.
    pub shattering_factor: usize,
    /// Number of parallel Métivier executions per component (`Θ(log n)`).
    pub executions: usize,
}

impl Default for HybridMis {
    fn default() -> Self {
        HybridMis {
            seed: 0x0415_0001,
            shattering_factor: 8,
            executions: 0, // 0 means "use ⌈log₂ n⌉ + 1"
        }
    }
}

impl HybridMis {
    /// Runs the algorithm on `g`.
    pub fn run(&self, g: &DiGraph) -> HybridMisResult {
        let und = g.to_undirected();
        let n = und.node_count();
        if n == 0 {
            return HybridMisResult {
                mis: Vec::new(),
                shattering_rounds: 0,
                finishing_rounds: 0,
                largest_undecided_component: 0,
                undecided_after_shattering: 0,
            };
        }
        let d = und.max_degree().max(1);
        let log_d = log2_ceil(d).max(1);
        let log_n = log2_ceil(n).max(1);
        let budget = self.shattering_factor * (log_d + 1);

        // Stage 1: Ghaffari shattering over local edges.
        let local_edges: Vec<Vec<NodeId>> =
            und.nodes().map(|v| und.distinct_neighbors(v)).collect();
        let nodes: Vec<GhaffariNode> = und
            .nodes()
            .map(|v| GhaffariNode::new(v, und.distinct_neighbors(v), budget))
            .collect();
        let config = SimConfig {
            seed: self.seed,
            local_edges: Some(local_edges),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(nodes, config);
        sim.run(budget + 2);
        let shattering_rounds = sim.round().min(budget + 2);
        let decisions: Vec<MisDecision> = sim.nodes().iter().map(GhaffariNode::decision).collect();
        let mut mis: Vec<NodeId> = (0..n)
            .filter(|&v| decisions[v] == MisDecision::InMis)
            .map(NodeId::from)
            .collect();

        // Stage 2: finish on the undecided components. A node with a neighbor already in
        // the set counts as covered even if its notification was still in flight when
        // the shattering stage ended.
        let undecided: Vec<usize> = (0..n)
            .filter(|&v| {
                decisions[v] == MisDecision::Undecided
                    && !und
                        .distinct_neighbors(NodeId::from(v))
                        .iter()
                        .any(|w| decisions[w.index()] == MisDecision::InMis)
            })
            .collect();
        let undecided_set: BTreeSet<usize> = undecided.iter().copied().collect();
        let mut sub = UGraph::new(n);
        for &v in &undecided {
            for &w in &und.distinct_neighbors(NodeId::from(v)) {
                if w.index() > v && undecided_set.contains(&w.index()) {
                    sub.add_edge(NodeId::from(v), w);
                }
            }
        }
        let comps = analysis::connected_components(&sub);
        let mut finishing_rounds = 0usize;
        let mut largest = 0usize;
        let executions = if self.executions == 0 {
            log_n + 1
        } else {
            self.executions
        };
        for (label, members) in comps.members().into_iter().enumerate() {
            let members: Vec<usize> = members
                .into_iter()
                .map(NodeId::index)
                .filter(|v| undecided_set.contains(v))
                .collect();
            if members.is_empty() {
                continue;
            }
            largest = largest.max(members.len());
            let (winner_set, winner_rounds) = best_metivier_execution(
                &und,
                &members,
                executions,
                self.seed ^ ((label as u64 + 1) << 20),
            );
            mis.extend(winner_set);
            let m = members.len();
            let overhead = 2 * (log2_ceil(m).max(1) + log2_ceil(log_n).max(1) + 2);
            finishing_rounds = finishing_rounds.max(winner_rounds + overhead);
        }

        mis.sort_unstable();
        mis.dedup();
        HybridMisResult {
            mis,
            shattering_rounds,
            finishing_rounds,
            largest_undecided_component: largest,
            undecided_after_shattering: undecided.len(),
        }
    }
}

/// Runs `executions` independent Métivier executions of the MIS process restricted to
/// `members` (all undecided, with no decided neighbors relevant since decided neighbors
/// are either covered — irrelevant — or in the MIS — impossible, as their neighbors
/// would be covered) and returns the result of the execution that finished first,
/// together with its round count.
fn best_metivier_execution(
    g: &UGraph,
    members: &[usize],
    executions: usize,
    seed: u64,
) -> (Vec<NodeId>, usize) {
    let member_set: BTreeSet<usize> = members.iter().copied().collect();
    let mut best: Option<(Vec<NodeId>, usize)> = None;
    for exec in 0..executions.max(1) {
        let mut rng = StdRng::seed_from_u64(seed ^ (exec as u64).wrapping_mul(0x9E37_79B9));
        let mut undecided: BTreeSet<usize> = member_set.clone();
        let mut in_mis = Vec::new();
        let mut rounds = 0usize;
        while !undecided.is_empty() {
            rounds += 1;
            // Every undecided node draws a random value; local minima join.
            let values: std::collections::BTreeMap<usize, u64> =
                undecided.iter().map(|&v| (v, rng.gen::<u64>())).collect();
            let mut joined = Vec::new();
            for &v in &undecided {
                let mine = (values[&v], v);
                let is_min = g
                    .distinct_neighbors(NodeId::from(v))
                    .iter()
                    .filter(|w| undecided.contains(&w.index()))
                    .all(|w| (values[&w.index()], w.index()) > mine);
                if is_min {
                    joined.push(v);
                }
            }
            for &v in &joined {
                in_mis.push(NodeId::from(v));
                undecided.remove(&v);
                for w in g.distinct_neighbors(NodeId::from(v)) {
                    undecided.remove(&w.index());
                }
            }
            if rounds > 4 * members.len() + 16 {
                break;
            }
        }
        let candidate = (in_mis, rounds);
        best = match best {
            None => Some(candidate),
            Some(prev) if candidate.1 < prev.1 => Some(candidate),
            Some(prev) => Some(prev),
        };
    }
    best.expect("at least one execution runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::{generators, sequential};

    fn check(g: &DiGraph, seed: u64) -> HybridMisResult {
        let result = HybridMis {
            seed,
            ..HybridMis::default()
        }
        .run(g);
        assert!(
            sequential::is_maximal_independent_set(&g.to_undirected(), &result.mis),
            "output must be a maximal independent set"
        );
        result
    }

    #[test]
    fn mis_is_valid_on_standard_graphs() {
        check(&generators::line(64), 1);
        check(&generators::cycle(65), 2);
        check(&generators::star(64), 3);
        check(&generators::grid(8, 8), 4);
    }

    #[test]
    fn mis_is_valid_on_random_graphs() {
        for seed in 0..3u64 {
            check(&generators::connected_random(128, 0.05, seed), 10 + seed);
            check(&generators::random_regular(100, 6, seed), 20 + seed);
        }
    }

    #[test]
    fn shattering_leaves_few_undecided_nodes() {
        let result = check(&generators::random_regular(256, 8, 5), 31);
        assert!(
            result.undecided_after_shattering <= 256 / 4,
            "shattering should decide most nodes, {} remain",
            result.undecided_after_shattering
        );
        assert!(result.largest_undecided_component <= 64);
    }

    #[test]
    fn rounds_scale_with_degree_not_n() {
        // Same degree, very different sizes: the shattering budget is identical and the
        // finishing stage only depends on the (small) undecided components.
        let small = check(&generators::random_regular(64, 4, 7), 41);
        let large = check(&generators::random_regular(512, 4, 7), 42);
        // The shattering budget depends on the degree only (here 8·(⌈log₂ 4⌉ + 1) + 2);
        // runs may end earlier once every node has decided.
        let budget = 8 * (log2_ceil(4) + 1) + 2;
        assert!(small.shattering_rounds <= budget);
        assert!(large.shattering_rounds <= budget);
        let log_log = log2_ceil(log2_ceil(512)).max(1);
        assert!(
            large.finishing_rounds <= 30 * log_log.max(4),
            "finishing rounds {} should depend on log d + log log n only",
            large.finishing_rounds
        );
    }

    #[test]
    fn empty_graph_yields_empty_mis() {
        let result = HybridMis::default().run(&DiGraph::new(0));
        assert!(result.mis.is_empty());
        assert_eq!(result.total_rounds(), 0);
    }

    #[test]
    fn isolated_nodes_all_join() {
        let result = check(&DiGraph::new(10), 9);
        assert_eq!(result.mis.len(), 10);
    }
}
