//! Degree reduction for arbitrary-degree graphs (Section 4.2, Lemma 4.3).
//!
//! The NCC0 pipeline requires a constant initial degree. For arbitrary graphs the paper
//! first builds a sparse spanner (Elkin–Neiman / Miller et al.) whose *out*-degree is
//! `O(log n)` w.h.p., and then lets every node delegate its incoming spanner edges to
//! its incoming neighbors (arranged as a path), producing a graph `H` of degree
//! `O(log n)` in which two nodes are connected if and only if they are connected in the
//! initial graph.
//!
//! The spanner's broadcast phase (every node floods its exponential random value for
//! `2·log m + 1` rounds over local edges) and the one-round delegation are standard
//! CONGEST procedures; here they are computed by the harness with the same semantics
//! and charged `2·⌈log₂ m⌉ + 3` rounds (see DESIGN.md, substitution table).

use overlay_graph::{analysis, DiGraph, NodeId, UGraph};
use overlay_netsim::caps::log2_ceil;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The output of the degree-reduction preprocessing.
#[derive(Clone, Debug)]
pub struct SparsifyResult {
    /// The spanner `S(G)`: a subgraph of the initial graph (directed, per-node
    /// out-edges) with out-degree `O(log n)`.
    pub spanner: DiGraph,
    /// The degree-reduced graph `H` (undirected view). `H` is *not* a subgraph of `G`:
    /// delegated edges connect former co-neighbors.
    pub reduced: UGraph,
    /// For every delegated edge `{a, b}` of `H` that is not an edge of `G`, the node `v`
    /// whose incoming edges were delegated (i.e. `{a, v}` and `{b, v}` are edges of
    /// `G`). Used by the spanning-tree algorithm to map `H`-edges back to `G`-edges.
    pub delegation_center: Vec<((NodeId, NodeId), NodeId)>,
    /// CONGEST rounds charged for the preprocessing.
    pub rounds: usize,
}

impl SparsifyResult {
    /// Returns the delegation center of an `H`-edge, if it is a delegated edge.
    pub fn center_of(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.delegation_center
            .iter()
            .find(|(e, _)| *e == key)
            .map(|(_, c)| *c)
    }
}

/// Runs the two-step degree reduction on (the undirected version of) `g`.
///
/// `degree_threshold_factor` is the constant `c` of the paper's Step 1: nodes of degree
/// below `c·⌈log₂ n⌉` simply keep all their edges. The default used by the experiments
/// is 4.
pub fn sparsify(g: &DiGraph, seed: u64, degree_threshold_factor: usize) -> SparsifyResult {
    let und = g.to_undirected();
    let n = und.node_count();
    let log_n = log2_ceil(n).max(1);
    let threshold = degree_threshold_factor * log_n;
    let mut rng = StdRng::seed_from_u64(seed);

    // Component sizes determine the broadcast radius (the paper uses the known bound m).
    let comps = analysis::connected_components(&und);
    let comp_sizes: Vec<usize> = {
        let mut sizes = vec![0usize; comps.component_count()];
        for v in 0..n {
            sizes[comps.label(NodeId::from(v))] += 1;
        }
        sizes
    };

    // Step 1a: every node draws r_v ~ Exp(1/2); values above 2·log m are discarded.
    let r: Vec<Option<f64>> = (0..n)
        .map(|v| {
            let m = comp_sizes[comps.label(NodeId::from(v))] as f64;
            let sample: f64 = -2.0 * (1.0 - rng.gen::<f64>()).ln();
            (sample <= 2.0 * m.log2().max(1.0)).then_some(sample)
        })
        .collect();

    // Step 1b: bounded-radius broadcast of (r_u - dist). For every node v we compute
    // m_u(v) = r_u - d(u, v) for all u within distance 2·log m + 1 and remember the
    // predecessor on the path over which the best value arrived. This is the multi-source
    // Bellman-Ford-style flood of Elkin–Neiman, executed here for `radius` rounds.
    let mut best: Vec<f64> = (0..n).map(|v| r[v].unwrap_or(f64::NEG_INFINITY)).collect();
    let mut pred: Vec<NodeId> = (0..n).map(NodeId::from).collect();
    let mut source: Vec<NodeId> = (0..n).map(NodeId::from).collect();
    // Track, per node, all (source, value, predecessor) offers within 1 of the maximum.
    // To stay within CONGEST the real protocol forwards only the best offer per round;
    // keeping the top offers here is equivalent for the edge rule below.
    let mut offers: Vec<Vec<(NodeId, f64, NodeId)>> = (0..n)
        .map(|v| match r[v] {
            Some(val) => vec![(NodeId::from(v), val, NodeId::from(v))],
            None => Vec::new(),
        })
        .collect();
    let radius = 2 * log_n + 1;
    for _ in 0..radius {
        let mut new_offers: Vec<Vec<(NodeId, f64, NodeId)>> = vec![Vec::new(); n];
        for (v, offer_list) in offers.iter().enumerate() {
            for &(src, val, _) in offer_list {
                for &w in und.neighbors(NodeId::from(v)) {
                    new_offers[w.index()].push((src, val - 1.0, NodeId::from(v)));
                }
            }
        }
        for v in 0..n {
            offers[v].extend(new_offers[v].iter().copied());
            // Keep only the best offer per source, and only offers within 1.5 of the max
            // (anything further can never satisfy the m(v) - 1 rule).
            offers[v].sort_by(|a, b| (a.0, b.1).partial_cmp(&(b.0, a.1)).expect("finite"));
            offers[v].dedup_by_key(|o| o.0);
            let max = offers[v]
                .iter()
                .map(|o| o.1)
                .fold(f64::NEG_INFINITY, f64::max);
            offers[v].retain(|o| o.1 >= max - 1.5);
            if max > best[v] {
                best[v] = max;
            }
        }
    }
    for v in 0..n {
        if let Some(&(src, _, p)) = offers[v]
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        {
            source[v] = src;
            pred[v] = p;
        }
    }

    // Step 1c: spanner edges. Every node adds an edge to the predecessor of every offer
    // within 1 of its maximum; low-degree nodes add all their edges.
    let mut spanner = DiGraph::new(n);
    #[allow(clippy::needless_range_loop)] // `v` indexes `offers`, `und` and `spanner` alike
    for v in 0..n {
        let deg = und.degree(NodeId::from(v));
        if deg < threshold {
            for &w in &und.distinct_neighbors(NodeId::from(v)) {
                spanner.add_edge(NodeId::from(v), w);
            }
            continue;
        }
        let max = offers[v]
            .iter()
            .map(|o| o.1)
            .fold(f64::NEG_INFINITY, f64::max);
        for &(_, val, p) in &offers[v] {
            if val >= max - 1.0 && p != NodeId::from(v) {
                spanner.add_edge(NodeId::from(v), p);
            }
        }
    }
    spanner.dedup_edges();
    let _ = (best, source);

    // Step 2: delegation. Every node v sorts its incoming spanner neighbors and chains
    // them into a path, keeping only the edge to the first of them.
    let mut incoming: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (u, v) in spanner.edges() {
        if u != v {
            incoming[v.index()].push(u);
        }
    }
    let mut reduced = UGraph::new(n);
    let mut delegation_center = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    let mut add_once = |reduced: &mut UGraph, a: NodeId, b: NodeId| {
        let key = if a <= b { (a, b) } else { (b, a) };
        if a != b && seen.insert(key) {
            reduced.add_edge(a, b);
            return true;
        }
        false
    };
    for (v, inc) in incoming.iter_mut().enumerate() {
        inc.sort_unstable();
        inc.dedup();
        if inc.is_empty() {
            continue;
        }
        add_once(&mut reduced, NodeId::from(v), inc[0]);
        for i in 1..inc.len() {
            if add_once(&mut reduced, inc[i - 1], inc[i])
                && !und.neighbors(inc[i - 1]).contains(&inc[i])
            {
                delegation_center.push((
                    if inc[i - 1] <= inc[i] {
                        (inc[i - 1], inc[i])
                    } else {
                        (inc[i], inc[i - 1])
                    },
                    NodeId::from(v),
                ));
            }
        }
    }

    SparsifyResult {
        spanner,
        reduced,
        delegation_center,
        rounds: radius + 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;

    fn check_components_preserved(g: &DiGraph, result: &SparsifyResult) {
        let before = analysis::connected_components(&g.to_undirected());
        let after = analysis::connected_components(&result.reduced);
        assert_eq!(before.component_count(), after.component_count());
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                assert_eq!(
                    before.same_component(u.into(), v.into()),
                    after.same_component(u.into(), v.into()),
                    "component relation changed for {u}, {v}"
                );
            }
        }
    }

    #[test]
    fn star_degree_collapses() {
        let n = 256;
        let g = generators::star(n);
        let result = sparsify(&g, 1, 4);
        check_components_preserved(&g, &result);
        let log_n = log2_ceil(n);
        assert!(
            result.reduced.max_degree() <= 6 * log_n,
            "reduced degree {} not O(log n)",
            result.reduced.max_degree()
        );
    }

    #[test]
    fn low_degree_graphs_are_preserved() {
        let g = generators::cycle(64);
        let result = sparsify(&g, 2, 4);
        check_components_preserved(&g, &result);
        // Every node has degree 2 < threshold, so the spanner keeps all edges.
        assert_eq!(result.spanner.edge_count(), 2 * 64);
    }

    #[test]
    fn disconnected_graphs_stay_disconnected() {
        let g = generators::disjoint_union(&[
            generators::star(100),
            generators::cycle(32),
            generators::line(20),
        ]);
        let result = sparsify(&g, 3, 4);
        check_components_preserved(&g, &result);
    }

    #[test]
    fn dense_random_graph_gets_logarithmic_degree() {
        let n = 128;
        let g = generators::connected_random(n, 0.3, 5);
        assert!(g.to_undirected().max_degree() > 20);
        let result = sparsify(&g, 7, 4);
        check_components_preserved(&g, &result);
        let log_n = log2_ceil(n);
        assert!(
            result.reduced.max_degree() <= 8 * log_n,
            "reduced degree {} not O(log n) (log n = {log_n})",
            result.reduced.max_degree()
        );
    }

    #[test]
    fn spanner_is_subgraph_of_input() {
        let g = generators::connected_random(80, 0.2, 9);
        let und = g.to_undirected();
        let result = sparsify(&g, 11, 4);
        for (u, v) in result.spanner.edges() {
            assert!(
                und.neighbors(u).contains(&v),
                "spanner edge {u}->{v} not in the input graph"
            );
        }
    }

    #[test]
    fn delegation_centers_map_back_to_input_edges() {
        let g = generators::connected_random(100, 0.25, 13);
        let und = g.to_undirected();
        let result = sparsify(&g, 17, 4);
        for ((a, b), c) in &result.delegation_center {
            assert!(und.neighbors(*a).contains(c));
            assert!(und.neighbors(*b).contains(c));
            assert_eq!(result.center_of(*a, *b), Some(*c));
            assert_eq!(result.center_of(*b, *a), Some(*c));
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        let result = sparsify(&generators::star(1024), 19, 4);
        assert!(result.rounds <= 2 * log2_ceil(1024) + 3);
    }
}
