//! Benign graphs: the invariant maintained by every evolution (Definition 2.1).
//!
//! A graph is *benign* for parameters `(Δ, Λ)` if it is Δ-regular (self-loops allowed),
//! *lazy* (every node has at least Δ/2 self-loops), and every cut has at least Λ edges.
//! [`make_benign`] performs the paper's preprocessing that turns an arbitrary
//! constant-degree weakly connected graph into a benign graph, and [`BenignReport`]
//! checks the invariant, which experiment E4 tracks across evolutions.

use crate::{ExpanderParams, OverlayError};
use overlay_graph::{cuts, DiGraph, NodeId, UGraph};

/// The result of checking the benign invariant on a graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenignReport {
    /// Whether every node has exactly degree Δ.
    pub regular: bool,
    /// Whether every node has at least Δ/2 self-loops.
    pub lazy: bool,
    /// The global minimum cut (ignoring self-loops), if it was computed.
    pub min_cut: Option<usize>,
    /// Whether the minimum cut is at least Λ (only meaningful if `min_cut` is `Some`).
    pub cut_ok: bool,
}

impl BenignReport {
    /// Whether all checked properties hold.
    pub fn is_benign(&self) -> bool {
        self.regular && self.lazy && self.cut_ok
    }
}

/// Checks the benign invariant of `g` for the given parameters.
///
/// Computing the exact minimum cut is cubic in the number of nodes, so it is only done
/// when `check_cut` is `true` (experiments enable it for moderate sizes; the other two
/// properties are always checked).
pub fn check_benign(g: &UGraph, params: &ExpanderParams, check_cut: bool) -> BenignReport {
    let delta = params.delta;
    let regular = g.is_regular(delta);
    let lazy = g.nodes().all(|v| g.self_loops(v) >= delta / 2);
    let (min_cut, cut_ok) = if check_cut {
        let c = cuts::min_cut(g);
        (Some(c), c >= params.lambda)
    } else {
        (None, true)
    };
    BenignReport {
        regular,
        lazy,
        min_cut,
        cut_ok,
    }
}

/// The paper's `MakeBenign` preprocessing (Section 2.1): make the knowledge graph
/// bidirected, copy every undirected edge Λ times, then add self-loops until every node
/// has degree exactly Δ.
///
/// # Errors
///
/// * [`OverlayError::EmptyGraph`] if the graph has no nodes.
/// * [`OverlayError::DegreeTooLarge`] if some node's undirected degree `d` violates
///   `d·Λ ≤ Δ` (the NCC0 pipeline requires constant initial degree; use the hybrid
///   pipeline otherwise).
pub fn make_benign(g: &DiGraph, params: &ExpanderParams) -> Result<UGraph, OverlayError> {
    if g.node_count() == 0 {
        return Err(OverlayError::EmptyGraph);
    }
    let undirected = g.to_undirected();
    let delta = params.delta;
    let lambda = params.lambda;
    let max_degree = undirected.max_degree();
    // The copied edges must leave room for Δ/2 self-loops (laziness).
    if 2 * max_degree * lambda > delta {
        return Err(OverlayError::DegreeTooLarge {
            degree: max_degree,
            supported: params.max_initial_degree(),
        });
    }
    let mut benign = UGraph::new(g.node_count());
    for (u, v) in undirected.edges() {
        for _ in 0..lambda {
            benign.add_edge(u, v);
        }
    }
    for v in benign.nodes().collect::<Vec<_>>() {
        while benign.degree(v) < delta {
            benign.add_self_loop(v);
        }
    }
    Ok(benign)
}

/// Returns, for every node, its slot list in the benign graph produced by
/// [`make_benign`]; this is the initial local state of the distributed protocol (each
/// node can compute it from its incident edges alone, so no global knowledge is
/// assumed).
pub fn benign_slots(
    g: &DiGraph,
    params: &ExpanderParams,
) -> Result<Vec<Vec<NodeId>>, OverlayError> {
    let benign = make_benign(g, params)?;
    Ok(benign
        .nodes()
        .map(|v| benign.neighbors(v).to_vec())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;

    fn small_params() -> ExpanderParams {
        let mut p = ExpanderParams::for_n(64);
        p.lambda = 4;
        p.delta = 32;
        p
    }

    #[test]
    fn make_benign_produces_benign_graph() {
        let params = small_params();
        let g = generators::line(64);
        let benign = make_benign(&g, &params).unwrap();
        let report = check_benign(&benign, &params, true);
        assert!(report.regular, "graph must be delta-regular");
        assert!(report.lazy, "graph must be lazy");
        assert!(report.cut_ok, "cut must be at least lambda");
        assert!(report.is_benign());
        assert_eq!(report.min_cut, Some(4));
    }

    #[test]
    fn make_benign_on_cycle_has_larger_cut() {
        let params = small_params();
        let benign = make_benign(&generators::cycle(32), &params).unwrap();
        let report = check_benign(&benign, &params, true);
        assert!(report.is_benign());
        assert_eq!(report.min_cut, Some(8));
    }

    #[test]
    fn make_benign_rejects_high_degree() {
        let params = small_params();
        let g = generators::star(64); // center has degree 63
        match make_benign(&g, &params) {
            Err(OverlayError::DegreeTooLarge { degree, supported }) => {
                assert_eq!(degree, 63);
                assert_eq!(supported, 4);
            }
            other => panic!("expected DegreeTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn make_benign_rejects_empty_graph() {
        let params = small_params();
        assert_eq!(
            make_benign(&DiGraph::new(0), &params),
            Err(OverlayError::EmptyGraph)
        );
    }

    #[test]
    fn benign_slots_match_graph() {
        let params = small_params();
        let g = generators::cycle(16);
        let slots = benign_slots(&g, &params).unwrap();
        assert_eq!(slots.len(), 16);
        for (v, s) in slots.iter().enumerate() {
            assert_eq!(s.len(), params.delta);
            // Laziness: at least half the slots are self-loops.
            let loops = s.iter().filter(|&&w| w.index() == v).count();
            assert!(loops >= params.delta / 2);
        }
    }

    #[test]
    fn check_benign_detects_violations() {
        let params = small_params();
        // Regular and lazy but cut of size 1: two dense blobs joined by one edge.
        let mut g = UGraph::new(2);
        g.add_edge(0.into(), 1.into());
        for v in g.nodes().collect::<Vec<_>>() {
            while g.degree(v) < params.delta {
                g.add_self_loop(v);
            }
        }
        let report = check_benign(&g, &params, true);
        assert!(report.regular);
        assert!(report.lazy);
        assert!(!report.cut_ok);
        assert!(!report.is_benign());

        // Not regular.
        let mut h = UGraph::new(2);
        h.add_edge(0.into(), 1.into());
        let report = check_benign(&h, &params, false);
        assert!(!report.regular);
    }

    #[test]
    fn isolated_nodes_become_all_loops() {
        let params = small_params();
        let g = DiGraph::new(3);
        let benign = make_benign(&g, &params).unwrap();
        for v in benign.nodes() {
            assert_eq!(benign.self_loops(v), params.delta);
        }
    }
}
