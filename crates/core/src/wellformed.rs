//! Well-formed trees and the distributed finalization step.
//!
//! A *well-formed tree* is a rooted tree of constant degree and `O(log n)` diameter
//! containing every node. The BFS tree produced on the expander already has `O(log n)`
//! depth but its degree can be `Θ(log n)`; the paper cites the merging step of
//! [Gmyr et al., ICALP'17] (child–sibling tree plus Euler-tour rebalancing) to reduce
//! the degree to a constant.
//!
//! This module implements the degree reduction as a one-round distributed *binarization*
//! ([`BinarizeNode`]): every node arranges its BFS children as a balanced binary tree
//! among themselves and keeps an edge only to the first of them. The resulting tree has
//! degree at most 4 and depth at most `depth(BFS) · (1 + ⌈log₂(Δ+1)⌉) = O(log n · log
//! log n)`; the asymptotically tight `O(log n)` rebalancing via Euler tours is provided
//! on top of the list-ranking machinery in the `overlay-hybrid` crate.

use overlay_graph::{NodeId, UGraph};
use overlay_netsim::wire::{Wire, WireError};
use overlay_netsim::{Ctx, Envelope, Protocol};

/// A rooted tree over all nodes, produced by the construction pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WellFormedTree {
    root: NodeId,
    parent: Vec<NodeId>,
    children: Vec<Vec<NodeId>>,
}

impl WellFormedTree {
    /// Assembles a tree from per-node parent pointers (the root points to itself).
    ///
    /// # Panics
    ///
    /// Panics if there is not exactly one root.
    pub fn from_parents(parent: Vec<NodeId>) -> Self {
        let all_alive = vec![true; parent.len()];
        Self::from_parents_over(parent, &all_alive)
            .expect("a well-formed tree has exactly one root")
    }

    /// Like [`WellFormedTree::from_parents`], but fallible, and only `alive` nodes may claim
    /// the root slot: a crashed node frozen with its initial self-parent is tolerated
    /// as a detached dangle instead of being miscounted as a second root. Returns
    /// `None` unless exactly one alive root exists.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len()` differs from `parent.len()`.
    pub fn from_parents_over(mut parent: Vec<NodeId>, alive: &[bool]) -> Option<Self> {
        let n = parent.len();
        assert_eq!(alive.len(), n, "one liveness flag per node");
        // Detach dead nodes entirely (self-parent, no edges) so height() and
        // max_degree() measure the alive tree, not dangling dead subtrees.
        for (v, p) in parent.iter_mut().enumerate() {
            if !alive[v] {
                *p = NodeId::from(v);
            }
        }
        let roots: Vec<usize> = (0..n)
            .filter(|&v| parent[v].index() == v && alive[v])
            .collect();
        if roots.len() != 1 {
            return None;
        }
        let root = NodeId::from(roots[0]);
        let mut children = vec![Vec::new(); n];
        for (v, &p) in parent.iter().enumerate() {
            if p.index() != v {
                children[p.index()].push(NodeId::from(v));
            }
        }
        Some(WellFormedTree {
            root,
            parent,
            children,
        })
    }

    /// The tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// The parent of `v` (the root's parent is itself).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v.index()]
    }

    /// The children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// The depth of every node (root = 0); `None` entries indicate nodes not connected
    /// to the root, which [`WellFormedTree::is_valid`] rejects.
    pub fn depths(&self) -> Vec<Option<usize>> {
        let n = self.parent.len();
        let mut depth = vec![None; n];
        depth[self.root.index()] = Some(0);
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            let d = depth[v.index()].expect("stacked nodes have depths");
            for &c in &self.children[v.index()] {
                if depth[c.index()].is_none() {
                    depth[c.index()] = Some(d + 1);
                    stack.push(c);
                }
            }
        }
        depth
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depths().into_iter().flatten().max().unwrap_or(0)
    }

    /// The maximum degree (children plus parent edge).
    pub fn max_degree(&self) -> usize {
        (0..self.parent.len())
            .map(|v| {
                let parent_edge = usize::from(self.parent[v].index() != v);
                self.children[v].len() + parent_edge
            })
            .max()
            .unwrap_or(0)
    }

    /// Checks that the structure is a tree covering all nodes: every node reaches the
    /// root and the edge count is `n - 1`.
    pub fn is_valid(&self) -> bool {
        let n = self.parent.len();
        if n == 0 {
            return false;
        }
        let reachable = self.depths().iter().filter(|d| d.is_some()).count();
        let edges: usize = self.children.iter().map(Vec::len).sum();
        reachable == n && edges == n - 1
    }

    /// Checks validity restricted to the `alive` nodes: the root is alive, and every
    /// alive node reaches the root through a parent chain of alive nodes only. Used by
    /// fault-injected pipelines, where crashed nodes are allowed to dangle but the
    /// survivors must still form one rooted tree.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len()` differs from the node count.
    pub fn is_valid_over(&self, alive: &[bool]) -> bool {
        let n = self.parent.len();
        assert_eq!(alive.len(), n, "one liveness flag per node");
        if !alive[self.root.index()] {
            return false;
        }
        for v in 0..n {
            if !alive[v] {
                continue;
            }
            // Walk to the root; bounded by n steps so cycles terminate.
            let mut cur = NodeId::from(v);
            let mut steps = 0;
            while cur != self.root {
                if !alive[cur.index()] || steps > n {
                    return false;
                }
                cur = self.parent[cur.index()];
                steps += 1;
            }
        }
        true
    }

    /// The tree as an undirected graph (useful for diameter measurements).
    pub fn to_ugraph(&self) -> UGraph {
        let mut g = UGraph::new(self.parent.len());
        for (v, &p) in self.parent.iter().enumerate() {
            if p.index() != v {
                g.add_edge(NodeId::from(v), p);
            }
        }
        g
    }
}

/// Messages of the binarization protocol: the single re-linking instruction a node
/// receives from its BFS parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelinkMsg {
    /// The node's parent in the binarized tree.
    pub parent: NodeId,
    /// Its first sibling-child, if any.
    pub left: Option<NodeId>,
    /// Its second sibling-child, if any.
    pub right: Option<NodeId>,
}

impl Wire for RelinkMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.parent.encode(out);
        self.left.encode(out);
        self.right.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(RelinkMsg {
            parent: NodeId::decode(buf)?,
            left: Option::decode(buf)?,
            right: Option::decode(buf)?,
        })
    }
}

/// Per-node state of the one-round binarization step.
#[derive(Debug)]
pub struct BinarizeNode {
    id: NodeId,
    bfs_parent: NodeId,
    bfs_children: Vec<NodeId>,
    new_parent: NodeId,
    new_children: Vec<NodeId>,
    done: bool,
}

impl BinarizeNode {
    /// Creates the state machine for node `id` given its BFS parent and children.
    pub fn new(id: NodeId, bfs_parent: NodeId, mut bfs_children: Vec<NodeId>) -> Self {
        bfs_children.sort_unstable();
        BinarizeNode {
            id,
            bfs_parent,
            bfs_children,
            new_parent: id,
            new_children: Vec::new(),
            done: false,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's parent in the binarized tree (itself for the root).
    pub fn new_parent(&self) -> NodeId {
        self.new_parent
    }

    /// The node's children in the binarized tree.
    pub fn new_children(&self) -> &[NodeId] {
        &self.new_children
    }

    /// Number of message rounds the protocol needs after the start round.
    pub fn total_rounds() -> usize {
        1
    }
}

impl Protocol for BinarizeNode {
    type Message = RelinkMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, RelinkMsg>) {
        // The node keeps only its first child; the remaining children are arranged as a
        // balanced binary heap among themselves: child j's new parent is child (j-1)/2.
        let k = self.bfs_children.len();
        for (j, &c) in self.bfs_children.iter().enumerate() {
            let parent = if j == 0 {
                self.id
            } else {
                self.bfs_children[(j - 1) / 2]
            };
            let left = self.bfs_children.get(2 * j + 1).copied();
            let right = self.bfs_children.get(2 * j + 2).copied();
            ctx.send_global(
                c,
                RelinkMsg {
                    parent,
                    left,
                    right,
                },
            );
        }
        if k > 0 {
            self.new_children.push(self.bfs_children[0]);
        }
        if self.bfs_parent == self.id {
            self.new_parent = self.id;
        }
    }

    fn on_round(&mut self, _ctx: &mut Ctx<'_, RelinkMsg>, inbox: &[Envelope<RelinkMsg>]) {
        for env in inbox {
            let msg = env.payload;
            self.new_parent = msg.parent;
            for extra in [msg.left, msg.right].into_iter().flatten() {
                self.new_children.push(extra);
            }
        }
        self.new_children.sort_unstable();
        self.new_children.dedup();
        self.done = true;
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::analysis;
    use overlay_netsim::{SimConfig, Simulator};

    /// Builds a star BFS tree (root 0 with n-1 children) and binarizes it.
    fn binarize_star(n: usize) -> WellFormedTree {
        let nodes: Vec<BinarizeNode> = (0..n)
            .map(|v| {
                if v == 0 {
                    BinarizeNode::new(
                        NodeId::from(0usize),
                        NodeId::from(0usize),
                        (1..n).map(NodeId::from).collect(),
                    )
                } else {
                    BinarizeNode::new(NodeId::from(v), NodeId::from(0usize), Vec::new())
                }
            })
            .collect();
        let mut sim = Simulator::new(nodes, SimConfig::default());
        let outcome = sim.run(BinarizeNode::total_rounds() + 1);
        assert!(outcome.all_done);
        let parents: Vec<NodeId> = sim.nodes().iter().map(|b| b.new_parent()).collect();
        WellFormedTree::from_parents(parents)
    }

    #[test]
    fn from_parents_builds_children_lists() {
        let parents: Vec<NodeId> = vec![0.into(), 0.into(), 0.into(), 1.into()];
        let t = WellFormedTree::from_parents(parents);
        assert_eq!(t.root(), NodeId::from(0usize));
        assert_eq!(
            t.children(0.into()),
            &[NodeId::from(1usize), NodeId::from(2usize)]
        );
        assert_eq!(t.children(1.into()), &[NodeId::from(3usize)]);
        assert_eq!(t.height(), 2);
        // Node 0 has two children and no parent edge; node 1 has one child plus its
        // parent edge.
        assert_eq!(t.max_degree(), 2);
        assert!(t.is_valid());
    }

    #[test]
    #[should_panic(expected = "exactly one root")]
    fn from_parents_rejects_forests() {
        let parents: Vec<NodeId> = vec![0.into(), 1.into(), 0.into()];
        let _ = WellFormedTree::from_parents(parents);
    }

    #[test]
    fn binarized_star_has_constant_degree_and_log_depth() {
        let n = 129;
        let t = binarize_star(n);
        assert!(t.is_valid());
        assert_eq!(t.node_count(), n);
        assert!(
            t.max_degree() <= 4,
            "degree {} exceeds the constant bound",
            t.max_degree()
        );
        // 1 (root to first child) + ceil(log2 of 128 children) = 8.
        assert!(t.height() <= 8, "height {} too large", t.height());
        // The tree is connected and has n-1 edges.
        let g = t.to_ugraph();
        assert!(analysis::is_connected(&g));
        assert_eq!(g.edge_count(), n - 1);
    }

    #[test]
    fn binarizing_a_path_keeps_it_intact() {
        // A path BFS tree (each node has one child) must be unchanged.
        let n = 16;
        let nodes: Vec<BinarizeNode> = (0..n)
            .map(|v| {
                let parent = if v == 0 { 0 } else { v - 1 };
                let children = if v + 1 < n {
                    vec![NodeId::from(v + 1)]
                } else {
                    Vec::new()
                };
                BinarizeNode::new(NodeId::from(v), NodeId::from(parent), children)
            })
            .collect();
        let mut sim = Simulator::new(nodes, SimConfig::default());
        sim.run(4);
        let parents: Vec<NodeId> = sim.nodes().iter().map(|b| b.new_parent()).collect();
        let t = WellFormedTree::from_parents(parents);
        assert!(t.is_valid());
        assert_eq!(t.height(), n - 1);
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn depths_mark_unreachable_nodes() {
        // Manually corrupt a tree: node 2's parent is 1 but 1's child list is empty.
        let t = WellFormedTree {
            root: NodeId::from(0usize),
            parent: vec![0.into(), 0.into(), 1.into()],
            children: vec![vec![1.into()], vec![], vec![]],
        };
        assert!(!t.is_valid());
        assert_eq!(t.depths()[2], None);
    }
}
