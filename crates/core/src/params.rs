//! Tunable parameters of the overlay-construction algorithm.

use overlay_netsim::caps::log2_ceil;

/// Parameters of `CreateExpander` and the surrounding pipeline (Section 2.1 of the
/// paper). All parameters are known to every node.
///
/// * `delta` (Δ) — the degree of every benign evolution graph, `Θ(log n)`, a multiple
///   of 8 so that Δ/8 tokens and 3Δ/8 acceptances are integral.
/// * `lambda` (Λ) — the minimum-cut size maintained by every evolution, `Θ(log n)`.
/// * `walk_len` (ℓ) — the (constant) length of the random walks.
/// * `evolutions` (L) — the number of graph evolutions, `Θ(log n)`.
/// * `ncc0_cap` — the per-round per-node message budget enforced by the simulator
///   (`Θ(log n)`; the algorithm needs roughly `Δ/2` messages per round, so the default
///   is `2Δ`).
/// * `bfs_rounds` — the round budget of the BFS phase (`Θ(log n)`).
/// * `seed` — seed for all randomness.
///
/// # Example
///
/// ```
/// use overlay_core::ExpanderParams;
/// let p = ExpanderParams::for_n(1024);
/// assert_eq!(p.delta % 8, 0);
/// assert!(p.tokens_per_node() >= 1);
/// p.validate().unwrap();
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExpanderParams {
    /// Target degree Δ of every benign evolution graph (multiple of 8).
    pub delta: usize,
    /// Minimum-cut size Λ maintained by every evolution.
    pub lambda: usize,
    /// Random-walk length ℓ.
    pub walk_len: usize,
    /// Number of evolutions L.
    pub evolutions: usize,
    /// Per-node, per-round message cap enforced in the NCC0 simulation.
    pub ncc0_cap: usize,
    /// Round budget for the BFS phase that follows the evolutions.
    pub bfs_rounds: usize,
    /// Seed for all randomness.
    pub seed: u64,
}

impl ExpanderParams {
    /// Sensible defaults for a graph with `n` nodes: `Δ = 16·⌈log₂ n⌉`, `Λ = 2·⌈log₂ n⌉`,
    /// `ℓ = 16`, `L = ⌈log₂ n⌉ + 4`, cap `2Δ`, BFS budget `4·⌈log₂ n⌉ + 8`.
    ///
    /// The theory only needs `Δ, Λ = Ω(log n)` "with big enough constants"; the defaults
    /// here are the smallest constants for which the w.h.p. events (no cut losing all
    /// its edges, no node exceeding its capacity) hold comfortably at practical sizes.
    pub fn for_n(n: usize) -> Self {
        let log_n = log2_ceil(n).max(2);
        let delta = 16 * log_n;
        ExpanderParams {
            delta,
            lambda: 2 * log_n,
            walk_len: 16,
            evolutions: log_n + 4,
            ncc0_cap: 2 * delta,
            bfs_rounds: 4 * log_n + 8,
            seed: 0x0F0F_1234,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different number of evolutions.
    pub fn with_evolutions(mut self, evolutions: usize) -> Self {
        self.evolutions = evolutions;
        self
    }

    /// Returns a copy with a different walk length.
    pub fn with_walk_len(mut self, walk_len: usize) -> Self {
        self.walk_len = walk_len;
        self
    }

    /// Number of random-walk tokens each node starts per evolution (Δ/8).
    pub fn tokens_per_node(&self) -> usize {
        self.delta / 8
    }

    /// Maximum number of tokens a node accepts per evolution (3Δ/8).
    pub fn max_accepts(&self) -> usize {
        3 * self.delta / 8
    }

    /// Checks internal consistency of the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.delta == 0 || !self.delta.is_multiple_of(8) {
            return Err(format!(
                "delta must be a positive multiple of 8, got {}",
                self.delta
            ));
        }
        if self.lambda == 0 {
            return Err("lambda must be positive".to_string());
        }
        if self.walk_len == 0 {
            return Err("walk_len must be positive".to_string());
        }
        if self.evolutions == 0 {
            return Err("evolutions must be positive".to_string());
        }
        if self.ncc0_cap < self.delta / 2 {
            return Err(format!(
                "ncc0_cap {} is too small for delta {} (needs at least delta/2)",
                self.ncc0_cap, self.delta
            ));
        }
        Ok(())
    }

    /// The largest initial (undirected) degree `d` this parameter set can preprocess:
    /// `MakeBenign` copies every initial edge Λ times and needs Δ/2 self-loops left over
    /// for laziness, so we need `d·Λ ≤ Δ/2`.
    pub fn max_initial_degree(&self) -> usize {
        self.delta / (2 * self.lambda)
    }
}

/// A multiplier applied to every phase's round budget in
/// [`crate::OverlayBuilder::build_under_faults`].
///
/// The paper's schedules are exact for a clean network, so the clean budgets leave
/// only a round or two of slack. Under injected faults — delivery jitter holding
/// messages back several rounds, or joiners activating deep into construction — a run
/// can need more wall-rounds than the clean schedule even though the protocol is
/// perfectly healthy, and judging it against the clean budget misreports it as
/// stalled. A `RoundBudget` lets a scenario *declare* that extra allowance up front.
///
/// The multiplier is stored in percent (e.g. `150` = 1.5× the clean budget) so the
/// type stays `Copy + Eq + Hash` and renders exactly in JSON reports. Budgets are
/// applied per phase with ceiling division and never shrink a budget below the clean
/// one, so [`RoundBudget::STANDARD`] (100%) reproduces the historical behavior
/// bit-for-bit.
///
/// A budget may also declare *additive slack* ([`RoundBudget::with_slack`]): a flat
/// number of extra rounds added to every phase after the percent scaling. Slack is
/// the right shape for reliable-transport retry round-trips, which cost a
/// *constant* number of rounds per phase (each retransmission-plus-ack chain is a
/// fixed-length exchange) — a percent multiplier can never grant a 1-round phase
/// like binarization the handful of extra rounds a retry chain needs without
/// absurdly inflating the long phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RoundBudget {
    percent: u32,
    slack: u32,
}

impl RoundBudget {
    /// The clean-network budget: exactly the paper's schedule (100%).
    pub const STANDARD: RoundBudget = RoundBudget {
        percent: 100,
        slack: 0,
    };

    /// A budget of `percent`% of the clean schedule.
    ///
    /// # Panics
    ///
    /// Panics if `percent < 100`: phases cannot run on less than the clean schedule
    /// (the protocols are round-driven and would be cut off mid-phase).
    pub fn percent(percent: u32) -> Self {
        assert!(
            percent >= 100,
            "round budget must be at least the clean schedule (100%), got {percent}%"
        );
        RoundBudget { percent, slack: 0 }
    }

    /// Returns the budget with `slack` flat extra rounds added to every phase
    /// (after the percent scaling). This is how reliable-transport scenarios
    /// declare room for retry round-trips: a retransmission-plus-ack chain costs a
    /// constant number of rounds regardless of the phase's length.
    pub fn with_slack(mut self, slack: u32) -> Self {
        self.slack = slack;
        self
    }

    /// The multiplier in percent (`100` = clean budget).
    pub fn as_percent(&self) -> u32 {
        self.percent
    }

    /// The flat extra rounds granted to every phase (`0` = pure multiplier).
    pub fn slack(&self) -> u32 {
        self.slack
    }

    /// Scales a clean phase budget, rounding up — never below `base` — then adds
    /// the flat slack.
    pub fn apply(&self, base: usize) -> usize {
        let scaled = (base * self.percent as usize).div_ceil(100);
        scaled.max(base) + self.slack as usize
    }
}

impl Default for RoundBudget {
    fn default() -> Self {
        RoundBudget::STANDARD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        for n in [2usize, 10, 100, 1024, 1 << 16] {
            let p = ExpanderParams::for_n(n);
            p.validate().expect("default parameters must validate");
            assert!(p.tokens_per_node() >= 1);
            assert_eq!(p.max_accepts(), 3 * p.tokens_per_node());
            assert!(p.max_initial_degree() >= 4);
        }
    }

    #[test]
    fn builder_style_modifiers() {
        let p = ExpanderParams::for_n(64)
            .with_seed(9)
            .with_evolutions(3)
            .with_walk_len(5);
        assert_eq!(p.seed, 9);
        assert_eq!(p.evolutions, 3);
        assert_eq!(p.walk_len, 5);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut p = ExpanderParams::for_n(64);
        p.delta = 12;
        assert!(p.validate().is_err());
        let mut p = ExpanderParams::for_n(64);
        p.lambda = 0;
        assert!(p.validate().is_err());
        let mut p = ExpanderParams::for_n(64);
        p.walk_len = 0;
        assert!(p.validate().is_err());
        let mut p = ExpanderParams::for_n(64);
        p.evolutions = 0;
        assert!(p.validate().is_err());
        let mut p = ExpanderParams::for_n(64);
        p.ncc0_cap = 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn round_budget_scales_with_ceiling_and_never_shrinks() {
        assert_eq!(RoundBudget::STANDARD.apply(37), 37);
        assert_eq!(RoundBudget::default(), RoundBudget::STANDARD);
        assert_eq!(RoundBudget::percent(150).apply(10), 15);
        assert_eq!(RoundBudget::percent(150).apply(11), 17); // ceil(16.5)
        assert_eq!(RoundBudget::percent(200).apply(0), 0);
        assert_eq!(RoundBudget::percent(125).as_percent(), 125);
    }

    #[test]
    fn round_budget_slack_is_flat_per_phase() {
        let b = RoundBudget::STANDARD.with_slack(10);
        assert_eq!(b.slack(), 10);
        assert_eq!(b.as_percent(), 100);
        // Slack lands on top of the (never-shrinking) scaled budget: a 1-round
        // phase gets the same absolute retry headroom as a 200-round one.
        assert_eq!(b.apply(1), 11);
        assert_eq!(b.apply(200), 210);
        assert_eq!(RoundBudget::percent(150).with_slack(4).apply(10), 19);
        assert_eq!(RoundBudget::STANDARD.with_slack(0), RoundBudget::STANDARD);
    }

    #[test]
    #[should_panic(expected = "at least the clean schedule")]
    fn round_budget_rejects_sub_clean_multipliers() {
        let _ = RoundBudget::percent(99);
    }

    #[test]
    fn delta_scales_with_log_n() {
        let p1 = ExpanderParams::for_n(1 << 8);
        let p2 = ExpanderParams::for_n(1 << 16);
        assert_eq!(p1.delta, 16 * 8);
        assert_eq!(p2.delta, 16 * 16);
    }
}
