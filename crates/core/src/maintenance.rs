//! Continuous overlay maintenance: epochs, re-invitation, repair evolutions.
//!
//! The paper constructs the overlay once and stops; this module keeps it
//! *alive*. A [`MaintenanceRunner`] takes over after (or instead of) one-shot
//! construction and runs an unbounded **epoch loop** against a continuous
//! [`ChurnSchedule`]: nodes join, leave, and crash forever, and at every epoch
//! boundary the runner
//!
//! 1. detects **stragglers** (arrived nodes the overlay has not admitted) and
//!    **crash holes** (members whose path to the root died) from the live
//!    topology,
//! 2. issues **protocol-level re-invitations** that pull stragglers into the
//!    current evolution — the primitive the join-churn fault reports proved
//!    missing: transport redelivery cannot rescue a late joiner (coverage
//!    15.7%→16.2% across the join-churn twins), because the construction that
//!    would have invited it is already over; it needs a *fresh* invitation
//!    into the overlay as it exists now, and
//! 3. triggers a **periodic repair evolution** reusing the paper's own
//!    evolution machinery ([`EvolutionEngine`]) to re-mix the communication
//!    graph, then rebuilds and re-binarizes the BFS tree, re-attaching any
//!    member the mix left behind.
//!
//! The service-level metric is not terminal success but **sustained coverage
//! and tree well-formedness over time**: every epoch boundary yields an
//! [`EpochSample`], and a finished run distills them into a [`ServeOutcome`]
//! (coverage floor/mean, steady-state "sustained" coverage, well-formedness
//! violations, and rounds-to-repair after correlated crash bursts).
//!
//! # Determinism
//!
//! The runner is a pure function of `(initial graph, params, config,
//! schedule)`: churn counts come from the schedule's rate accumulator, victim
//! and contact choices from seeded RNGs, invitation loss from the maintenance
//! RNG, and each repair evolution from a per-epoch re-seeded
//! [`EvolutionEngine`]. Two runs of the same inputs produce identical samples.

use crate::{EvolutionEngine, ExpanderParams, WellFormedTree};
use overlay_graph::{NodeId, UGraph};
use overlay_netsim::{ChurnSchedule, SharedTraceSink, TraceEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the maintenance epoch loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaintenanceConfig {
    /// Rounds per epoch (churn accumulates for this long between boundaries).
    pub epoch_rounds: usize,
    /// Number of epochs to serve (`epochs * epoch_rounds` total rounds).
    pub epochs: usize,
    /// Whether epoch boundaries re-invite stragglers into the overlay.
    pub reinvite: bool,
    /// Whether epoch boundaries run a repair evolution and rebuild the tree.
    pub repair: bool,
    /// Probability that one invitation attempt is lost in transit.
    pub invite_loss: f64,
    /// Extra invitation attempts per straggler per epoch (the reliable-transport
    /// analogue: a `-reliable` serve twin retries, a bare cell does not).
    pub invite_retries: usize,
    /// Seed of the maintenance RNG (contact choice, invitation loss, repair
    /// evolutions).
    pub seed: u64,
}

impl MaintenanceConfig {
    /// A sensible default loop: 25-round epochs, re-invitation and repair on,
    /// lossless invitations.
    pub fn new(epochs: usize) -> Self {
        MaintenanceConfig {
            epoch_rounds: 25,
            epochs,
            reinvite: true,
            repair: true,
            invite_loss: 0.0,
            invite_retries: 0,
            seed: 0x0A11_CE55,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_rounds` is zero or `invite_loss` is outside `0.0..=1.0`.
    pub fn validate(&self) {
        assert!(self.epoch_rounds > 0, "epoch_rounds must be positive");
        assert!(
            (0.0..=1.0).contains(&self.invite_loss) && self.invite_loss.is_finite(),
            "invite_loss must lie in 0.0..=1.0, got {}",
            self.invite_loss
        );
    }
}

/// The service-level facts of one epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochSample {
    /// The epoch index (0-based).
    pub epoch: usize,
    /// The service round the boundary fell on (cumulative).
    pub round: usize,
    /// Members alive at the boundary (admitted + stragglers).
    pub alive: usize,
    /// Stragglers still awaiting admission after the boundary.
    pub pending: usize,
    /// Alive members covered by the current well-formed tree.
    pub covered: usize,
    /// `covered / alive` (1.0 for an empty service).
    pub coverage: f64,
    /// Whether the tree passed well-formedness validation at the boundary.
    pub tree_valid: bool,
    /// Re-invitations issued at this boundary.
    pub reinvites: usize,
    /// Stragglers admitted at this boundary.
    pub admitted: usize,
    /// Members re-attached by the repair step (left behind by the mix or by
    /// crash holes).
    pub healed: usize,
    /// Fresh arrivals during the epoch.
    pub joins: usize,
    /// Graceful departures during the epoch.
    pub leaves: usize,
    /// Crash-stop failures during the epoch.
    pub crashes: usize,
}

/// The distilled outcome of a whole maintenance run.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeOutcome {
    /// One sample per epoch boundary, in order.
    pub samples: Vec<EpochSample>,
    /// Mean coverage across all boundaries.
    pub coverage_mean: f64,
    /// Minimum coverage across all boundaries.
    pub coverage_floor: f64,
    /// Steady-state coverage: the mean over the final half of the boundaries,
    /// after the service has absorbed its start-up transient.
    pub sustained_coverage: f64,
    /// Boundaries whose tree failed well-formedness validation.
    pub wf_violations: usize,
    /// Total re-invitations issued.
    pub reinvites_sent: usize,
    /// Re-invitations that survived loss and admitted their straggler.
    pub reinvites_delivered: usize,
    /// Repair evolutions executed.
    pub repairs: usize,
    /// Members re-attached by repair across the run.
    pub healed: usize,
    /// Worst rounds-to-repair after a crash burst (0 when no burst fired);
    /// `horizon - burst_round` when a burst was never repaired.
    pub rounds_to_repair_max: usize,
    /// Total arrivals over the run.
    pub joined: usize,
    /// Total graceful departures over the run.
    pub left: usize,
    /// Total crash-stop failures over the run.
    pub crashed: usize,
    /// Members alive when the horizon ended.
    pub final_alive: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemberStatus {
    /// In the overlay graph.
    Admitted,
    /// Arrived, alive, awaiting an invitation (a straggler).
    Pending,
    /// Departed gracefully.
    Left,
    /// Crash-stopped.
    Crashed,
}

#[derive(Clone, Debug)]
struct Member {
    status: MemberStatus,
    /// The alive member this straggler knows (its admission contact).
    contact: Option<usize>,
}

/// The continuous-maintenance engine (see the module docs).
#[derive(Debug)]
pub struct MaintenanceRunner {
    params: ExpanderParams,
    config: MaintenanceConfig,
    schedule: ChurnSchedule,
    members: Vec<Member>,
    /// Member ids currently in the overlay graph, ascending; `graph` and
    /// `tree` index into this list ("core space").
    core: Vec<usize>,
    graph: UGraph,
    tree: Option<WellFormedTree>,
    rng: StdRng,
    trace: Option<SharedTraceSink>,
    samples: Vec<EpochSample>,
    // Rolling totals.
    reinvites_sent: usize,
    reinvites_delivered: usize,
    repairs: usize,
    healed_total: usize,
    joined: usize,
    left: usize,
    crashed: usize,
    /// Earliest crash burst not yet repaired, as `(service round, worst gap)`.
    open_burst: Option<usize>,
    rounds_to_repair_max: usize,
    epoch: usize,
}

impl MaintenanceRunner {
    /// Creates a runner serving an overlay whose initial communication graph is
    /// `graph` (e.g. the expander a construction run produced, or a benign
    /// graph built directly). Every initial node is an admitted member.
    ///
    /// # Panics
    ///
    /// Panics if `config` or `schedule` fail validation.
    pub fn new(
        graph: UGraph,
        params: ExpanderParams,
        config: MaintenanceConfig,
        schedule: ChurnSchedule,
    ) -> Self {
        config.validate();
        schedule.validate();
        let n = graph.node_count();
        let members = (0..n)
            .map(|_| Member {
                status: MemberStatus::Admitted,
                contact: None,
            })
            .collect();
        let mut runner = MaintenanceRunner {
            params,
            config,
            schedule,
            members,
            core: (0..n).collect(),
            graph,
            tree: None,
            rng: StdRng::seed_from_u64(config.seed),
            trace: None,
            samples: Vec::new(),
            reinvites_sent: 0,
            reinvites_delivered: 0,
            repairs: 0,
            healed_total: 0,
            joined: 0,
            left: 0,
            crashed: 0,
            open_burst: None,
            rounds_to_repair_max: 0,
            epoch: 0,
        };
        // Establish the initial tree so coverage starts from the constructed
        // overlay, not from nothing.
        let healed = runner.rebuild_tree();
        debug_assert_eq!(healed, 0, "a connected initial graph needs no healing");
        runner
    }

    /// Installs a trace sink receiving [`TraceEvent::Epoch`],
    /// [`TraceEvent::ReInvite`] and [`TraceEvent::Repair`] events.
    pub fn set_trace_sink(&mut self, sink: SharedTraceSink) {
        self.trace = Some(sink);
    }

    /// Epoch samples recorded so far.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// The current well-formed tree in core space, if one exists.
    pub fn tree(&self) -> Option<&WellFormedTree> {
        self.tree.as_ref()
    }

    /// Member ids currently admitted to the overlay, ascending. The core graph
    /// ([`MaintenanceRunner::core_graph`]) indexes into this list ("core
    /// space": core-space node `i` is member `core()[i]`).
    pub fn core(&self) -> &[usize] {
        &self.core
    }

    /// The current communication graph over the admitted core, in core space.
    /// Traffic layered on a serving overlay routes over exactly these edges.
    pub fn core_graph(&self) -> &UGraph {
        &self.graph
    }

    /// Core-space alive mask: `true` for each core slot whose member is still
    /// admitted (all of them between epochs — crashes are folded into the core
    /// at the next epoch step, so this is the honest per-slot view mid-epoch).
    pub fn core_alive(&self) -> Vec<bool> {
        self.core
            .iter()
            .map(|&m| self.members[m].status == MemberStatus::Admitted)
            .collect()
    }

    fn emit(&self, event: TraceEvent) {
        if let Some(sink) = &self.trace {
            sink.borrow_mut().record(event);
        }
    }

    fn alive_ids(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&m| {
                matches!(
                    self.members[m].status,
                    MemberStatus::Admitted | MemberStatus::Pending
                )
            })
            .collect()
    }

    fn pending_ids(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&m| self.members[m].status == MemberStatus::Pending)
            .collect()
    }

    fn admitted_alive(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&m| self.members[m].status == MemberStatus::Admitted)
            .collect()
    }

    /// Advances the churn process through one epoch's worth of rounds.
    fn advance_churn(&mut self) -> (usize, usize, usize) {
        let (mut joins, mut leaves, mut crashes) = (0, 0, 0);
        let start = self.epoch * self.config.epoch_rounds;
        for round in start..start + self.config.epoch_rounds {
            let alive = self.alive_ids();
            let churn = self.schedule.sample(round, alive.len());
            if self.schedule.burst_at(round) && self.open_burst.is_none() {
                self.open_burst = Some(round);
            }
            // Victim ranks are sequential (see `ChurnSchedule`): apply each
            // against the alive list with earlier victims removed.
            let mut remaining = alive;
            for &rank in &churn.leaves {
                let member = remaining.remove(rank);
                self.members[member].status = MemberStatus::Left;
                leaves += 1;
            }
            for &rank in &churn.crashes {
                let member = remaining.remove(rank);
                self.members[member].status = MemberStatus::Crashed;
                crashes += 1;
            }
            // Fresh arrivals become stragglers knowing one current member.
            for _ in 0..churn.joins {
                let contact = self.pick_contact();
                self.members.push(Member {
                    status: MemberStatus::Pending,
                    contact,
                });
                joins += 1;
            }
        }
        self.joined += joins;
        self.left += leaves;
        self.crashed += crashes;
        (joins, leaves, crashes)
    }

    fn pick_contact(&mut self) -> Option<usize> {
        let admitted = self.admitted_alive();
        if admitted.is_empty() {
            None
        } else {
            Some(admitted[self.rng.gen_range(0..admitted.len())])
        }
    }

    /// Re-invites every straggler: the contact sends an invitation that admits
    /// the straggler into the current overlay unless transport loss eats every
    /// attempt. Returns `(invitations sent, stragglers admitted)`.
    fn reinvite_stragglers(&mut self) -> (usize, usize) {
        let stragglers = self.pending_ids();
        let (mut sent, mut admitted) = (0, 0);
        for member in stragglers {
            // A dead contact can never answer; the straggler re-discovers a
            // live one first (one boundary of delay, like a DNS re-lookup).
            let contact = match self.members[member].contact {
                Some(c) if self.members[c].status == MemberStatus::Admitted => Some(c),
                _ => {
                    let fresh = self.pick_contact();
                    self.members[member].contact = fresh;
                    fresh
                }
            };
            let Some(contact) = contact else { continue };
            sent += 1;
            let attempts = 1 + self.config.invite_retries;
            let delivered = (0..attempts).any(|_| {
                // One draw per attempt keeps the stream aligned with the
                // transport model: each retry is its own coin.
                self.rng.gen::<f64>() >= self.config.invite_loss
            });
            if delivered {
                self.members[member].status = MemberStatus::Admitted;
                admitted += 1;
            }
            self.emit(TraceEvent::ReInvite {
                epoch: self.epoch,
                joiner: NodeId::from(member),
                contact: NodeId::from(contact),
                delivered,
            });
        }
        self.reinvites_sent += sent;
        self.reinvites_delivered += admitted;
        (sent, admitted)
    }

    /// Rebuilds the core graph over the currently admitted members: surviving
    /// edges are kept, freshly admitted members attach to their contact, dead
    /// slots disappear, and every node is padded with self-loops to degree Δ
    /// so evolution walks stay defined.
    fn rebuild_core_graph(&mut self) {
        let next_core = self.admitted_alive();
        let mut slot = vec![usize::MAX; self.members.len()];
        for (i, &m) in next_core.iter().enumerate() {
            slot[m] = i;
        }
        let mut next = UGraph::new(next_core.len());
        // Surviving edges of the old core graph, translated to the new slots.
        for (u, v) in self.graph.edges() {
            let (mu, mv) = (self.core[u.index()], self.core[v.index()]);
            if slot[mu] != usize::MAX && slot[mv] != usize::MAX && mu != mv {
                next.add_edge(NodeId::from(slot[mu]), NodeId::from(slot[mv]));
            }
        }
        // Freshly admitted members: one real edge to the contact.
        for &m in &next_core {
            if let Some(c) = self.members[m].contact.take() {
                if slot[c] != usize::MAX {
                    next.add_edge(NodeId::from(slot[m]), NodeId::from(slot[c]));
                }
            }
        }
        for i in 0..next_core.len() {
            let v = NodeId::from(i);
            while next.degree(v) < self.params.delta {
                next.add_self_loop(v);
            }
        }
        self.core = next_core;
        self.graph = next;
    }

    /// One repair evolution: the paper's evolution step re-mixes the core
    /// graph (re-absorbing admitted stragglers and closing crash holes).
    fn repair_evolution(&mut self) {
        if self.core.is_empty() {
            return;
        }
        let mix = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.epoch as u64 + 1);
        let params = self.params.with_seed(self.config.seed ^ mix);
        let mut engine = EvolutionEngine::from_benign(self.graph.clone(), params);
        engine.evolve_quiet();
        self.graph = engine.graph().clone();
        self.repairs += 1;
    }

    /// Rebuilds the well-formed tree from the current core graph: BFS from the
    /// smallest member id, re-attach anything the mix stranded, binarize.
    /// Returns the number of re-attached (healed) members.
    fn rebuild_tree(&mut self) -> usize {
        let n = self.core.len();
        if n == 0 {
            self.tree = None;
            return 0;
        }
        let simple = self.graph.simplify();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        parent[0] = Some(0);
        let mut queue = std::collections::VecDeque::from([0usize]);
        let mut order = vec![0usize];
        while let Some(v) = queue.pop_front() {
            for &w in simple.neighbors(NodeId::from(v)) {
                if parent[w.index()].is_none() {
                    parent[w.index()] = Some(v);
                    queue.push_back(w.index());
                    order.push(w.index());
                }
            }
        }
        // Crash holes / stranded mixes: attach each unreached node to a random
        // reached one (a repair introduction), deterministically seeded.
        let mut healed = 0;
        for (v, p) in parent.iter_mut().enumerate() {
            if p.is_none() {
                let anchor = order[self.rng.gen_range(0..order.len())];
                *p = Some(anchor);
                order.push(v);
                healed += 1;
            }
        }
        let bfs: Vec<usize> = parent
            .into_iter()
            .map(|p| p.expect("all attached"))
            .collect();
        let binarized = binarize_parents(&bfs);
        let parents: Vec<NodeId> = binarized.into_iter().map(NodeId::from).collect();
        self.tree = WellFormedTree::from_parents_over(parents, &vec![true; n]);
        self.healed_total += healed;
        healed
    }

    /// Alive members covered by the current tree: admitted members whose
    /// parent chain reaches the root (with no repair, crash holes cut whole
    /// subtrees out of coverage).
    fn covered_count(&self) -> usize {
        let Some(tree) = &self.tree else { return 0 };
        let alive: Vec<bool> = self
            .core
            .iter()
            .map(|&m| self.members[m].status == MemberStatus::Admitted)
            .collect();
        let n = self.core.len();
        let root = tree.root();
        if !alive[root.index()] {
            return 0;
        }
        (0..n)
            .filter(|&v| {
                if !alive[v] {
                    return false;
                }
                let mut cur = NodeId::from(v);
                let mut steps = 0;
                while cur != root {
                    if !alive[cur.index()] || steps > n {
                        return false;
                    }
                    cur = tree.parent(cur);
                    steps += 1;
                }
                true
            })
            .count()
    }

    /// Whether the current tree is well-formed over the admitted-alive members.
    fn tree_is_valid(&self) -> bool {
        let Some(tree) = &self.tree else { return false };
        let alive: Vec<bool> = self
            .core
            .iter()
            .map(|&m| self.members[m].status == MemberStatus::Admitted)
            .collect();
        tree.is_valid_over(&alive) && tree.max_degree() <= 4
    }

    /// Runs one epoch: churn, re-invitation, repair, validation, sample.
    pub fn step_epoch(&mut self) -> EpochSample {
        let (joins, leaves, crashes) = self.advance_churn();
        let (reinvites, admitted) = if self.config.reinvite {
            self.reinvite_stragglers()
        } else {
            (0, 0)
        };
        let mut healed = 0;
        if self.config.repair {
            self.rebuild_core_graph();
            self.repair_evolution();
            healed = self.rebuild_tree();
        }
        let tree_valid = self.tree_is_valid();
        self.emit(TraceEvent::Repair {
            epoch: self.epoch,
            healed,
            tree_valid,
        });

        let alive = self.alive_ids().len();
        let pending = self.pending_ids().len();
        let covered = self.covered_count();
        let coverage = if alive == 0 {
            1.0
        } else {
            covered as f64 / alive as f64
        };
        let round = (self.epoch + 1) * self.config.epoch_rounds;
        // A burst counts as repaired once every admitted member is covered by
        // a valid tree again.
        if let Some(burst_round) = self.open_burst {
            if tree_valid && covered == self.admitted_alive().len() {
                self.rounds_to_repair_max = self.rounds_to_repair_max.max(round - burst_round);
                self.open_burst = None;
            }
        }
        self.emit(TraceEvent::Epoch {
            epoch: self.epoch,
            round,
            alive,
            stragglers: pending,
        });

        let sample = EpochSample {
            epoch: self.epoch,
            round,
            alive,
            pending,
            covered,
            coverage,
            tree_valid,
            reinvites,
            admitted,
            healed,
            joins,
            leaves,
            crashes,
        };
        self.samples.push(sample);
        self.epoch += 1;
        sample
    }

    /// Serves the configured horizon and distills the outcome.
    pub fn run(mut self) -> ServeOutcome {
        for _ in 0..self.config.epochs {
            self.step_epoch();
        }
        self.into_outcome()
    }

    /// Distills the samples recorded so far into a [`ServeOutcome`].
    pub fn into_outcome(mut self) -> ServeOutcome {
        // An unhealed burst is charged through the end of the horizon.
        if let Some(burst_round) = self.open_burst.take() {
            let horizon = self.config.epochs * self.config.epoch_rounds;
            self.rounds_to_repair_max = self
                .rounds_to_repair_max
                .max(horizon.saturating_sub(burst_round));
        }
        let coverages: Vec<f64> = self.samples.iter().map(|s| s.coverage).collect();
        let mean = |xs: &[f64]| {
            if xs.is_empty() {
                1.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            }
        };
        let floor = coverages.iter().copied().fold(f64::INFINITY, f64::min);
        ServeOutcome {
            coverage_mean: mean(&coverages),
            coverage_floor: if floor.is_finite() { floor } else { 1.0 },
            sustained_coverage: mean(&coverages[coverages.len() / 2..]),
            wf_violations: self.samples.iter().filter(|s| !s.tree_valid).count(),
            reinvites_sent: self.reinvites_sent,
            reinvites_delivered: self.reinvites_delivered,
            repairs: self.repairs,
            healed: self.healed_total,
            rounds_to_repair_max: self.rounds_to_repair_max,
            joined: self.joined,
            left: self.left,
            crashed: self.crashed,
            final_alive: self.alive_ids().len(),
            samples: self.samples,
        }
    }
}

/// The one-round binarization of [`crate::wellformed::BinarizeNode`] as a pure
/// function on parent pointers: every node keeps only its first (smallest-id)
/// child and arranges the rest as a balanced binary heap among themselves,
/// bounding the degree by 4.
fn binarize_parents(bfs: &[usize]) -> Vec<usize> {
    let n = bfs.len();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        if bfs[v] != v {
            children[bfs[v]].push(v); // ascending v => sorted, as the protocol sorts
        }
    }
    let mut out: Vec<usize> = (0..n).collect();
    for cs in &children {
        for (j, &c) in cs.iter().enumerate() {
            out[c] = if j == 0 { bfs[c] } else { cs[(j - 1) / 2] };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benign;
    use overlay_graph::generators;
    use overlay_netsim::{CrashBurst, TraceBuffer};

    fn initial_overlay(n: usize) -> (UGraph, ExpanderParams) {
        let params = ExpanderParams::for_n(n).with_seed(77);
        let g = benign::make_benign(&generators::cycle(n), &params).unwrap();
        (g, params)
    }

    fn churn(seed: u64, join: f64, crash: f64) -> ChurnSchedule {
        ChurnSchedule {
            seed,
            join_rate: join,
            leave_rate: 0.0,
            crash_rate: crash,
            burst: None,
        }
    }

    #[test]
    fn reinvitation_sustains_coverage_under_continuous_joins() {
        let (g, params) = initial_overlay(64);
        let mut config = MaintenanceConfig::new(40);
        config.seed = 5;
        let outcome = MaintenanceRunner::new(g, params, config, churn(9, 0.12, 0.0)).run();
        assert!(outcome.joined > 100, "continuous joins kept arriving");
        assert_eq!(outcome.wf_violations, 0);
        assert!(
            outcome.sustained_coverage >= 0.95,
            "re-invitation must keep coverage high, got {}",
            outcome.sustained_coverage
        );
        assert_eq!(outcome.reinvites_delivered, outcome.joined);
    }

    #[test]
    fn without_reinvitation_stragglers_pile_up() {
        let (g, params) = initial_overlay(64);
        let mut config = MaintenanceConfig::new(40);
        config.reinvite = false;
        config.seed = 5;
        let outcome = MaintenanceRunner::new(g, params, config, churn(9, 0.12, 0.0)).run();
        assert_eq!(outcome.reinvites_sent, 0);
        assert!(
            outcome.sustained_coverage <= 0.45,
            "stragglers must sink coverage, got {}",
            outcome.sustained_coverage
        );
        let last = outcome.samples.last().unwrap();
        assert_eq!(last.pending, outcome.joined, "every joiner still waiting");
    }

    #[test]
    fn crash_bursts_are_repaired_within_an_epoch() {
        let (g, params) = initial_overlay(64);
        let mut config = MaintenanceConfig::new(20);
        config.seed = 3;
        let schedule = ChurnSchedule {
            seed: 11,
            join_rate: 0.0,
            leave_rate: 0.0,
            crash_rate: 0.0,
            burst: Some(CrashBurst {
                every_rounds: 100,
                fraction: 0.2,
            }),
        };
        let outcome = MaintenanceRunner::new(g, params, config, schedule).run();
        assert!(outcome.crashed > 20, "bursts crashed members");
        assert_eq!(outcome.wf_violations, 0, "repair keeps the tree valid");
        assert!(
            outcome.rounds_to_repair_max <= config.epoch_rounds,
            "a burst is healed by the next boundary, got {}",
            outcome.rounds_to_repair_max
        );
        // Every surviving member is covered at the end.
        let last = outcome.samples.last().unwrap();
        assert_eq!(last.covered, last.alive);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (g, params) = initial_overlay(48);
            let mut config = MaintenanceConfig::new(12);
            config.invite_loss = 0.3;
            config.invite_retries = 2;
            let schedule = ChurnSchedule {
                seed: 4,
                join_rate: 0.2,
                leave_rate: 0.05,
                crash_rate: 0.05,
                burst: None,
            };
            MaintenanceRunner::new(g, params, config, schedule).run()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn trace_sink_sees_epoch_reinvite_and_repair_events() {
        let (g, params) = initial_overlay(48);
        let mut runner =
            MaintenanceRunner::new(g, params, MaintenanceConfig::new(6), churn(2, 0.3, 0.0));
        let buf = TraceBuffer::shared();
        runner.set_trace_sink(buf.clone());
        runner.run();
        let events = buf.borrow().events.clone();
        let has = |pred: fn(&TraceEvent) -> bool| events.iter().any(pred);
        assert!(has(|e| matches!(e, TraceEvent::Epoch { .. })));
        assert!(has(|e| matches!(e, TraceEvent::Repair { .. })));
        assert!(has(|e| matches!(
            e,
            TraceEvent::ReInvite {
                delivered: true,
                ..
            }
        )));
    }

    #[test]
    fn lossy_invitations_fail_and_retries_recover_them() {
        let outcome_with = |retries: usize| {
            let (g, params) = initial_overlay(48);
            let mut config = MaintenanceConfig::new(30);
            config.invite_loss = 0.5;
            config.invite_retries = retries;
            config.seed = 21;
            MaintenanceRunner::new(g, params, config, churn(6, 0.2, 0.0)).run()
        };
        let bare = outcome_with(0);
        let reliable = outcome_with(4);
        assert!(
            bare.reinvites_delivered < bare.reinvites_sent,
            "half the bare invitations are lost"
        );
        assert!(
            reliable.sustained_coverage > bare.sustained_coverage - 0.05,
            "retries must not hurt"
        );
        assert!(
            reliable.reinvites_delivered as f64 / reliable.reinvites_sent as f64 > 0.9,
            "retries push delivery above 90%"
        );
    }

    #[test]
    fn empty_service_reports_vacuous_coverage() {
        let (g, params) = initial_overlay(16);
        let mut config = MaintenanceConfig::new(4);
        config.seed = 1;
        // Crash everything quickly.
        let schedule = ChurnSchedule {
            seed: 1,
            join_rate: 0.0,
            leave_rate: 0.0,
            crash_rate: 8.0,
            burst: None,
        };
        let outcome = MaintenanceRunner::new(g, params, config, schedule).run();
        assert_eq!(outcome.final_alive, 0);
        let last = outcome.samples.last().unwrap();
        assert_eq!(last.alive, 0);
        assert_eq!(last.coverage, 1.0, "empty service is vacuously covered");
    }
}
