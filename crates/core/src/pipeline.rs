//! The first-class phase pipeline behind [`crate::OverlayBuilder`].
//!
//! The paper's construction is explicitly staged: `CreateExpander` turns the
//! knowledge graph into an expander, BFS spans the survivor core, and a one-round
//! binarization makes the tree well-formed. This module makes each stage a *value* —
//! a [`Phase`] bundling its protocol nodes, its schedule-derived clean round count
//! and the fault plan it runs against — and a [`PhaseRunner`] that owns, exactly
//! once, the loop every stage shares: resolving the effective round budget and
//! transport, building the [`SimConfig`] recipe, running the simulation, absorbing
//! metrics into the [`BuildReport`], and recording stalls and fragmentation.
//!
//! [`crate::OverlayBuilder::build_under_faults`] is a thin facade over these types:
//! it constructs the three phases, feeds them through one runner, and keeps only
//! the typed hand-offs between stages (survivor-core extraction after
//! `CreateExpander`, convergence checking after BFS, tree validation after
//! binarization). Because budgets and transports resolve *per phase* — via
//! [`PhaseOverrides`] — a caller can, e.g., run the reliable transport only for the
//! one-round binarization where a single lost message is fatal, while the long
//! construction phase stays on bare sends.

use crate::bfs::BfsNode;
use crate::builder::{BuildReport, PhaseOutcome, RoundBreakdown};
use crate::expander::ExpanderNode;
use crate::wellformed::BinarizeNode;
use crate::{ExpanderParams, RoundBudget};
use overlay_graph::{DiGraph, NodeId, UGraph};
use overlay_netsim::faults::FaultPlan;
use overlay_netsim::trace::{SharedTraceSink, TraceEvent};
use overlay_netsim::{
    MetricsMode, ParallelismConfig, Protocol, RunMetrics, SimConfig, Simulator, TransportConfig,
};
use overlay_transport::Reliable;
use std::time::{Duration, Instant};

/// Identifies one of the three simulated phases of the paper's pipeline.
///
/// The pipeline-level events that are *derived* from a phase rather than simulated
/// (`survivor-connectivity` fragmentation after construction, `bfs-convergence`
/// agreement, the `finalize` tree validation) are reported under their own names in
/// [`BuildReport::phases`] and have no `PhaseId`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseId {
    /// The `CreateExpander` evolutions over the full initial graph.
    CreateExpander,
    /// The BFS flood over the survivor-core expander.
    Bfs,
    /// The one-round tree binarization.
    Binarize,
    /// A post-construction traffic phase: request routing over the finished
    /// overlay (`overlay-traffic` routers). Not part of [`PhaseId::ALL`] — the
    /// construction pipeline never runs it; the scenario layer appends it after
    /// a successful build.
    Traffic,
}

impl PhaseId {
    /// All *construction* phases, in pipeline order. [`PhaseId::Traffic`] is an
    /// application phase layered on top and is deliberately absent.
    pub const ALL: [PhaseId; 3] = [PhaseId::CreateExpander, PhaseId::Bfs, PhaseId::Binarize];

    /// The phase's report name (`create-expander`, `bfs`, `binarize`, `traffic`).
    pub fn name(self) -> &'static str {
        match self {
            PhaseId::CreateExpander => "create-expander",
            PhaseId::Bfs => "bfs",
            PhaseId::Binarize => "binarize",
            PhaseId::Traffic => "traffic",
        }
    }

    /// Position in pipeline order (also the per-phase seed offset: each phase's
    /// simulator runs on `params.seed + index`, which is what keeps pipeline runs
    /// byte-identical to the historical three-block implementation).
    pub fn index(self) -> usize {
        match self {
            PhaseId::CreateExpander => 0,
            PhaseId::Bfs => 1,
            PhaseId::Binarize => 2,
            PhaseId::Traffic => 3,
        }
    }

    /// The event name pushed on simulated completion, or `None` when completion is
    /// judged later by a derived step (binarization completes only if the
    /// `finalize` validation accepts the tree, so its success event is pushed
    /// there; traffic outcomes live in the traffic report, not the event log).
    fn completed_event(self) -> Option<&'static str> {
        match self {
            PhaseId::CreateExpander | PhaseId::Bfs => Some(self.name()),
            PhaseId::Binarize | PhaseId::Traffic => None,
        }
    }
}

/// One stage of the pipeline as a value: the protocol nodes to simulate, the
/// schedule-derived clean round count, and the fault plan for the stage's window.
///
/// Budgets and transports are *not* part of a phase: they are resolved by the
/// [`PhaseRunner`] from its builder-wide defaults and the per-phase
/// [`PhaseOverrides`], so the same phase value runs identically under any policy.
#[derive(Clone, Debug)]
pub struct Phase<P> {
    id: PhaseId,
    nodes: Vec<P>,
    clean_rounds: usize,
    faults: FaultPlan,
}

impl<P> Phase<P> {
    /// A phase from raw parts. The typed constructors
    /// ([`Phase::create_expander`], [`Phase::bfs`], [`Phase::binarize`]) build the
    /// paper's stages; this escape hatch lets experiments run a custom protocol
    /// under the shared budget/metrics/stall machinery.
    pub fn from_parts(id: PhaseId, nodes: Vec<P>, clean_rounds: usize, faults: FaultPlan) -> Self {
        Phase {
            id,
            nodes,
            clean_rounds,
            faults,
        }
    }

    /// Which paper phase this is.
    pub fn id(&self) -> PhaseId {
        self.id
    }

    /// The clean-network round count of the stage's schedule (before any
    /// [`RoundBudget`] scaling).
    pub fn clean_rounds(&self) -> usize {
        self.clean_rounds
    }

    /// The protocol nodes the stage will simulate.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Decomposes the phase into its raw parts (the inverse of
    /// [`Phase::from_parts`]): id, nodes, clean round count, fault plan.
    /// External executors (the `overlay-net` crate) consume phases this way.
    pub fn into_parts(self) -> (PhaseId, Vec<P>, usize, FaultPlan) {
        (self.id, self.nodes, self.clean_rounds, self.faults)
    }
}

impl Phase<ExpanderNode> {
    /// The `CreateExpander` phase over every node of the initial knowledge graph
    /// `g` (late joiners included; the fault router keeps them dormant until their
    /// join round). The clean schedule is `L·(ℓ+1) + 1` evolution rounds plus the
    /// intro round and the final done round.
    pub fn create_expander(g: &DiGraph, params: &ExpanderParams, faults: FaultPlan) -> Self {
        let nodes: Vec<ExpanderNode> = g
            .nodes()
            .map(|v| {
                let mut out: Vec<NodeId> = g.out_neighbors(v).to_vec();
                out.sort_unstable();
                out.dedup();
                ExpanderNode::new(v, out, *params)
            })
            .collect();
        Phase::from_parts(
            PhaseId::CreateExpander,
            nodes,
            ExpanderNode::total_rounds(params) + 2,
            faults,
        )
    }
}

impl Phase<BfsNode> {
    /// The BFS phase over the (remapped) survivor-core expander.
    pub fn bfs(expander: &UGraph, params: &ExpanderParams, faults: FaultPlan) -> Self {
        let nodes: Vec<BfsNode> = expander
            .nodes()
            .map(|v| BfsNode::new(v, expander.distinct_neighbors(v), params.bfs_rounds))
            .collect();
        Phase::from_parts(
            PhaseId::Bfs,
            nodes,
            BfsNode::total_rounds(params.bfs_rounds) + 1,
            faults,
        )
    }
}

impl Phase<BinarizeNode> {
    /// The one-round binarization phase, handed off from the finished BFS states.
    pub fn binarize(bfs: &[BfsNode], faults: FaultPlan) -> Self {
        let nodes: Vec<BinarizeNode> = bfs
            .iter()
            .map(|b| BinarizeNode::new(b.id(), b.parent(), b.children().to_vec()))
            .collect();
        Phase::from_parts(
            PhaseId::Binarize,
            nodes,
            BinarizeNode::total_rounds() + 1,
            faults,
        )
    }
}

/// A per-phase transport decision: run the phase's protocol bare, or behind the
/// reliable-delivery layer with the given configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransportChoice {
    /// The paper's setting: one-shot sends, no acknowledgments.
    Bare,
    /// The `overlay-transport` reliable-delivery layer with this configuration.
    Reliable(TransportConfig),
}

/// Per-phase overrides of the builder-wide round budget and transport.
///
/// Unset entries inherit the builder's globals, so an empty override set (the
/// default) reproduces builder-global behavior bit-for-bit. Overrides let a
/// scenario spend reliability (or budget headroom) only where the protocol needs
/// it — e.g. reliable transport for the one-round binarize phase, whose single
/// lost message is unrecoverable, while the `O(log n)`-round construction phase
/// keeps the cheap bare sends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PhaseOverrides {
    budgets: [Option<RoundBudget>; 4],
    transports: [Option<TransportChoice>; 4],
}

impl PhaseOverrides {
    /// No overrides: every phase inherits the builder-wide budget and transport.
    pub fn none() -> Self {
        PhaseOverrides::default()
    }

    /// Returns the overrides with `id`'s round budget pinned to `budget`.
    pub fn with_budget(mut self, id: PhaseId, budget: RoundBudget) -> Self {
        self.budgets[id.index()] = Some(budget);
        self
    }

    /// Returns the overrides with `id`'s transport pinned to `choice`.
    pub fn with_transport(mut self, id: PhaseId, choice: TransportChoice) -> Self {
        self.transports[id.index()] = Some(choice);
        self
    }

    /// The budget override for `id`, if one is set.
    pub fn budget(&self, id: PhaseId) -> Option<RoundBudget> {
        self.budgets[id.index()]
    }

    /// The transport override for `id`, if one is set.
    pub fn transport(&self, id: PhaseId) -> Option<TransportChoice> {
        self.transports[id.index()]
    }

    /// `true` when no phase overrides anything (pure builder-global behavior).
    pub fn is_empty(&self) -> bool {
        self.budgets.iter().all(Option::is_none) && self.transports.iter().all(Option::is_none)
    }
}

/// Metric rollup for one *simulated* phase, answering "which stage ate the
/// budget": rounds executed, delivery and drop totals by cause, transport
/// overhead, and host wall-clock time.
///
/// One entry per [`PhaseRunner::run`] call is appended to
/// [`BuildReport::phase_metrics`], in pipeline order, including phases that
/// stalled (their partial totals are exactly what a post-mortem needs). Derived
/// steps (`survivor-connectivity`, `bfs-convergence`, `finalize`) simulate
/// nothing and have no entry.
///
/// Equality ignores [`PhaseMetrics::wall`] — it is host-machine noise, never part
/// of the deterministic run identity — so traced and untraced runs of one seed
/// compare equal. The counter taxonomy is the glossary in
/// [`overlay_netsim::metrics`].
#[derive(Clone, Copy, Debug)]
pub struct PhaseMetrics {
    /// The phase's report name (a [`PhaseId::name`]).
    pub phase: &'static str,
    /// Rounds the phase executed (including its start round).
    pub rounds: usize,
    /// Messages delivered to inboxes.
    pub delivered: u64,
    /// Messages lost to injected random loss.
    pub dropped_fault: u64,
    /// Messages blocked by an active partition.
    pub dropped_partition: u64,
    /// Messages addressed to crashed or not-yet-joined nodes.
    pub dropped_offline: u64,
    /// Messages evicted by a receiver's per-round cap.
    pub dropped_receive: u64,
    /// Messages dropped at the sender (send cap, CONGEST edge discipline, or an
    /// invalid recipient).
    pub dropped_send: u64,
    /// Messages that suffered an injected delivery delay.
    pub delayed: u64,
    /// Transport-layer retransmissions.
    pub retransmits: u64,
    /// Transport-layer acknowledgment messages.
    pub acks: u64,
    /// Duplicate payloads suppressed by the transport layer.
    pub dupes_dropped: u64,
    /// Payloads abandoned after the transport's retransmission budget ran out.
    pub give_ups: u64,
    /// Host wall-clock time spent simulating the phase. Ignored by `==`.
    pub wall: Duration,
}

impl PhaseMetrics {
    /// Rolls one phase's simulated [`RunMetrics`] up into a report entry.
    pub fn from_run(phase: &'static str, metrics: &RunMetrics, wall: Duration) -> Self {
        PhaseMetrics {
            phase,
            rounds: metrics.rounds,
            delivered: metrics.total_delivered(),
            dropped_fault: metrics.total_dropped_fault(),
            dropped_partition: metrics.total_dropped_partition(),
            dropped_offline: metrics.total_dropped_offline(),
            dropped_receive: metrics.total_dropped_receive(),
            dropped_send: metrics.total_dropped_send(),
            delayed: metrics.total_delayed(),
            retransmits: metrics.total_retransmits(),
            acks: metrics.total_acks(),
            dupes_dropped: metrics.total_dupes_dropped(),
            give_ups: metrics.total_give_ups(),
            wall,
        }
    }

    /// Total drops across every cause.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_fault
            + self.dropped_partition
            + self.dropped_offline
            + self.dropped_receive
            + self.dropped_send
    }

    /// The drop cause that lost the most messages this phase, as
    /// `(label, count)` — `None` when the phase dropped nothing. Ties resolve to
    /// the first cause in glossary order (fault, partition, offline, receive-cap,
    /// send-cap).
    pub fn dominant_drop(&self) -> Option<(&'static str, u64)> {
        let causes = [
            ("fault", self.dropped_fault),
            ("partition", self.dropped_partition),
            ("offline", self.dropped_offline),
            ("receive-cap", self.dropped_receive),
            ("send-cap", self.dropped_send),
        ];
        causes
            .into_iter()
            .filter(|&(_, count)| count > 0)
            .max_by_key(|&(_, count)| count)
    }
}

impl PartialEq for PhaseMetrics {
    fn eq(&self, other: &Self) -> bool {
        // Everything but `wall`, which is host noise.
        self.phase == other.phase
            && self.rounds == other.rounds
            && self.delivered == other.delivered
            && self.dropped_fault == other.dropped_fault
            && self.dropped_partition == other.dropped_partition
            && self.dropped_offline == other.dropped_offline
            && self.dropped_receive == other.dropped_receive
            && self.dropped_send == other.dropped_send
            && self.delayed == other.delayed
            && self.retransmits == other.retransmits
            && self.acks == other.acks
            && self.dupes_dropped == other.dupes_dropped
            && self.give_ups == other.give_ups
    }
}

/// Marker returned by [`PhaseRunner::run`] when the phase stalled: the stall has
/// already been recorded in the report and the pipeline must exit via
/// [`PhaseRunner::into_report`].
#[derive(Clone, Copy, Debug)]
pub struct Stalled;

/// A completed phase execution: the protocol states after the run (unwrapped from
/// the transport adapter when one was configured) and the facts later stages need.
#[derive(Clone, Debug)]
pub struct PhaseRun<P> {
    /// The protocol states after the run, in node order.
    pub nodes: Vec<P>,
    /// Liveness of each simulated node when the phase ended.
    pub alive: Vec<bool>,
    /// Rounds the phase executed.
    pub rounds: usize,
    /// The round budget the phase ran under (after scaling and slack) — derived
    /// steps that stall *after* the simulation (BFS convergence) report against it.
    pub budget: usize,
}

/// Runs the pipeline's phases against one shared [`BuildReport`], owning the
/// per-phase boilerplate — budget resolution, [`SimConfig`] recipe, simulation,
/// metrics absorption, stall and fragmentation recording — that
/// `build_under_faults` previously hand-rolled once per phase.
///
/// The runner is deliberately dumb about *what* the phases compute: hand-offs
/// between stages (core extraction, convergence checks, tree validation) stay in
/// the caller, which consumes each [`PhaseRun`] and finally takes the report back
/// with [`PhaseRunner::into_report`].
#[derive(Clone, Debug)]
pub struct PhaseRunner {
    ncc0_cap: usize,
    seed: u64,
    default_budget: RoundBudget,
    default_transport: Option<TransportConfig>,
    overrides: PhaseOverrides,
    /// Original ids of the core nodes once the pipeline has remapped onto the
    /// survivor core; phases run after [`PhaseRunner::adopt_core`] fold their
    /// per-node totals (and inherited-crash corrections) through this mapping.
    core: Option<Vec<usize>>,
    report: BuildReport,
    total_sent_per_node: Vec<u64>,
    /// Trace sink handed to every phase's simulator (plus the runner's own
    /// `PhaseStart` / `PhaseEnd` markers); `None` keeps runs completely untraced.
    sink: Option<SharedTraceSink>,
    /// Within-round parallelism policy handed to every phase's simulator
    /// (bitwise identical at any worker count, so purely a wall-clock knob).
    parallelism: ParallelismConfig,
    /// Metrics-retention mode handed to every phase's simulator; rollup mode
    /// bounds memory on long-horizon, large-`n` runs.
    metrics_mode: MetricsMode,
}

impl PhaseRunner {
    /// A runner over `n` initial nodes with the given builder-wide defaults and
    /// per-phase overrides.
    pub fn new(
        n: usize,
        params: &ExpanderParams,
        budget: RoundBudget,
        transport: Option<TransportConfig>,
        overrides: PhaseOverrides,
    ) -> Self {
        PhaseRunner {
            ncc0_cap: params.ncc0_cap,
            seed: params.seed,
            default_budget: budget,
            default_transport: transport,
            overrides,
            core: None,
            report: BuildReport {
                result: None,
                phases: Vec::new(),
                survivor_ids: Vec::new(),
                alive_at_end: Vec::new(),
                tree_valid_over_alive: false,
                rounds: RoundBreakdown::default(),
                messages: Default::default(),
                crashed: 0,
                joined: 0,
                phase_metrics: Vec::new(),
            },
            total_sent_per_node: vec![0; n],
            sink: None,
            parallelism: ParallelismConfig::default(),
            metrics_mode: MetricsMode::Full,
        }
    }

    /// Installs a trace sink: every subsequent phase brackets its simulation with
    /// [`TraceEvent::PhaseStart`] / [`TraceEvent::PhaseEnd`] and streams the
    /// simulator's events in between. Tracing never changes the run itself.
    pub fn set_trace_sink(&mut self, sink: SharedTraceSink) {
        self.sink = Some(sink);
    }

    /// Sets the within-round parallelism policy for every subsequent phase.
    /// Never changes results — only how many threads step nodes.
    pub fn set_parallelism(&mut self, parallelism: ParallelismConfig) {
        self.parallelism = parallelism;
    }

    /// Sets the metrics-retention mode for every subsequent phase (rollup mode
    /// bounds per-run memory; all totals and peaks are mode-independent).
    pub fn set_metrics_mode(&mut self, mode: MetricsMode) {
        self.metrics_mode = mode;
    }

    /// The round budget `id` will run under: its override, or the builder-wide
    /// default.
    pub fn effective_budget(&self, id: PhaseId) -> RoundBudget {
        self.overrides.budget(id).unwrap_or(self.default_budget)
    }

    /// The transport `id` will run behind: its override, or the builder-wide
    /// default (`None` = bare sends).
    pub fn effective_transport(&self, id: PhaseId) -> Option<TransportConfig> {
        match self.overrides.transport(id) {
            None => self.default_transport,
            Some(TransportChoice::Bare) => None,
            Some(TransportChoice::Reliable(config)) => Some(config),
        }
    }

    /// Declares the survivor core the pipeline continues with: `core_old_ids[i]`
    /// is the original id of remapped node `i`. Sets the report's
    /// [`BuildReport::survivor_ids`] and makes subsequent phases fold their
    /// metrics through the mapping.
    pub fn adopt_core(&mut self, core_old_ids: &[usize]) {
        self.report.survivor_ids = core_old_ids.iter().map(|&v| NodeId::from(v)).collect();
        self.core = Some(core_old_ids.to_vec());
    }

    /// Runs one phase end to end: resolves budget and transport, simulates,
    /// records the phase's rounds, absorbs its metrics, and either records the
    /// stall (returning [`Stalled`]) or pushes the completion event and hands the
    /// protocol states back for the next stage.
    pub fn run<P: Protocol>(&mut self, phase: Phase<P>) -> Result<PhaseRun<P>, Stalled> {
        let Phase {
            id,
            nodes,
            clean_rounds,
            faults,
        } = phase;
        let budget = self.effective_budget(id).apply(clean_rounds);
        let config = SimConfig::ncc0_capped(
            self.ncc0_cap,
            self.seed.wrapping_add(id.index() as u64),
            faults,
        )
        .with_parallelism(self.parallelism)
        .with_metrics_mode(self.metrics_mode);
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(TraceEvent::PhaseStart { phase: id.name() });
        }
        let started = Instant::now();
        let run = run_phase(
            nodes,
            config,
            budget,
            self.effective_transport(id),
            self.sink.clone(),
        );
        let wall = started.elapsed();
        let rounds = run.outcome.rounds;
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(TraceEvent::PhaseEnd {
                phase: id.name(),
                rounds,
                completed: run.outcome.all_done,
            });
        }
        match id {
            PhaseId::CreateExpander => self.report.rounds.construction = rounds,
            PhaseId::Bfs => self.report.rounds.bfs = rounds,
            PhaseId::Binarize => self.report.rounds.finalize = rounds,
            // Traffic rounds are an application figure, reported by the traffic
            // layer itself; the construction round breakdown stays untouched.
            PhaseId::Traffic => {}
        }
        self.absorb(&run.metrics);
        self.report
            .phase_metrics
            .push(PhaseMetrics::from_run(id.name(), &run.metrics, wall));
        if !run.outcome.all_done {
            self.stall(id.name(), rounds, budget, run.done_count, run.alive.len());
            return Err(Stalled);
        }
        if let Some(event) = id.completed_event() {
            self.report
                .phases
                .push((event, PhaseOutcome::Completed { rounds }));
        }
        Ok(PhaseRun {
            nodes: run.nodes,
            alive: run.alive,
            rounds,
            budget,
        })
    }

    /// Records a stalled phase (or derived step, e.g. `bfs-convergence`). Every
    /// stall exits the pipeline, so the caller follows with
    /// [`PhaseRunner::into_report`].
    pub fn stall(
        &mut self,
        phase: &'static str,
        rounds: usize,
        budget: usize,
        nodes_done: usize,
        nodes_total: usize,
    ) {
        self.report.phases.push((
            phase,
            PhaseOutcome::Stalled {
                rounds,
                budget,
                nodes_done,
                nodes_total,
            },
        ));
    }

    /// Records post-construction fragmentation of the survivors (the
    /// `survivor-connectivity` derived step).
    pub fn fragmented(&mut self, components: usize, core_size: usize) {
        self.report.phases.push((
            "survivor-connectivity",
            PhaseOutcome::Fragmented {
                components,
                core_size,
            },
        ));
    }

    /// Closes the per-node totals and hands the accumulated report back to the
    /// caller for the final hand-off (tree validation) or early exit.
    pub fn into_report(self) -> BuildReport {
        let mut report = self.report;
        report.messages.max_total_per_node =
            self.total_sent_per_node.iter().copied().max().unwrap_or(0);
        report
    }

    /// Folds one phase's metrics into the report. For phases running on the
    /// remapped core, crashes recorded at round 0 are *inherited* (a prior
    /// phase's crash pinned there by [`FaultPlan::shifted`]) and were already
    /// counted, so they are skipped, and per-node totals are mapped back to
    /// original ids.
    fn absorb(&mut self, metrics: &RunMetrics) {
        self.report.messages.absorb(metrics);
        let inherited = if self.core.is_some() {
            metrics.first_round_crashed()
        } else {
            0
        };
        self.report.crashed += metrics.total_crashed() - inherited;
        self.report.joined += metrics.total_joined();
        for (i, s) in metrics.total_sent_per_node.iter().enumerate() {
            let orig = self.core.as_ref().map_or(i, |ids| ids[i]);
            self.total_sent_per_node[orig] += s;
        }
    }
}

/// One simulated phase's raw outcome, with the protocol states already unwrapped
/// from the optional transport adapter.
pub(crate) struct RawRun<P> {
    pub(crate) nodes: Vec<P>,
    pub(crate) outcome: overlay_netsim::RunOutcome,
    pub(crate) metrics: RunMetrics,
    pub(crate) alive: Vec<bool>,
    pub(crate) done_count: usize,
}

/// Runs one phase of the pipeline — behind the reliable transport layer when one
/// is configured, bare otherwise — and extracts everything the pipeline needs
/// from the simulator. With a transport, `is_done` (and therefore `done_count`
/// and the phase's wall-rounds) includes the transport's own drain condition:
/// a node holding unacknowledged data keeps the phase alive so retransmissions
/// can land.
pub(crate) fn run_phase<P: Protocol>(
    nodes: Vec<P>,
    config: SimConfig,
    budget: usize,
    transport: Option<TransportConfig>,
    sink: Option<SharedTraceSink>,
) -> RawRun<P> {
    fn finish<Q: Protocol, P>(
        mut sim: Simulator<Q>,
        budget: usize,
        sink: Option<SharedTraceSink>,
        unwrap: impl Fn(Q) -> P,
    ) -> RawRun<P> {
        if let Some(sink) = sink {
            sim.set_trace_sink(sink);
        }
        let outcome = sim.run(budget);
        let alive = (0..sim.node_count())
            .map(|i| sim.is_active(NodeId::from(i)))
            .collect();
        let done_count = sim.done_count();
        let metrics = sim.metrics().clone();
        RawRun {
            nodes: sim.into_nodes().into_iter().map(unwrap).collect(),
            outcome,
            metrics,
            alive,
            done_count,
        }
    }
    match transport {
        Some(cfg) => finish(
            Simulator::new(
                nodes.into_iter().map(|p| Reliable::new(p, cfg)).collect(),
                config,
            ),
            budget,
            sink,
            Reliable::into_inner,
        ),
        None => finish(Simulator::new(nodes, config), budget, sink, |p| p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_ids_name_the_report_events() {
        assert_eq!(PhaseId::CreateExpander.name(), "create-expander");
        assert_eq!(PhaseId::Bfs.name(), "bfs");
        assert_eq!(PhaseId::Binarize.name(), "binarize");
        assert_eq!(PhaseId::ALL.map(PhaseId::index), [0, 1, 2]);
    }

    #[test]
    fn overrides_default_to_inheriting_everything() {
        let o = PhaseOverrides::none();
        assert!(o.is_empty());
        for id in PhaseId::ALL {
            assert_eq!(o.budget(id), None);
            assert_eq!(o.transport(id), None);
        }
        assert_eq!(o, PhaseOverrides::default());
    }

    #[test]
    fn overrides_are_per_phase() {
        let o = PhaseOverrides::none()
            .with_budget(PhaseId::Binarize, RoundBudget::percent(200))
            .with_transport(
                PhaseId::Binarize,
                TransportChoice::Reliable(TransportConfig::default()),
            )
            .with_transport(PhaseId::Bfs, TransportChoice::Bare);
        assert!(!o.is_empty());
        assert_eq!(o.budget(PhaseId::Binarize), Some(RoundBudget::percent(200)));
        assert_eq!(o.budget(PhaseId::CreateExpander), None);
        assert_eq!(o.transport(PhaseId::Bfs), Some(TransportChoice::Bare));
        assert_eq!(
            o.transport(PhaseId::Binarize),
            Some(TransportChoice::Reliable(TransportConfig::default()))
        );
        assert_eq!(o.transport(PhaseId::CreateExpander), None);
    }

    #[test]
    fn runner_resolves_overrides_against_defaults() {
        let params = ExpanderParams::for_n(32);
        let overrides = PhaseOverrides::none()
            .with_budget(PhaseId::Bfs, RoundBudget::percent(300))
            .with_transport(PhaseId::Binarize, TransportChoice::Bare);
        let runner = PhaseRunner::new(
            32,
            &params,
            RoundBudget::percent(150),
            Some(TransportConfig::default()),
            overrides,
        );
        // Overridden phases use their own values...
        assert_eq!(
            runner.effective_budget(PhaseId::Bfs),
            RoundBudget::percent(300)
        );
        assert_eq!(runner.effective_transport(PhaseId::Binarize), None);
        // ...everything else inherits the builder-wide defaults.
        assert_eq!(
            runner.effective_budget(PhaseId::CreateExpander),
            RoundBudget::percent(150)
        );
        assert_eq!(
            runner.effective_transport(PhaseId::Bfs),
            Some(TransportConfig::default())
        );
    }

    #[test]
    fn phases_carry_their_clean_schedule() {
        let params = ExpanderParams::for_n(32);
        let g = overlay_graph::generators::cycle(32);
        let p = Phase::create_expander(&g, &params, FaultPlan::default());
        assert_eq!(p.id(), PhaseId::CreateExpander);
        assert_eq!(p.clean_rounds(), ExpanderNode::total_rounds(&params) + 2);
        assert_eq!(p.nodes().len(), 32);
    }
}
