//! Time-optimal construction of overlay networks (Götte, Hinnenthal, Scheideler,
//! Werthmann — PODC 2021), NCC0 model.
//!
//! Starting from an arbitrary weakly connected knowledge graph of constant degree, the
//! pipeline in this crate constructs a **well-formed tree** — a rooted tree of constant
//! degree and `O(log n)` diameter containing every node — in `O(log n)` synchronous
//! rounds with every node sending and receiving only `O(log n)` messages per round.
//!
//! The construction follows the paper:
//!
//! 1. [`benign::make_benign`] turns the initial graph into a *benign* graph
//!    (Δ-regular, lazy, Λ-sized minimum cut) by copying edges and adding self-loops.
//! 2. [`expander::ExpanderNode`] runs `L = O(log n)` *evolutions*: each node starts Δ/8
//!    random-walk tokens of constant length ℓ and rewires to the endpoints, which
//!    multiplies the conductance by `Ω(√ℓ)` per evolution (Kwok–Lau) until the graph is
//!    a constant-conductance expander of diameter `O(log n)`.
//! 3. [`bfs::BfsNode`] floods the smallest identifier to build a BFS tree of the
//!    expander, and [`wellformed::BinarizeNode`] reduces its degree to a constant.
//!
//! [`OverlayBuilder`] composes the three phases and reports the model-level costs
//! (rounds and message counts) that the paper's Theorem 1.1 bounds. The
//! [`EvolutionEngine`] exposes the raw evolution step for conductance experiments.
//!
//! # Quick start
//!
//! ```
//! use overlay_core::{ExpanderParams, OverlayBuilder};
//! use overlay_graph::generators;
//!
//! // A line is the worst case: diameter n - 1, conductance Θ(1/n).
//! let g = generators::line(64);
//! let result = OverlayBuilder::new(ExpanderParams::for_n(64)).build(&g).unwrap();
//! assert!(result.tree.is_valid());
//! assert!(result.tree.max_degree() <= 4);
//! println!("rounds: {}", result.rounds.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod bfs;
pub mod builder;
mod error;
pub mod evolution;
pub mod expander;
pub mod maintenance;
mod params;
pub mod pipeline;
pub mod seam;
pub mod wellformed;

pub use builder::{
    BuildReport, MessageStats, OverlayBuilder, OverlayResult, PhaseOutcome, RoundBreakdown,
};
pub use error::OverlayError;
pub use evolution::{EvolutionEngine, EvolutionStats};
pub use expander::{ExpanderMsg, ExpanderNode};
pub use maintenance::{EpochSample, MaintenanceConfig, MaintenanceRunner, ServeOutcome};
pub use overlay_netsim::{MetricsMode, ParallelismConfig, TransportConfig};
pub use params::{ExpanderParams, RoundBudget};
pub use pipeline::{Phase, PhaseId, PhaseMetrics, PhaseOverrides, PhaseRunner, TransportChoice};
pub use seam::{
    BfsSummary, BinarizeSummary, ExecutedPhase, ExpanderSummary, PhaseExecSpec, PhaseExecutor,
    SimExecutor, Summarize,
};
pub use wellformed::WellFormedTree;
