//! Error type of the overlay-construction pipeline.

use std::error::Error;
use std::fmt;

/// Errors reported by the overlay-construction pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// The supplied parameters are internally inconsistent.
    InvalidParams(String),
    /// The initial graph's degree is too large for the NCC0 pipeline; the hybrid
    /// pipeline (crate `overlay-hybrid`) handles arbitrary degrees.
    DegreeTooLarge {
        /// The observed maximum (undirected) degree of the initial graph.
        degree: usize,
        /// The largest degree the chosen parameters support.
        supported: usize,
    },
    /// The initial graph is empty.
    EmptyGraph,
    /// The initial graph is not weakly connected, which Theorem 1.1 requires
    /// (use the connected-components pipeline of `overlay-hybrid` otherwise).
    Disconnected,
    /// A simulation phase did not terminate within its round budget.
    PhaseIncomplete {
        /// Human-readable phase name.
        phase: &'static str,
        /// The budget that was exhausted.
        budget: usize,
    },
    /// The final evolution graph fragmented on the clean path, so the tree cannot
    /// contain every node. Without injected faults this means the w.h.p.
    /// connectivity of `G_L` failed for the chosen parameters/seed — possible, but
    /// vanishingly unlikely with the defaults.
    Fragmented {
        /// Number of connected components among the survivors.
        components: usize,
        /// Size of the largest component (the core the pipeline continued with).
        core_size: usize,
    },
    /// Every phase ran to completion but the binarized parents did not form a
    /// single valid rooted tree over the alive nodes.
    FinalizeFailed,
    /// A pluggable phase executor (a socket or channel backend from the
    /// `overlay-net` crate) failed below the protocol layer — a peer process
    /// died, a connection broke, or a frame failed to decode.
    Backend(String),
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::InvalidParams(msg) => write!(f, "invalid parameters: {msg}"),
            OverlayError::DegreeTooLarge { degree, supported } => write!(
                f,
                "initial degree {degree} exceeds the supported degree {supported} for the NCC0 pipeline"
            ),
            OverlayError::EmptyGraph => write!(f, "the initial graph has no nodes"),
            OverlayError::Disconnected => {
                write!(f, "the initial graph is not weakly connected")
            }
            OverlayError::PhaseIncomplete { phase, budget } => {
                write!(f, "phase {phase} did not finish within {budget} rounds")
            }
            OverlayError::Fragmented {
                components,
                core_size,
            } => write!(
                f,
                "the final evolution graph fragmented into {components} components \
                 (largest: {core_size} nodes)"
            ),
            OverlayError::FinalizeFailed => {
                write!(f, "binarization did not produce a valid rooted tree")
            }
            OverlayError::Backend(msg) => write!(f, "transport backend failed: {msg}"),
        }
    }
}

impl Error for OverlayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = OverlayError::DegreeTooLarge {
            degree: 100,
            supported: 8,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains('8'));
        assert!(OverlayError::EmptyGraph.to_string().contains("no nodes"));
        assert!(OverlayError::Disconnected.to_string().contains("connected"));
        assert!(OverlayError::InvalidParams("x".into())
            .to_string()
            .contains('x'));
        let p = OverlayError::PhaseIncomplete {
            phase: "bfs",
            budget: 7,
        };
        assert!(p.to_string().contains("bfs"));
        let fr = OverlayError::Fragmented {
            components: 3,
            core_size: 42,
        };
        assert!(fr.to_string().contains('3') && fr.to_string().contains("42"));
        assert!(OverlayError::FinalizeFailed.to_string().contains("tree"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error>() {}
        assert_error::<OverlayError>();
    }
}
