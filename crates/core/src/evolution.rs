//! The graph-evolution engine: the same random experiment as the distributed protocol,
//! executed directly on a graph.
//!
//! The distributed [`crate::expander::ExpanderNode`] protocol and this engine perform
//! exactly the same evolution step (Δ/8 tokens per node, ℓ uniformly random slot hops,
//! up to 3Δ/8 acceptances, self-loop padding); the engine just skips the
//! message-passing so that conductance and minimum-cut trajectories (experiments E2 and
//! E4) can be measured on larger graphs and after every single evolution.

use crate::{benign, ExpanderParams, OverlayError};
use overlay_graph::{cuts, DiGraph, NodeId, UGraph};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Summary of one evolution step, as recorded by [`EvolutionEngine::evolve`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvolutionStats {
    /// Index of the evolution (0-based).
    pub evolution: usize,
    /// Conductance estimate of the resulting graph (upper bound via sweep cuts).
    pub conductance: f64,
    /// Minimum cut of the resulting graph, if it was computed.
    pub min_cut: Option<usize>,
    /// Whether the resulting graph satisfies the benign invariant (regularity and
    /// laziness; the cut is covered by `min_cut`).
    pub regular_and_lazy: bool,
}

/// Executes evolutions of the benign communication graph directly.
#[derive(Debug)]
pub struct EvolutionEngine {
    params: ExpanderParams,
    graph: UGraph,
    rng: StdRng,
    evolutions_done: usize,
}

impl EvolutionEngine {
    /// Creates an engine from an arbitrary weakly connected constant-degree knowledge
    /// graph by first applying the `MakeBenign` preprocessing.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`benign::make_benign`].
    pub fn from_initial(g: &DiGraph, params: ExpanderParams) -> Result<Self, OverlayError> {
        params.validate().map_err(OverlayError::InvalidParams)?;
        let graph = benign::make_benign(g, &params)?;
        Ok(Self::from_benign(graph, params))
    }

    /// Creates an engine from a graph that is already benign.
    pub fn from_benign(graph: UGraph, params: ExpanderParams) -> Self {
        let rng = StdRng::seed_from_u64(params.seed);
        EvolutionEngine {
            params,
            graph,
            rng,
            evolutions_done: 0,
        }
    }

    /// The current communication graph.
    pub fn graph(&self) -> &UGraph {
        &self.graph
    }

    /// Number of evolutions executed so far.
    pub fn evolutions_done(&self) -> usize {
        self.evolutions_done
    }

    /// Executes one evolution without computing any statistics — no
    /// conductance estimate, no benign re-check. The maintenance loop's fast
    /// path: the rewiring (and its RNG stream) is exactly that of
    /// [`EvolutionEngine::evolve`].
    pub fn evolve_quiet(&mut self) {
        self.step();
    }

    /// Executes one evolution and returns statistics of the resulting graph.
    ///
    /// Setting `track_min_cut` enables the (cubic-time) exact minimum-cut computation.
    pub fn evolve(&mut self, track_min_cut: bool) -> EvolutionStats {
        self.step();

        let conductance = cuts::conductance_estimate(&self.graph, self.params.seed ^ 0xC0DE);
        let min_cut = track_min_cut.then(|| cuts::min_cut(&self.graph));
        let report = benign::check_benign(&self.graph, &self.params, false);
        EvolutionStats {
            evolution: self.evolutions_done - 1,
            conductance,
            min_cut,
            regular_and_lazy: report.regular && report.lazy,
        }
    }

    /// The shared evolution step: token walks, acceptance, self-loop padding.
    fn step(&mut self) {
        let n = self.graph.node_count();
        let delta = self.params.delta;
        let tokens_per_node = self.params.tokens_per_node();
        let walk_len = self.params.walk_len;

        // Run every token's walk; group the endpoints by the node they finish at.
        let mut arrived: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n {
            for _ in 0..tokens_per_node {
                let mut pos = NodeId::from(v);
                for _ in 0..walk_len {
                    let slots = self.graph.neighbors(pos);
                    pos = slots[self.rng.gen_range(0..slots.len())];
                }
                arrived[pos.index()].push(NodeId::from(v));
            }
        }

        // Every node accepts up to 3Δ/8 arrived tokens and establishes bidirected edges.
        let mut next = UGraph::new(n);
        for (w, accepted) in arrived.iter_mut().enumerate() {
            accepted.shuffle(&mut self.rng);
            accepted.truncate(self.params.max_accepts());
            for &origin in accepted.iter() {
                next.add_edge(NodeId::from(w), origin);
            }
        }
        for v in next.nodes().collect::<Vec<_>>() {
            while next.degree(v) < delta {
                next.add_self_loop(v);
            }
        }
        self.graph = next;
        self.evolutions_done += 1;
    }

    /// Executes `count` evolutions, returning the per-evolution statistics.
    pub fn run(&mut self, count: usize, track_min_cut: bool) -> Vec<EvolutionStats> {
        (0..count).map(|_| self.evolve(track_min_cut)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::{analysis, generators};

    fn params(n: usize, seed: u64) -> ExpanderParams {
        ExpanderParams::for_n(n).with_seed(seed).with_walk_len(12)
    }

    #[test]
    fn evolution_keeps_graph_benign() {
        let p = params(128, 1);
        let mut engine = EvolutionEngine::from_initial(&generators::line(128), p).unwrap();
        for _ in 0..4 {
            let stats = engine.evolve(false);
            assert!(
                stats.regular_and_lazy,
                "evolution must stay regular and lazy"
            );
        }
        assert_eq!(engine.evolutions_done(), 4);
    }

    #[test]
    fn conductance_grows_on_the_line() {
        let p = params(256, 2);
        let g = generators::line(256);
        let start = cuts::conductance_estimate(&benign::make_benign(&g, &p).unwrap(), 7);
        let mut engine = EvolutionEngine::from_initial(&g, p).unwrap();
        let stats = engine.run(6, false);
        let end = stats.last().unwrap().conductance;
        assert!(
            end > 8.0 * start,
            "conductance should grow substantially: start {start}, end {end}"
        );
    }

    #[test]
    fn enough_evolutions_yield_low_diameter() {
        let p = params(256, 3);
        let mut engine = EvolutionEngine::from_initial(&generators::line(256), p).unwrap();
        engine.run(p.evolutions, false);
        let simple = engine.graph().simplify();
        assert!(analysis::is_connected(&simple));
        let diam = analysis::diameter(&simple).unwrap();
        assert!(diam <= 4 * 8, "diameter {diam} not logarithmic");
    }

    #[test]
    fn min_cut_stays_large() {
        let p = params(96, 4);
        let mut engine = EvolutionEngine::from_initial(&generators::cycle(96), p).unwrap();
        let stats = engine.run(3, true);
        // With the theory's (huge) constants the cut never drops below Λ w.h.p.; at this
        // small scale we accept a dip to Λ/2 early on and require full recovery once the
        // graph has mixed.
        for s in &stats {
            let cut = s.min_cut.unwrap();
            assert!(
                2 * cut >= p.lambda,
                "evolution {} has cut {cut} far below lambda {}",
                s.evolution,
                p.lambda
            );
        }
        assert!(stats.last().unwrap().min_cut.unwrap() >= p.lambda);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = params(64, 5);
        p.delta = 10;
        assert!(matches!(
            EvolutionEngine::from_initial(&generators::line(64), p),
            Err(OverlayError::InvalidParams(_))
        ));
    }

    #[test]
    fn quiet_evolution_matches_the_instrumented_step() {
        let p = params(64, 13);
        let g = generators::cycle(64);
        let mut a = EvolutionEngine::from_initial(&g, p).unwrap();
        let mut b = EvolutionEngine::from_initial(&g, p).unwrap();
        for _ in 0..3 {
            a.evolve(false);
            b.evolve_quiet();
        }
        assert_eq!(a.graph().edges(), b.graph().edges());
        assert_eq!(a.evolutions_done(), b.evolutions_done());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = params(64, 11);
        let run = || {
            let mut e = EvolutionEngine::from_initial(&generators::cycle(64), p).unwrap();
            e.run(3, false).last().unwrap().conductance
        };
        assert_eq!(run(), run());
    }
}
