//! Distributed BFS over the constructed expander graph.
//!
//! After the evolutions, the paper performs a BFS from the node with the smallest
//! identifier by flooding: every node repeatedly forwards the smallest root identifier
//! it has seen, remembering the neighbor it first heard it from as its parent. Because
//! the expander has diameter `O(log n)`, a round budget of `Θ(log n)` suffices, after
//! which one extra round lets every node report to its parent so parents learn their
//! children.

use overlay_graph::NodeId;
use overlay_netsim::wire::{Wire, WireError};
use overlay_netsim::{Ctx, Envelope, Protocol};

/// Messages of the BFS protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsMsg {
    /// "The smallest identifier I know of is `root`, and I am at distance `dist` from
    /// it."
    Offer {
        /// Smallest identifier seen so far.
        root: NodeId,
        /// The sender's distance from that root.
        dist: u32,
    },
    /// "You are my parent in the BFS tree."
    Child,
}

impl Wire for BfsMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            BfsMsg::Offer { root, dist } => {
                out.push(0);
                root.encode(out);
                dist.encode(out);
            }
            BfsMsg::Child => out.push(1),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(BfsMsg::Offer {
                root: NodeId::decode(buf)?,
                dist: u32::decode(buf)?,
            }),
            1 => Ok(BfsMsg::Child),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// Per-node state of the distributed BFS.
#[derive(Debug)]
pub struct BfsNode {
    id: NodeId,
    neighbors: Vec<NodeId>,
    flood_rounds: usize,
    root: NodeId,
    parent: NodeId,
    dist: u32,
    children: Vec<NodeId>,
    improved: bool,
    done: bool,
}

impl BfsNode {
    /// Creates the BFS state machine for node `id` with the given distinct neighbors in
    /// the expander graph and a flooding budget of `flood_rounds` rounds.
    pub fn new(id: NodeId, neighbors: Vec<NodeId>, flood_rounds: usize) -> Self {
        BfsNode {
            id,
            neighbors,
            flood_rounds,
            root: id,
            parent: id,
            dist: 0,
            children: Vec::new(),
            improved: true,
            done: false,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The smallest identifier this node has seen (after termination: the BFS root).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node's BFS parent (itself for the root).
    pub fn parent(&self) -> NodeId {
        self.parent
    }

    /// The node's BFS children.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// The node's BFS depth.
    pub fn depth(&self) -> u32 {
        self.dist
    }

    /// Number of message rounds the protocol needs after the start round: the flooding
    /// budget plus the round in which children report to their parents.
    pub fn total_rounds(flood_rounds: usize) -> usize {
        flood_rounds + 1
    }

    fn broadcast(&self, ctx: &mut Ctx<'_, BfsMsg>) {
        for &v in &self.neighbors {
            ctx.send_global(
                v,
                BfsMsg::Offer {
                    root: self.root,
                    dist: self.dist,
                },
            );
        }
    }
}

impl Protocol for BfsNode {
    type Message = BfsMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, BfsMsg>) {
        self.broadcast(ctx);
        self.improved = false;
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, BfsMsg>, inbox: &[Envelope<BfsMsg>]) {
        if self.done {
            // A done node still ingests late child reports: a Child message
            // delayed by jitter — or retransmitted by a reliability layer such as
            // `overlay-transport` — carries permanently valid information (the
            // sender committed to this parent and will not revise it), and
            // dropping it silently orphans the child in the binarized tree.
            // Offers stay frozen: re-flooding after the schedule would never
            // terminate.
            let mut late_children = false;
            for env in inbox {
                if env.payload == BfsMsg::Child {
                    self.children.push(env.from);
                    late_children = true;
                }
            }
            if late_children {
                self.children.sort_unstable();
                self.children.dedup();
            }
            return;
        }
        for env in inbox {
            match env.payload {
                BfsMsg::Offer { root, dist } => {
                    let better = root < self.root || (root == self.root && dist + 1 < self.dist);
                    if better {
                        self.root = root;
                        self.dist = dist + 1;
                        self.parent = env.from;
                        self.improved = true;
                    }
                }
                BfsMsg::Child => self.children.push(env.from),
            }
        }
        let round = ctx.round();
        if round < self.flood_rounds {
            if self.improved {
                self.broadcast(ctx);
                self.improved = false;
            }
        } else if round == self.flood_rounds {
            if self.parent != self.id {
                ctx.send_global(self.parent, BfsMsg::Child);
            }
        } else {
            self.children.sort_unstable();
            self.children.dedup();
            self.done = true;
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::{generators, DiGraph};
    use overlay_netsim::{SimConfig, Simulator};

    fn run_bfs(g: &DiGraph, flood_rounds: usize) -> Vec<BfsNode> {
        let u = g.to_undirected();
        let nodes: Vec<BfsNode> = u
            .nodes()
            .map(|v| BfsNode::new(v, u.distinct_neighbors(v), flood_rounds))
            .collect();
        let mut sim = Simulator::new(nodes, SimConfig::default());
        let outcome = sim.run(BfsNode::total_rounds(flood_rounds) + 1);
        assert!(outcome.all_done);
        sim.into_nodes()
    }

    #[test]
    fn bfs_on_cycle_finds_root_zero() {
        let nodes = run_bfs(&generators::cycle(16), 12);
        for node in &nodes {
            assert_eq!(node.root(), NodeId::from(0usize));
        }
        // Depths match the cycle distance to node 0.
        assert_eq!(nodes[8].depth(), 8);
        assert_eq!(nodes[15].depth(), 1);
    }

    #[test]
    fn bfs_tree_structure_is_consistent() {
        let g = generators::connected_random(64, 0.08, 17);
        let nodes = run_bfs(&g, 20);
        let root = NodeId::from(0usize);
        let mut child_count = 0usize;
        for node in &nodes {
            if node.id() == root {
                assert_eq!(node.parent(), root);
            } else {
                assert_ne!(node.parent(), node.id(), "non-root must have a parent");
            }
            child_count += node.children().len();
        }
        // Every non-root node is some node's child exactly once.
        assert_eq!(child_count, 63);
        // Parent/child relations are mutual.
        for node in &nodes {
            for &c in node.children() {
                assert_eq!(nodes[c.index()].parent(), node.id());
            }
        }
    }

    #[test]
    fn insufficient_budget_leaves_far_nodes_unrooted() {
        // A line of 32 with only 4 flooding rounds cannot inform the far end.
        let nodes = run_bfs(&generators::line(32), 4);
        assert_ne!(nodes[31].root(), NodeId::from(0usize));
    }

    #[test]
    fn bfs_depth_bounded_by_eccentricity() {
        let g = generators::grid(6, 6);
        let nodes = run_bfs(&g, 30);
        let max_depth = nodes.iter().map(|n| n.depth()).max().unwrap();
        assert_eq!(max_depth, 10); // grid corner-to-corner distance from node 0
    }
}
