//! The distributed `CreateExpander` protocol (Section 2.1 of the paper) in the NCC0
//! model.
//!
//! Every node runs an [`ExpanderNode`] state machine. The run is organised as follows
//! (all nodes share the schedule because they know the parameters):
//!
//! * **Round 0 (start):** every node introduces itself to its initial out-neighbors so
//!   that the knowledge graph becomes bidirected.
//! * **Round 1:** every node assembles its *benign* slot list locally (every distinct
//!   undirected neighbor repeated Λ times, padded with self-loops to degree Δ) and
//!   launches evolution 0.
//! * **Evolution `e`** occupies `ℓ + 1` rounds: in the first round each node sends Δ/8
//!   random-walk tokens along uniformly random incident slots; in the following `ℓ - 1`
//!   rounds tokens are forwarded one random hop per round; in the final round each node
//!   accepts up to 3Δ/8 of the tokens that finished at it and replies to their origins,
//!   establishing bidirected edges. The next evolution's graph consists of exactly
//!   those edges plus self-loops padding every node back to degree Δ.
//! * After `L` evolutions one extra round incorporates the last acceptances; the node's
//!   final slot list is the expander graph `G_L`.
//!
//! Token forwarding over a self-loop slot stays at the node and consumes no message,
//! exactly as a lazy random-walk step.

use crate::ExpanderParams;
use overlay_graph::NodeId;
use overlay_netsim::wire::{Wire, WireError};
use overlay_netsim::{Ctx, Envelope, Protocol};
use rand::seq::SliceRandom;
use rand::Rng;

/// Messages exchanged by [`ExpanderNode`]. Every variant carries at most one identifier
/// plus a small counter, i.e. `O(log n)` bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpanderMsg {
    /// "I have an edge to you": sent once to every initial out-neighbor so the knowledge
    /// graph becomes bidirected.
    Intro,
    /// A random-walk token: the identifier of its origin and the number of hops it still
    /// has to take.
    Token {
        /// The node that started this token and will receive the new edge.
        origin: NodeId,
        /// Remaining hops after this delivery.
        steps_left: u32,
    },
    /// "I accepted your token": establishes the bidirected edge between the token's
    /// origin (the recipient of this message) and the accepting node (the sender).
    Accept,
}

impl Wire for ExpanderMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ExpanderMsg::Intro => out.push(0),
            ExpanderMsg::Token { origin, steps_left } => {
                out.push(1);
                origin.encode(out);
                steps_left.encode(out);
            }
            ExpanderMsg::Accept => out.push(2),
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ExpanderMsg::Intro),
            1 => Ok(ExpanderMsg::Token {
                origin: NodeId::decode(buf)?,
                steps_left: u32::decode(buf)?,
            }),
            2 => Ok(ExpanderMsg::Accept),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// A buffered token: its origin and the hops it still has to take.
type BufferedToken = (NodeId, u32);

/// Per-node state of the distributed `CreateExpander` protocol.
#[derive(Debug)]
pub struct ExpanderNode {
    id: NodeId,
    params: ExpanderParams,
    /// Distinct initial out-neighbors (knowledge-graph edges we store).
    out_neighbors: Vec<NodeId>,
    /// Distinct nodes that introduced themselves in round 0.
    intro_neighbors: Vec<NodeId>,
    /// Current benign slot list (neighbors with multiplicity; self-loops as own id).
    slots: Vec<NodeId>,
    /// Edge endpoints collected for the *next* evolution graph.
    next_slots: Vec<NodeId>,
    /// Tokens to forward in the next forwarding round.
    forward_buffer: Vec<BufferedToken>,
    /// Tokens that completed their walk here and await the accept round.
    arrived: Vec<NodeId>,
    /// Tokens "sent to ourselves" over self-loop slots, delivered next round locally.
    self_delivery: Vec<BufferedToken>,
    /// Pooled scratch the per-round drains of `self_delivery` and `forward_buffer`
    /// swap through, so the hot path stops reallocating those vectors every round
    /// (the same discipline as the simulator's envelope arena). Empty between
    /// rounds; only its capacity persists.
    scratch: Vec<BufferedToken>,
    /// Set once the final graph has been assembled.
    done: bool,
}

impl ExpanderNode {
    /// Creates the state machine for node `id` with the given distinct initial
    /// out-neighbors.
    pub fn new(id: NodeId, out_neighbors: Vec<NodeId>, params: ExpanderParams) -> Self {
        ExpanderNode {
            id,
            params,
            out_neighbors,
            intro_neighbors: Vec::new(),
            slots: Vec::new(),
            next_slots: Vec::new(),
            forward_buffer: Vec::new(),
            arrived: Vec::new(),
            self_delivery: Vec::new(),
            scratch: Vec::new(),
            done: false,
        }
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's current slot list (after termination: its adjacency in `G_L`).
    pub fn slots(&self) -> &[NodeId] {
        &self.slots
    }

    /// Number of message rounds the protocol needs after the start (intro) round:
    /// `L` evolutions of `ℓ + 1` rounds each plus one final round that incorporates the
    /// last acceptances.
    pub fn total_rounds(params: &ExpanderParams) -> usize {
        params.evolutions * (params.walk_len + 1) + 1
    }

    /// Builds the benign slot list from local knowledge (Section 2.1 preprocessing).
    fn build_benign_slots(&mut self) {
        let mut neighbors: Vec<NodeId> = self
            .out_neighbors
            .iter()
            .chain(self.intro_neighbors.iter())
            .copied()
            .filter(|&v| v != self.id)
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        self.slots.clear();
        for v in neighbors {
            for _ in 0..self.params.lambda {
                self.slots.push(v);
            }
        }
        self.pad_with_self_loops();
    }

    fn pad_with_self_loops(&mut self) {
        while self.slots.len() < self.params.delta {
            self.slots.push(self.id);
        }
    }

    /// Replaces the current slot list with the edges collected during the last
    /// evolution, padded with self-loops. The outgoing slot list's buffer is kept
    /// as the next evolution's (cleared) collection buffer instead of being freed.
    fn adopt_next_graph(&mut self) {
        std::mem::swap(&mut self.slots, &mut self.next_slots);
        self.next_slots.clear();
        self.pad_with_self_loops();
    }

    /// Sends a token one hop along a uniformly random incident slot; self-loop hops stay
    /// local and cost no message.
    fn hop_token(&mut self, ctx: &mut Ctx<'_, ExpanderMsg>, origin: NodeId, steps_left: u32) {
        // A node that joined mid-evolution has no slots until its first step-0 round;
        // it holds the token like an all-self-loop slot list would (a lazy step).
        // Unreachable in clean runs: slot lists are always padded to Δ there.
        let target = if self.slots.is_empty() {
            self.id
        } else {
            self.slots[ctx.rng().gen_range(0..self.slots.len())]
        };
        if target == self.id {
            // Lazy step: the token stays here for one round.
            if steps_left == 0 {
                // It will be considered "arrived" at the next round, mirroring the
                // delivery delay of a real message.
                self.self_delivery.push((origin, 0));
            } else {
                self.self_delivery.push((origin, steps_left));
            }
        } else {
            ctx.send_global(target, ExpanderMsg::Token { origin, steps_left });
        }
    }

    fn launch_own_tokens(&mut self, ctx: &mut Ctx<'_, ExpanderMsg>) {
        let tokens = self.params.tokens_per_node();
        let steps_left = self.params.walk_len as u32 - 1;
        for _ in 0..tokens {
            self.hop_token(ctx, self.id, steps_left);
        }
    }

    fn forward_round(&mut self, ctx: &mut Ctx<'_, ExpanderMsg>) {
        // Swap the buffer out through the pooled scratch (rather than `take`, which
        // would drop its capacity every round) — `hop_token` only ever appends to
        // `self_delivery`, never to `forward_buffer`, so draining a detached buffer
        // is equivalent.
        debug_assert!(self.scratch.is_empty(), "scratch is empty between uses");
        let mut buffered =
            std::mem::replace(&mut self.forward_buffer, std::mem::take(&mut self.scratch));
        for (origin, steps_left) in buffered.drain(..) {
            debug_assert!(
                steps_left > 0,
                "tokens with no hops left never enter the buffer"
            );
            self.hop_token(ctx, origin, steps_left - 1);
        }
        self.scratch = buffered;
    }

    fn accept_round(&mut self, ctx: &mut Ctx<'_, ExpanderMsg>) {
        // In place (no `take`, which reallocated every evolution): the shuffle and
        // truncation draw the exact same RNG stream as before, and the buffer's
        // capacity survives for the next evolution.
        self.arrived.shuffle(ctx.rng());
        self.arrived.truncate(self.params.max_accepts());
        for i in 0..self.arrived.len() {
            let origin = self.arrived[i];
            self.next_slots.push(origin);
            if origin != self.id {
                ctx.send_global(origin, ExpanderMsg::Accept);
            }
            // A walk that returned home creates a self-loop, which needs no message.
        }
        self.arrived.clear();
    }

    fn ingest(&mut self, inbox: &[Envelope<ExpanderMsg>]) {
        for env in inbox {
            match env.payload {
                ExpanderMsg::Intro => self.intro_neighbors.push(env.from),
                ExpanderMsg::Token { origin, steps_left } => {
                    if steps_left == 0 {
                        self.arrived.push(origin);
                    } else {
                        self.forward_buffer.push((origin, steps_left));
                    }
                }
                ExpanderMsg::Accept => self.next_slots.push(env.from),
            }
        }
        // Tokens that travelled over a self-loop slot last round, drained through
        // the pooled scratch so the vector's capacity is reused round over round.
        debug_assert!(self.scratch.is_empty(), "scratch is empty between uses");
        let mut held =
            std::mem::replace(&mut self.self_delivery, std::mem::take(&mut self.scratch));
        for (origin, steps_left) in held.drain(..) {
            if steps_left == 0 {
                self.arrived.push(origin);
            } else {
                self.forward_buffer.push((origin, steps_left));
            }
        }
        self.scratch = held;
    }
}

impl Protocol for ExpanderNode {
    type Message = ExpanderMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ExpanderMsg>) {
        let mut targets: Vec<NodeId> = self
            .out_neighbors
            .iter()
            .copied()
            .filter(|&v| v != self.id)
            .collect();
        targets.sort_unstable();
        targets.dedup();
        for v in targets {
            ctx.send_global(v, ExpanderMsg::Intro);
        }
    }

    fn on_round(&mut self, ctx: &mut Ctx<'_, ExpanderMsg>, inbox: &[Envelope<ExpanderMsg>]) {
        if self.done {
            return;
        }
        self.ingest(inbox);

        let walk_len = self.params.walk_len;
        let phase_len = walk_len + 1;
        let k = ctx.round() - 1;
        let evolution = k / phase_len;
        let step = k % phase_len;

        if evolution >= self.params.evolutions {
            // Final round: incorporate the last acceptances and stop.
            self.adopt_next_graph();
            self.done = true;
            return;
        }

        if step == 0 {
            if evolution == 0 {
                self.build_benign_slots();
            } else {
                self.adopt_next_graph();
            }
            self.arrived.clear();
            self.launch_own_tokens(ctx);
        } else if step < walk_len {
            self.forward_round(ctx);
        } else {
            self.accept_round(ctx);
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::{analysis, generators, DiGraph, UGraph};
    use overlay_netsim::{CapacityModel, SimConfig, Simulator};

    fn run_expander(g: &DiGraph, params: ExpanderParams) -> Vec<ExpanderNode> {
        let nodes: Vec<ExpanderNode> = g
            .nodes()
            .map(|v| {
                let mut out: Vec<NodeId> = g.out_neighbors(v).to_vec();
                out.sort_unstable();
                out.dedup();
                ExpanderNode::new(v, out, params)
            })
            .collect();
        let config = SimConfig {
            caps: CapacityModel::Ncc0 {
                per_round: params.ncc0_cap,
            },
            seed: params.seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(nodes, config);
        let outcome = sim.run(ExpanderNode::total_rounds(&params) + 2);
        assert!(outcome.all_done, "expander protocol must terminate");
        assert_eq!(
            sim.metrics().total_dropped_receive(),
            0,
            "no node should exceed its receive capacity"
        );
        sim.into_nodes()
    }

    fn slots_to_graph(nodes: &[ExpanderNode]) -> UGraph {
        let mut g = UGraph::new(nodes.len());
        for node in nodes {
            let v = node.id();
            for &w in node.slots() {
                if w == v {
                    g.add_self_loop(v);
                } else if w > v {
                    g.add_edge(v, w);
                }
            }
        }
        g
    }

    fn test_params(n: usize) -> ExpanderParams {
        let mut p = ExpanderParams::for_n(n);
        p.walk_len = 12;
        p.seed = 99;
        p
    }

    #[test]
    fn expander_total_rounds_formula() {
        let p = test_params(64);
        assert_eq!(
            ExpanderNode::total_rounds(&p),
            p.evolutions * (p.walk_len + 1) + 1
        );
    }

    #[test]
    fn expander_on_line_produces_regular_low_diameter_graph() {
        let n = 128;
        let params = test_params(n);
        let nodes = run_expander(&generators::line(n), params);
        for node in &nodes {
            assert_eq!(
                node.slots().len(),
                params.delta,
                "final graph must be regular"
            );
        }
        let g = slots_to_graph(&nodes);
        let simple = g.simplify();
        assert!(
            analysis::is_connected(&simple),
            "expander must be connected"
        );
        let diam = analysis::diameter(&simple).expect("connected");
        // O(log n) with a generous constant.
        assert!(
            diam <= 4 * 7,
            "diameter {diam} too large for n={n} (expected O(log n))"
        );
    }

    #[test]
    fn expander_edges_are_symmetric() {
        let n = 64;
        let params = test_params(n);
        let nodes = run_expander(&generators::cycle(n), params);
        // Count directed slot multiplicities and check symmetry.
        let mut counts = std::collections::HashMap::new();
        for node in &nodes {
            for &w in node.slots() {
                if w != node.id() {
                    *counts.entry((node.id(), w)).or_insert(0usize) += 1;
                }
            }
        }
        for (&(u, v), &c) in &counts {
            assert_eq!(
                counts.get(&(v, u)).copied().unwrap_or(0),
                c,
                "edge {u}->{v} must be mirrored"
            );
        }
    }

    #[test]
    fn expander_respects_message_bounds() {
        let n = 128;
        let params = test_params(n);
        let g = generators::binary_tree(n);
        let nodes: Vec<ExpanderNode> = g
            .nodes()
            .map(|v| ExpanderNode::new(v, g.out_neighbors(v).to_vec(), params))
            .collect();
        let config = SimConfig {
            caps: CapacityModel::Ncc0 {
                per_round: params.ncc0_cap,
            },
            seed: 5,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(nodes, config);
        sim.run(ExpanderNode::total_rounds(&params) + 2);
        let m = sim.metrics();
        assert!(m.max_sent_in_any_round() <= params.ncc0_cap);
        assert!(m.max_received_in_any_round() <= params.ncc0_cap);
        assert_eq!(m.total_dropped_receive(), 0);
        assert_eq!(m.total_dropped_send(), 0);
    }

    #[test]
    fn expander_is_deterministic_for_fixed_seed() {
        let n = 48;
        let params = test_params(n);
        let a = run_expander(&generators::line(n), params);
        let b = run_expander(&generators::line(n), params);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.slots(), y.slots());
        }
    }

    #[test]
    fn single_evolution_keeps_graph_connected() {
        let n = 96;
        let mut params = test_params(n);
        params.evolutions = 1;
        let nodes = run_expander(&generators::cycle(n), params);
        let g = slots_to_graph(&nodes).simplify();
        assert!(analysis::is_connected(&g));
    }
}
