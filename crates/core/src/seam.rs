//! The executor seam: run the pipeline's phases on something other than the
//! lockstep simulator.
//!
//! [`crate::OverlayBuilder::build_over`] drives the paper's three phases
//! through a [`PhaseExecutor`] instead of calling the simulator directly. An
//! executor receives a fully constructed [`Phase`] (every node's protocol
//! state, for *all* `n` nodes) plus a [`PhaseExecSpec`] (seed, capacity cap,
//! round budget, transport choice) and returns an [`ExecutedPhase`]: one
//! [`Summarize::Summary`] per node plus the run facts the hand-offs need.
//!
//! Two families of executors exist:
//!
//! * [`SimExecutor`] (here) — the existing deterministic simulator behind the
//!   seam. `build_over(&g, &mut SimExecutor::default())` constructs exactly
//!   the overlay `build(&g)` does.
//! * The socket-backed runners in the `overlay-net` crate — one thread per
//!   node over in-process channels, or multiple OS processes over TCP. They
//!   replicate the simulator's delivery order, RNG seeding and stop rule, so
//!   per seed the final overlay graph is *identical* to the simulator's; the
//!   cross-backend equivalence tests in `overlay-net` pin that claim.
//!
//! Summaries exist because a multi-process executor cannot hand back remote
//! nodes' full protocol states. Each phase's hand-off needs only a small
//! per-node digest — final slot lists after construction, `(root, parent,
//! children)` after BFS, the relinked parent after binarization — and every
//! successor phase is constructible from those digests alone. Summaries
//! implement [`Wire`] so executors can exchange them across process
//! boundaries.

use crate::bfs::BfsNode;
use crate::expander::ExpanderNode;
use crate::pipeline::{run_phase, Phase};
use crate::wellformed::BinarizeNode;
use overlay_graph::NodeId;
use overlay_netsim::wire::{Wire, WireError};
use overlay_netsim::{MetricsMode, ParallelismConfig, Protocol, SimConfig, TransportConfig};

/// A protocol whose per-node end state can be digested into a small,
/// wire-encodable summary sufficient for the pipeline's phase hand-offs.
pub trait Summarize: Protocol
where
    Self::Message: Wire,
{
    /// The per-node digest exchanged at phase boundaries.
    type Summary: Wire + Clone + std::fmt::Debug + Send;

    /// Digests this node's final state.
    fn summarize(&self) -> Self::Summary;
}

/// What the `CreateExpander` hand-off needs from each node: its identifier and
/// its final evolution-graph slot list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExpanderSummary {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's slots in the final evolution graph `G_L` (one entry per
    /// incident half-edge, self-loops included).
    pub slots: Vec<NodeId>,
}

impl Wire for ExpanderSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.slots.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ExpanderSummary {
            id: NodeId::decode(buf)?,
            slots: Vec::decode(buf)?,
        })
    }
}

impl Summarize for ExpanderNode {
    type Summary = ExpanderSummary;

    fn summarize(&self) -> ExpanderSummary {
        ExpanderSummary {
            id: self.id(),
            slots: self.slots().to_vec(),
        }
    }
}

/// What the BFS hand-off needs from each node: the root it converged to and
/// its place in the BFS tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BfsSummary {
    /// The node's identifier.
    pub id: NodeId,
    /// The smallest identifier the node knows (the root it elected).
    pub root: NodeId,
    /// The node's BFS parent (itself for the root).
    pub parent: NodeId,
    /// The node's BFS children.
    pub children: Vec<NodeId>,
}

impl Wire for BfsSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.root.encode(out);
        self.parent.encode(out);
        self.children.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BfsSummary {
            id: NodeId::decode(buf)?,
            root: NodeId::decode(buf)?,
            parent: NodeId::decode(buf)?,
            children: Vec::decode(buf)?,
        })
    }
}

impl Summarize for BfsNode {
    type Summary = BfsSummary;

    fn summarize(&self) -> BfsSummary {
        BfsSummary {
            id: self.id(),
            root: self.root(),
            parent: self.parent(),
            children: self.children().to_vec(),
        }
    }
}

/// What the finalize hand-off needs from each node: its parent in the
/// binarized tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinarizeSummary {
    /// The node's identifier.
    pub id: NodeId,
    /// The node's parent in the binarized (well-formed) tree.
    pub new_parent: NodeId,
}

impl Wire for BinarizeSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.new_parent.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(BinarizeSummary {
            id: NodeId::decode(buf)?,
            new_parent: NodeId::decode(buf)?,
        })
    }
}

impl Summarize for BinarizeNode {
    type Summary = BinarizeSummary;

    fn summarize(&self) -> BinarizeSummary {
        BinarizeSummary {
            id: self.id(),
            new_parent: self.new_parent(),
        }
    }
}

/// The run parameters [`crate::OverlayBuilder::build_over`] resolves for one
/// phase, mirroring what [`crate::PhaseRunner::run`] feeds the simulator:
/// the phase-offset seed, the NCC0 cap, the scaled round budget and the
/// effective transport.
#[derive(Clone, Copy, Debug)]
pub struct PhaseExecSpec {
    /// Seed for this phase's randomness (already offset by the phase index,
    /// exactly as [`crate::PhaseRunner`] does).
    pub seed: u64,
    /// The NCC0 per-node, per-round global message cap.
    pub ncc0_cap: usize,
    /// Maximum message rounds to execute (the scaled [`crate::RoundBudget`]).
    pub budget: usize,
    /// Run the phase behind the reliable-delivery layer, or bare (`None`).
    pub transport: Option<TransportConfig>,
}

/// One executed phase: per-node summaries plus the facts the hand-offs need.
#[derive(Clone, Debug)]
pub struct ExecutedPhase<S> {
    /// One summary per node, in node order.
    pub summaries: Vec<S>,
    /// Liveness of each node when the phase ended (all `true` on clean runs;
    /// a socket backend marks peers its failure detector gave up on).
    pub alive: Vec<bool>,
    /// Message rounds executed (not counting the start round).
    pub rounds: usize,
    /// Whether every node reported done before the budget ran out.
    pub all_done: bool,
    /// Messages delivered to inboxes across the phase (best-effort bookkeeping
    /// for reporting; not part of the overlay-graph equivalence contract).
    pub delivered: u64,
}

/// An engine that can execute one pipeline phase end to end.
///
/// Implementations must reproduce the synchronous model faithfully — round
/// `r`'s sends are delivered at round `r + 1`, inboxes are ordered by sender
/// id then send order, the per-sender global send cap applies, and execution
/// stops when every node is done or the budget is exhausted — but are free to
/// realize it over any medium (the lockstep simulator, threads and channels,
/// TCP sockets).
pub trait PhaseExecutor {
    /// How this executor fails below the protocol layer (connection loss,
    /// undecodable frames). The simulator cannot fail.
    type Error: std::fmt::Display;

    /// Executes `phase` under `spec`, returning every node's summary.
    ///
    /// `P: Send` (and `P::Message: Send`) because threaded executors move each
    /// node's state into its own worker thread; the simulator ignores it.
    fn execute<P: Summarize + Send>(
        &mut self,
        phase: Phase<P>,
        spec: PhaseExecSpec,
    ) -> Result<ExecutedPhase<P::Summary>, Self::Error>
    where
        P::Message: Wire + Send;
}

/// The lockstep simulator behind the [`PhaseExecutor`] seam.
///
/// [`crate::OverlayBuilder::build_over`] with this executor constructs the
/// same overlay as [`crate::OverlayBuilder::build`]; it exists so the
/// simulator is *a* backend on equal footing with the socket-backed ones, and
/// serves as the model the `overlay-net` equivalence tests compare against.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimExecutor {
    /// Within-round parallelism policy (bitwise identical at any worker count).
    pub parallelism: ParallelismConfig,
    /// Metrics-retention mode for each phase's simulator.
    pub metrics_mode: MetricsMode,
}

impl PhaseExecutor for SimExecutor {
    type Error = std::convert::Infallible;

    fn execute<P: Summarize + Send>(
        &mut self,
        phase: Phase<P>,
        spec: PhaseExecSpec,
    ) -> Result<ExecutedPhase<P::Summary>, Self::Error>
    where
        P::Message: Wire + Send,
    {
        let (_, nodes, _, faults) = phase.into_parts();
        let config = SimConfig::ncc0_capped(spec.ncc0_cap, spec.seed, faults)
            .with_parallelism(self.parallelism)
            .with_metrics_mode(self.metrics_mode);
        let run = run_phase(nodes, config, spec.budget, spec.transport, None);
        Ok(ExecutedPhase {
            summaries: run.nodes.iter().map(Summarize::summarize).collect(),
            alive: run.alive,
            rounds: run.outcome.rounds,
            all_done: run.outcome.all_done,
            delivered: run.metrics.total_delivered(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(T::decode(&mut slice).unwrap(), value);
        assert!(slice.is_empty());
    }

    #[test]
    fn summaries_round_trip() {
        round_trip(ExpanderSummary {
            id: NodeId::new(3),
            slots: vec![NodeId::new(1), NodeId::new(3), NodeId::new(7)],
        });
        round_trip(BfsSummary {
            id: NodeId::new(5),
            root: NodeId::new(0),
            parent: NodeId::new(2),
            children: vec![NodeId::new(9)],
        });
        round_trip(BinarizeSummary {
            id: NodeId::new(4),
            new_parent: NodeId::new(1),
        });
    }

    #[test]
    fn node_summaries_digest_the_accessors() {
        let b = BinarizeNode::new(NodeId::new(2), NodeId::new(1), vec![NodeId::new(3)]);
        let s = b.summarize();
        assert_eq!(s.id, NodeId::new(2));
        assert_eq!(s.new_parent, b.new_parent());
    }
}
