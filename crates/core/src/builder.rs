//! The high-level construction pipeline (Theorem 1.1).
//!
//! [`OverlayBuilder`] composes the three distributed phases — `CreateExpander`, BFS,
//! and tree binarization — into a single call that takes an arbitrary weakly connected
//! constant-degree knowledge graph and returns a [`WellFormedTree`], together with the
//! model-level costs (rounds per phase and message statistics) the paper's theorems
//! bound.

use crate::bfs::BfsNode;
use crate::expander::ExpanderNode;
use crate::wellformed::{BinarizeNode, WellFormedTree};
use crate::{benign, ExpanderParams, OverlayError};
use overlay_graph::{analysis, DiGraph, NodeId, UGraph};
use overlay_netsim::{CapacityModel, RunMetrics, SimConfig, Simulator};

/// Round counts of the three phases of the pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundBreakdown {
    /// Rounds of the `CreateExpander` phase (intro round + `L·(ℓ+1)` + 1).
    pub construction: usize,
    /// Rounds of the BFS phase.
    pub bfs: usize,
    /// Rounds of the binarization phase.
    pub finalize: usize,
}

impl RoundBreakdown {
    /// Total number of rounds across all phases.
    pub fn total(&self) -> usize {
        self.construction + self.bfs + self.finalize
    }
}

/// Aggregated message statistics across all phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// The largest number of messages any node sent or received in any single round.
    pub max_per_node_per_round: usize,
    /// The largest total number of messages any single node sent over the whole run.
    pub max_total_per_node: u64,
    /// Total messages delivered.
    pub total_delivered: u64,
    /// Messages dropped at receivers (should be zero when the parameters are adequate).
    pub dropped_receive: u64,
    /// Messages dropped at senders (should be zero).
    pub dropped_send: u64,
}

impl MessageStats {
    fn absorb(&mut self, metrics: &RunMetrics) {
        self.max_per_node_per_round = self
            .max_per_node_per_round
            .max(metrics.max_sent_in_any_round())
            .max(metrics.max_received_in_any_round());
        // Totals per node add up across phases; take the max over nodes of the sums.
        self.total_delivered += metrics.total_delivered();
        self.dropped_receive += metrics.total_dropped_receive();
        self.dropped_send += metrics.total_dropped_send();
    }
}

/// The output of the construction pipeline.
#[derive(Clone, Debug)]
pub struct OverlayResult {
    /// The final evolution graph `G_L` (an expander of degree Δ, including self-loops).
    pub expander: UGraph,
    /// The BFS tree on `G_L` (parents before binarization).
    pub bfs_parents: Vec<NodeId>,
    /// The well-formed tree (constant degree, low diameter).
    pub tree: WellFormedTree,
    /// Round counts per phase.
    pub rounds: RoundBreakdown,
    /// Message statistics across all phases.
    pub messages: MessageStats,
}

/// Builds well-formed trees from arbitrary weakly connected constant-degree graphs by
/// running the paper's pipeline in the simulated NCC0 model.
///
/// # Example
///
/// ```
/// use overlay_core::{ExpanderParams, OverlayBuilder};
/// use overlay_graph::generators;
///
/// let g = generators::cycle(64);
/// let params = ExpanderParams::for_n(64).with_seed(7);
/// let result = OverlayBuilder::new(params).build(&g).unwrap();
/// assert!(result.tree.is_valid());
/// assert!(result.tree.max_degree() <= 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct OverlayBuilder {
    params: ExpanderParams,
}

impl OverlayBuilder {
    /// Creates a builder with the given parameters.
    pub fn new(params: ExpanderParams) -> Self {
        OverlayBuilder { params }
    }

    /// The builder's parameters.
    pub fn params(&self) -> &ExpanderParams {
        &self.params
    }

    /// Runs the full pipeline on the knowledge graph `g`.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::InvalidParams`] if the parameters are inconsistent,
    /// * [`OverlayError::EmptyGraph`] / [`OverlayError::Disconnected`] for unusable
    ///   inputs,
    /// * [`OverlayError::DegreeTooLarge`] if the initial degree is too large for the
    ///   NCC0 pipeline,
    /// * [`OverlayError::PhaseIncomplete`] if a phase exceeds its round budget (does not
    ///   happen w.h.p. with the default parameters).
    pub fn build(&self, g: &DiGraph) -> Result<OverlayResult, OverlayError> {
        let params = self.params;
        params.validate().map_err(OverlayError::InvalidParams)?;
        if g.node_count() == 0 {
            return Err(OverlayError::EmptyGraph);
        }
        if !analysis::is_connected(&g.to_undirected()) {
            return Err(OverlayError::Disconnected);
        }
        // Validates the degree precondition; the protocol nodes recompute their slots
        // locally during the run.
        benign::make_benign(g, &params)?;

        let n = g.node_count();
        let mut messages = MessageStats::default();
        let mut total_sent_per_node = vec![0u64; n];

        // Phase 1: CreateExpander.
        let expander_nodes: Vec<ExpanderNode> = g
            .nodes()
            .map(|v| {
                let mut out: Vec<NodeId> = g.out_neighbors(v).to_vec();
                out.sort_unstable();
                out.dedup();
                ExpanderNode::new(v, out, params)
            })
            .collect();
        let config = SimConfig {
            caps: CapacityModel::Ncc0 {
                per_round: params.ncc0_cap,
            },
            seed: params.seed,
            local_edges: None,
        };
        let mut sim = Simulator::new(expander_nodes, config);
        let budget = ExpanderNode::total_rounds(&params) + 2;
        let outcome = sim.run(budget);
        if !outcome.all_done {
            return Err(OverlayError::PhaseIncomplete {
                phase: "create-expander",
                budget,
            });
        }
        let construction_rounds = outcome.rounds;
        messages.absorb(sim.metrics());
        for (i, s) in sim.metrics().total_sent_per_node.iter().enumerate() {
            total_sent_per_node[i] += s;
        }
        let nodes = sim.into_nodes();
        let expander = slots_to_graph(&nodes);

        // Phase 2: BFS on the expander.
        let bfs_nodes: Vec<BfsNode> = expander
            .nodes()
            .map(|v| BfsNode::new(v, expander.distinct_neighbors(v), params.bfs_rounds))
            .collect();
        let config = SimConfig {
            caps: CapacityModel::Ncc0 {
                per_round: params.ncc0_cap,
            },
            seed: params.seed.wrapping_add(1),
            local_edges: None,
        };
        let mut sim = Simulator::new(bfs_nodes, config);
        let budget = BfsNode::total_rounds(params.bfs_rounds) + 1;
        let outcome = sim.run(budget);
        if !outcome.all_done {
            return Err(OverlayError::PhaseIncomplete { phase: "bfs", budget });
        }
        let bfs_rounds = outcome.rounds;
        messages.absorb(sim.metrics());
        for (i, s) in sim.metrics().total_sent_per_node.iter().enumerate() {
            total_sent_per_node[i] += s;
        }
        let bfs = sim.into_nodes();
        let root = bfs[0].root();
        for node in &bfs {
            if node.root() != root || (node.id() != root && node.parent() == node.id()) {
                return Err(OverlayError::PhaseIncomplete {
                    phase: "bfs-convergence",
                    budget,
                });
            }
        }
        let bfs_parents: Vec<NodeId> = bfs.iter().map(BfsNode::parent).collect();

        // Phase 3: binarization into a well-formed tree.
        let bin_nodes: Vec<BinarizeNode> = bfs
            .iter()
            .map(|b| BinarizeNode::new(b.id(), b.parent(), b.children().to_vec()))
            .collect();
        let config = SimConfig {
            caps: CapacityModel::Ncc0 {
                per_round: params.ncc0_cap,
            },
            seed: params.seed.wrapping_add(2),
            local_edges: None,
        };
        let mut sim = Simulator::new(bin_nodes, config);
        let budget = BinarizeNode::total_rounds() + 1;
        let outcome = sim.run(budget);
        if !outcome.all_done {
            return Err(OverlayError::PhaseIncomplete {
                phase: "binarize",
                budget,
            });
        }
        let finalize_rounds = outcome.rounds;
        messages.absorb(sim.metrics());
        for (i, s) in sim.metrics().total_sent_per_node.iter().enumerate() {
            total_sent_per_node[i] += s;
        }
        let parents: Vec<NodeId> = sim.nodes().iter().map(BinarizeNode::new_parent).collect();
        let tree = WellFormedTree::from_parents(parents);

        messages.max_total_per_node = total_sent_per_node.iter().copied().max().unwrap_or(0);
        Ok(OverlayResult {
            expander,
            bfs_parents,
            tree,
            rounds: RoundBreakdown {
                construction: construction_rounds,
                bfs: bfs_rounds,
                finalize: finalize_rounds,
            },
            messages,
        })
    }
}

/// Reconstructs the final evolution graph from the per-node slot lists.
fn slots_to_graph(nodes: &[ExpanderNode]) -> UGraph {
    let mut g = UGraph::new(nodes.len());
    for node in nodes {
        let v = node.id();
        for &w in node.slots() {
            if w == v {
                g.add_self_loop(v);
            } else if w > v {
                g.add_edge(v, w);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;
    use overlay_netsim::caps::log2_ceil;

    fn build(g: &DiGraph, seed: u64) -> OverlayResult {
        let params = ExpanderParams::for_n(g.node_count())
            .with_seed(seed)
            .with_walk_len(12);
        OverlayBuilder::new(params).build(g).expect("pipeline must succeed")
    }

    #[test]
    fn line_becomes_well_formed_tree() {
        let n = 128;
        let result = build(&generators::line(n), 21);
        assert!(result.tree.is_valid());
        assert_eq!(result.tree.node_count(), n);
        assert!(result.tree.max_degree() <= 4);
        let log_n = log2_ceil(n);
        assert!(
            result.tree.height() <= 4 * log_n * log2_ceil(log_n).max(1),
            "height {} too large",
            result.tree.height()
        );
        assert_eq!(result.messages.dropped_receive, 0);
        assert_eq!(result.messages.dropped_send, 0);
    }

    #[test]
    fn rounds_are_logarithmic_in_n() {
        let n = 64;
        let result = build(&generators::cycle(n), 3);
        let params = ExpanderParams::for_n(n);
        // The round count is determined by the parameter schedule, all Θ(log n).
        assert_eq!(
            result.rounds.construction,
            ExpanderNode::total_rounds(&ExpanderParams::for_n(n).with_walk_len(12))
        );
        assert_eq!(result.rounds.bfs, params.bfs_rounds + 1);
        assert_eq!(result.rounds.finalize, 1);
        assert_eq!(
            result.rounds.total(),
            result.rounds.construction + result.rounds.bfs + result.rounds.finalize
        );
    }

    #[test]
    fn message_bounds_hold() {
        let n = 128;
        let result = build(&generators::binary_tree(n), 5);
        let params = ExpanderParams::for_n(n);
        assert!(result.messages.max_per_node_per_round <= params.ncc0_cap);
        // O(log^2 n) total messages per node, with a generous constant.
        let log_n = log2_ceil(n) as u64;
        assert!(
            result.messages.max_total_per_node <= 40 * log_n * log_n,
            "total per-node messages {} exceed O(log^2 n)",
            result.messages.max_total_per_node
        );
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let g = generators::disjoint_union(&[generators::line(8), generators::line(8)]);
        let params = ExpanderParams::for_n(16);
        assert_eq!(
            OverlayBuilder::new(params).build(&g).unwrap_err(),
            OverlayError::Disconnected
        );
    }

    #[test]
    fn rejects_empty_and_high_degree_graphs() {
        let params = ExpanderParams::for_n(8);
        assert_eq!(
            OverlayBuilder::new(params).build(&DiGraph::new(0)).unwrap_err(),
            OverlayError::EmptyGraph
        );
        let star = generators::star(64);
        let params = ExpanderParams::for_n(64);
        assert!(matches!(
            OverlayBuilder::new(params).build(&star).unwrap_err(),
            OverlayError::DegreeTooLarge { .. }
        ));
    }

    #[test]
    fn bfs_parents_form_spanning_tree_of_expander() {
        let n = 96;
        let result = build(&generators::cycle(n), 9);
        let simple = result.expander.simplify();
        assert!(analysis::is_spanning_tree(&simple, &result.bfs_parents));
    }
}
