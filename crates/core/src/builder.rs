//! The high-level construction pipeline (Theorem 1.1).
//!
//! [`OverlayBuilder`] composes the three distributed phases — `CreateExpander`, BFS,
//! and tree binarization — into a single call that takes an arbitrary weakly connected
//! constant-degree knowledge graph and returns a [`WellFormedTree`], together with the
//! model-level costs (rounds per phase and message statistics) the paper's theorems
//! bound.
//!
//! Two entry points exist:
//!
//! * [`OverlayBuilder::build`] — the paper's setting: a clean network; any phase
//!   failure is an [`OverlayError`].
//! * [`OverlayBuilder::build_under_faults`] — the same pipeline run against a
//!   [`FaultPlan`]; phase failures, crashed nodes and stragglers are *surfaced* in a
//!   [`BuildReport`] instead of erased into an error, so experiments can measure how
//!   much of the overlay still forms under churn. If the surviving overlay fragments
//!   after construction, the pipeline continues on the largest connected component
//!   (the "core") and reports the fragmentation honestly.
//!
//! Both entry points are thin facades over the first-class phase pipeline of
//! [`crate::pipeline`]: each paper phase is a [`Phase`] value executed by a shared
//! [`PhaseRunner`], and only the typed hand-offs between stages (survivor-core
//! extraction, BFS convergence, tree validation) live here. Budgets and transports
//! resolve per phase — see [`PhaseOverrides`] and the
//! [`OverlayBuilder::with_phase_overrides`] family.

use crate::bfs::BfsNode;
use crate::expander::ExpanderNode;
use crate::pipeline::{Phase, PhaseId, PhaseOverrides, PhaseRunner, TransportChoice};
use crate::seam::{PhaseExecSpec, PhaseExecutor};
use crate::wellformed::{BinarizeNode, WellFormedTree};
use crate::{benign, ExpanderParams, OverlayError, RoundBudget};
use overlay_graph::{analysis, DiGraph, NodeId, UGraph};
use overlay_netsim::faults::{CrashEvent, FaultPlan, Partition};
use overlay_netsim::trace::SharedTraceSink;
use overlay_netsim::{MetricsMode, ParallelismConfig, RunMetrics, TransportConfig};
use std::collections::BTreeMap;

/// Round counts of the three phases of the pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundBreakdown {
    /// Rounds of the `CreateExpander` phase (intro round + `L·(ℓ+1)` + 1).
    pub construction: usize,
    /// Rounds of the BFS phase.
    pub bfs: usize,
    /// Rounds of the binarization phase.
    pub finalize: usize,
}

impl RoundBreakdown {
    /// Total number of rounds across all phases.
    pub fn total(&self) -> usize {
        self.construction + self.bfs + self.finalize
    }
}

/// Aggregated message statistics across all phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// The largest number of messages any node sent or received in any single round.
    pub max_per_node_per_round: usize,
    /// The largest total number of messages any single node sent over the whole run.
    pub max_total_per_node: u64,
    /// Total messages delivered.
    pub total_delivered: u64,
    /// Messages dropped at receivers (should be zero when the parameters are adequate).
    pub dropped_receive: u64,
    /// Messages dropped at senders (should be zero).
    pub dropped_send: u64,
    /// Messages lost to injected faults (random loss + partitions), zero in clean runs.
    pub dropped_fault: u64,
    /// Messages addressed to crashed or not-yet-joined nodes, zero in clean runs.
    pub dropped_offline: u64,
    /// Messages that suffered an injected delivery delay, zero in clean runs.
    pub delayed: u64,
    /// Transport-layer retransmissions, zero unless the pipeline ran over
    /// [`OverlayBuilder::with_reliable_transport`].
    pub retransmits: u64,
    /// Transport-layer acknowledgment messages, zero without the reliable layer.
    pub acks: u64,
    /// Duplicate payloads the transport layer suppressed, zero without it.
    pub dupes_dropped: u64,
}

impl MessageStats {
    pub(crate) fn absorb(&mut self, metrics: &RunMetrics) {
        self.max_per_node_per_round = self
            .max_per_node_per_round
            .max(metrics.max_sent_in_any_round())
            .max(metrics.max_received_in_any_round());
        // Totals per node add up across phases; take the max over nodes of the sums.
        self.total_delivered += metrics.total_delivered();
        self.dropped_receive += metrics.total_dropped_receive();
        self.dropped_send += metrics.total_dropped_send();
        self.dropped_fault += metrics.total_dropped_fault() + metrics.total_dropped_partition();
        self.dropped_offline += metrics.total_dropped_offline();
        self.delayed += metrics.total_delayed();
        self.retransmits += metrics.total_retransmits();
        self.acks += metrics.total_acks();
        self.dupes_dropped += metrics.total_dupes_dropped();
    }
}

/// The output of the construction pipeline.
#[derive(Clone, Debug)]
pub struct OverlayResult {
    /// The final evolution graph `G_L` (an expander of degree Δ, including self-loops).
    /// Under faults this covers the core nodes only (see
    /// [`BuildReport::survivor_ids`]) and dead nodes' edges are pruned.
    pub expander: UGraph,
    /// The BFS tree on `G_L` (parents before binarization).
    pub bfs_parents: Vec<NodeId>,
    /// The well-formed tree (constant degree, low diameter).
    pub tree: WellFormedTree,
    /// Round counts per phase.
    pub rounds: RoundBreakdown,
    /// Message statistics across all phases.
    pub messages: MessageStats,
}

/// How one simulated phase of the pipeline ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// The phase terminated within its round budget.
    Completed {
        /// Rounds the phase executed.
        rounds: usize,
    },
    /// The phase exhausted its budget with nodes still running (or left the
    /// surviving nodes unconverged).
    Stalled {
        /// Rounds the phase executed.
        rounds: usize,
        /// The budget that was exhausted.
        budget: usize,
        /// Nodes that did finish (crashed nodes count as finished).
        nodes_done: usize,
        /// Nodes the phase simulated.
        nodes_total: usize,
    },
    /// The surviving overlay split into several components after construction; the
    /// pipeline continued on the largest one.
    Fragmented {
        /// Number of connected components among the survivors.
        components: usize,
        /// Size of the largest component (the core the pipeline continues with).
        core_size: usize,
    },
}

impl PhaseOutcome {
    /// `true` for [`PhaseOutcome::Stalled`].
    pub fn is_stall(&self) -> bool {
        matches!(self, PhaseOutcome::Stalled { .. })
    }
}

/// Everything a fault-injected pipeline run reveals: per-phase outcomes, the overlay
/// that did form (if any), and who survived.
///
/// Produced by [`OverlayBuilder::build_under_faults`]. Input-validation problems
/// (bad parameters, empty/disconnected/over-degree graphs, fault plans referencing
/// missing nodes) are still hard [`OverlayError`]s — a report is only produced once
/// the pipeline actually runs.
#[derive(Clone, Debug)]
pub struct BuildReport {
    /// The completed overlay over the core nodes, if every phase finished and the
    /// binarized parents formed a rooted tree.
    pub result: Option<OverlayResult>,
    /// One entry per phase event, in order: `create-expander`, then
    /// `survivor-connectivity` when fragmentation occurred, then `bfs` (completed
    /// its rounds), then `bfs-convergence` if the survivors did not agree on a
    /// root, then `binarize` on a binarization stall or `finalize` otherwise.
    pub phases: Vec<(&'static str, PhaseOutcome)>,
    /// Original identifiers of the core nodes; index `i` of the result's graphs is
    /// `survivor_ids[i]`. Equal to all nodes in a clean run.
    pub survivor_ids: Vec<NodeId>,
    /// Liveness of each core node at the very end of the pipeline (a node may crash
    /// after making it into the core). Empty if any phase before binarization
    /// stalled.
    pub alive_at_end: Vec<bool>,
    /// Whether the final tree is valid restricted to the nodes alive at the end
    /// (`false` whenever `result` is `None`).
    pub tree_valid_over_alive: bool,
    /// Rounds per phase (zero for phases that never ran).
    pub rounds: RoundBreakdown,
    /// Message statistics across the phases that ran.
    pub messages: MessageStats,
    /// Total crash events executed across all phases.
    pub crashed: usize,
    /// Total join events executed across all phases.
    pub joined: usize,
    /// Per-phase metric rollups (rounds, drops by cause, transport overhead,
    /// wall-clock), one entry per *simulated* phase in pipeline order — stalled
    /// phases included. See [`crate::pipeline::PhaseMetrics`].
    pub phase_metrics: Vec<crate::pipeline::PhaseMetrics>,
}

impl BuildReport {
    /// `true` if the pipeline produced a valid tree over the nodes alive at the end.
    pub fn is_success(&self) -> bool {
        self.result.is_some() && self.tree_valid_over_alive
    }

    /// Fraction of the initial `n` nodes covered by the final tree's alive nodes.
    pub fn coverage(&self, n: usize) -> f64 {
        if n == 0 || self.result.is_none() {
            return 0.0;
        }
        self.alive_at_end.iter().filter(|a| **a).count() as f64 / n as f64
    }

    /// The name of the first stalled phase, if any.
    pub fn stalled_phase(&self) -> Option<&'static str> {
        self.phases
            .iter()
            .find(|(_, o)| o.is_stall())
            .map(|(name, _)| *name)
    }
}

/// Builds well-formed trees from arbitrary weakly connected constant-degree graphs by
/// running the paper's pipeline in the simulated NCC0 model.
///
/// # Example
///
/// ```
/// use overlay_core::{ExpanderParams, OverlayBuilder};
/// use overlay_graph::generators;
///
/// let g = generators::cycle(64);
/// let params = ExpanderParams::for_n(64).with_seed(7);
/// let result = OverlayBuilder::new(params).build(&g).unwrap();
/// assert!(result.tree.is_valid());
/// assert!(result.tree.max_degree() <= 4);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct OverlayBuilder {
    params: ExpanderParams,
    round_budget: RoundBudget,
    transport: Option<TransportConfig>,
    phases: PhaseOverrides,
    parallelism: ParallelismConfig,
    metrics_mode: MetricsMode,
}

impl OverlayBuilder {
    /// Creates a builder with the given parameters and the clean round budget.
    pub fn new(params: ExpanderParams) -> Self {
        OverlayBuilder {
            params,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
            parallelism: ParallelismConfig::default(),
            metrics_mode: MetricsMode::Full,
        }
    }

    /// Returns the builder with the given within-round parallelism policy for
    /// every phase's simulator. Parallelism never changes what is built — runs
    /// are bitwise identical at any worker count — only how many threads step
    /// nodes within a round (see [`ParallelismConfig`]).
    pub fn with_parallelism(mut self, parallelism: ParallelismConfig) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The builder's within-round parallelism policy.
    pub fn parallelism(&self) -> ParallelismConfig {
        self.parallelism
    }

    /// Returns the builder with the given metrics-retention mode for every
    /// phase's simulator. [`MetricsMode::Rollup`] bounds memory on long,
    /// large-`n` runs; every total and peak the pipeline reports is
    /// mode-independent.
    pub fn with_metrics_mode(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }

    /// The builder's metrics-retention mode.
    pub fn metrics_mode(&self) -> MetricsMode {
        self.metrics_mode
    }

    /// Returns the builder with every phase's protocol running behind the
    /// reliable-delivery transport layer (`overlay_transport::Reliable`):
    /// per-peer sequence numbers, cumulative/selective acks, deterministic
    /// retransmission timers and duplicate suppression, configured by `config`.
    ///
    /// Transport traffic is subject to the same NCC0 caps as protocol traffic and
    /// is reported in [`MessageStats::retransmits`] / [`MessageStats::acks`] /
    /// [`MessageStats::dupes_dropped`]. On a fault-free network the layer is
    /// transparent: the constructed overlay is identical to the bare pipeline's
    /// (only acks are added on the wire). Under message loss it converts the
    /// paper's non-fault-tolerant one-shot sends into retried deliveries — phases
    /// may then legitimately need a few extra rounds for the retry round-trips, so
    /// lossy runs usually pair this with [`OverlayBuilder::with_round_budget`].
    pub fn with_reliable_transport(mut self, config: TransportConfig) -> Self {
        self.transport = Some(config);
        self
    }

    /// The reliable-transport configuration, if the builder uses one.
    pub fn transport(&self) -> Option<TransportConfig> {
        self.transport
    }

    /// Returns the builder with every phase's round budget scaled by `budget`.
    ///
    /// The clean schedule is exact for a fault-free network; faulty runs (jitter,
    /// late joins) can legitimately need more wall-rounds, and this declares that
    /// allowance instead of misreporting such runs as stalled.
    /// [`RoundBudget::STANDARD`] reproduces the historical budgets exactly.
    pub fn with_round_budget(mut self, budget: RoundBudget) -> Self {
        self.round_budget = budget;
        self
    }

    /// The builder's round-budget multiplier.
    pub fn round_budget(&self) -> RoundBudget {
        self.round_budget
    }

    /// Returns the builder with the given per-phase overrides installed. Unset
    /// entries inherit the builder-wide budget/transport, so
    /// [`PhaseOverrides::none`] reproduces builder-global behavior exactly.
    pub fn with_phase_overrides(mut self, overrides: PhaseOverrides) -> Self {
        self.phases = overrides;
        self
    }

    /// Returns the builder with `phase`'s round budget overridden (all other
    /// phases keep the builder-wide budget).
    pub fn with_phase_budget(mut self, phase: PhaseId, budget: RoundBudget) -> Self {
        self.phases = self.phases.with_budget(phase, budget);
        self
    }

    /// Returns the builder with `phase`'s transport overridden: forced bare, or
    /// forced behind the reliable layer, regardless of the builder-wide setting.
    pub fn with_phase_transport(mut self, phase: PhaseId, choice: TransportChoice) -> Self {
        self.phases = self.phases.with_transport(phase, choice);
        self
    }

    /// The builder's per-phase overrides.
    pub fn phase_overrides(&self) -> PhaseOverrides {
        self.phases
    }

    /// The builder's parameters.
    pub fn params(&self) -> &ExpanderParams {
        &self.params
    }

    /// Runs the full pipeline on the knowledge graph `g` in a clean network.
    ///
    /// # Errors
    ///
    /// * [`OverlayError::InvalidParams`] if the parameters are inconsistent,
    /// * [`OverlayError::EmptyGraph`] / [`OverlayError::Disconnected`] for unusable
    ///   inputs,
    /// * [`OverlayError::DegreeTooLarge`] if the initial degree is too large for the
    ///   NCC0 pipeline,
    /// * [`OverlayError::PhaseIncomplete`] if a phase exceeds its round budget (does not
    ///   happen w.h.p. with the default parameters),
    /// * [`OverlayError::Fragmented`] if the survivors split into several components,
    ///   so the strict every-node contract of the clean path cannot hold (w.h.p. this
    ///   requires injected faults, which [`OverlayBuilder::build_under_faults`]
    ///   reports instead of erroring),
    /// * [`OverlayError::FinalizeFailed`] if every phase ran but the binarized
    ///   parents did not form a single valid rooted tree.
    pub fn build(&self, g: &DiGraph) -> Result<OverlayResult, OverlayError> {
        let report = self.build_under_faults(g, &FaultPlan::default())?;
        match report.result {
            // The clean path keeps the strict contract: the tree must contain every
            // node. A fragmented (partial-core) result — possible without faults only
            // when the w.h.p. connectivity of G_L fails — is an error here, not a
            // silently smaller tree.
            Some(result)
                if report.survivor_ids.len() == g.node_count() && report.tree_valid_over_alive =>
            {
                Ok(result)
            }
            Some(_) if report.survivor_ids.len() != g.node_count() => {
                Err(fragmentation_error(&report))
            }
            Some(_) => Err(OverlayError::FinalizeFailed),
            None => Err(failure_error(&report)),
        }
    }

    /// Runs the full pipeline against the given [`FaultPlan`], reporting partial
    /// outcomes instead of erasing them into errors.
    ///
    /// The plan's timeline starts at the construction phase's round 0 and spans the
    /// whole pipeline: events scheduled beyond a phase's end carry over (shifted) into
    /// the following phases. Joins must land within the construction schedule: the
    /// simulation waits for every scheduled joiner, so a join beyond the construction
    /// budget stalls that phase (reported as `create-expander` Stalled). Joins never
    /// carry over into BFS/binarization — a node that joined too late to make the
    /// core missed the overlay and stays offline there.
    ///
    /// # Errors
    ///
    /// Only input-validation failures ([`OverlayError::InvalidParams`],
    /// [`OverlayError::EmptyGraph`], [`OverlayError::Disconnected`],
    /// [`OverlayError::DegreeTooLarge`]); everything that happens *during* the run is
    /// reported in the returned [`BuildReport`].
    pub fn build_under_faults(
        &self,
        g: &DiGraph,
        faults: &FaultPlan,
    ) -> Result<BuildReport, OverlayError> {
        self.build_with(g, faults, None)
    }

    /// [`OverlayBuilder::build_under_faults`] with a trace sink observing the run:
    /// every phase's simulator streams its structured events (round boundaries,
    /// drops with cause and edge, crashes/joins, transport activity) into `sink`,
    /// bracketed by phase markers. The run itself is byte-identical to an
    /// untraced run of the same inputs.
    ///
    /// # Errors
    ///
    /// Exactly as [`OverlayBuilder::build_under_faults`].
    pub fn build_under_faults_traced(
        &self,
        g: &DiGraph,
        faults: &FaultPlan,
        sink: SharedTraceSink,
    ) -> Result<BuildReport, OverlayError> {
        self.build_with(g, faults, Some(sink))
    }

    /// Runs the clean-path pipeline over a pluggable [`PhaseExecutor`] instead
    /// of calling the simulator directly.
    ///
    /// The builder still owns everything *above* the execution medium — input
    /// validation, phase construction, per-phase seed/budget/transport
    /// resolution (identical to [`OverlayBuilder::build`]'s), and the typed
    /// hand-offs between stages — while the executor owns the medium: the
    /// lockstep simulator ([`crate::seam::SimExecutor`]), threads over
    /// in-process channels, or TCP sockets across OS processes (the
    /// `overlay-net` crate). Hand-offs are computed from per-node
    /// [`crate::seam::Summarize`] digests, which is what lets a multi-process
    /// executor participate: every process exchanges summaries at phase
    /// boundaries and re-derives the identical hand-off decisions locally.
    ///
    /// This entry point is clean-path only (no [`FaultPlan`]): socket backends
    /// experience *real* asynchrony and failures rather than injected ones.
    /// Per seed, an executor that replicates the simulator's delivery order
    /// and RNG seeding produces the same [`OverlayResult`] as
    /// [`OverlayBuilder::build`], except that [`OverlayResult::messages`]
    /// carries only the executor-counted
    /// [`MessageStats::total_delivered`] (the per-round peaks are simulator
    /// bookkeeping no socket backend can observe).
    ///
    /// # Errors
    ///
    /// Everything [`OverlayBuilder::build`] reports, plus
    /// [`OverlayError::Backend`] when the executor fails below the protocol
    /// layer (a peer process died, a connection broke, a frame failed to
    /// decode).
    pub fn build_over<E: PhaseExecutor>(
        &self,
        g: &DiGraph,
        exec: &mut E,
    ) -> Result<OverlayResult, OverlayError> {
        let params = self.params;
        params.validate().map_err(OverlayError::InvalidParams)?;
        let n = g.node_count();
        if n == 0 {
            return Err(OverlayError::EmptyGraph);
        }
        if !analysis::is_connected(&g.to_undirected()) {
            return Err(OverlayError::Disconnected);
        }
        benign::make_benign(g, &params)?;

        // Identical resolution to PhaseRunner::run: per-phase seed offset,
        // override-or-default budget scaled by the clean schedule, and the
        // override-or-default transport.
        let spec = |id: PhaseId, clean_rounds: usize| PhaseExecSpec {
            seed: params.seed.wrapping_add(id.index() as u64),
            ncc0_cap: params.ncc0_cap,
            budget: self
                .phases
                .budget(id)
                .unwrap_or(self.round_budget)
                .apply(clean_rounds),
            transport: match self.phases.transport(id) {
                None => self.transport,
                Some(TransportChoice::Bare) => None,
                Some(TransportChoice::Reliable(config)) => Some(config),
            },
        };
        let backend = |e: E::Error| OverlayError::Backend(e.to_string());

        let mut rounds = RoundBreakdown::default();
        let mut messages = MessageStats::default();

        // Phase 1: CreateExpander over all n nodes.
        let phase = Phase::create_expander(g, &params, FaultPlan::default());
        let spec1 = spec(PhaseId::CreateExpander, phase.clean_rounds());
        let run1 = exec.execute(phase, spec1).map_err(backend)?;
        rounds.construction = run1.rounds;
        messages.total_delivered += run1.delivered;
        if !run1.all_done {
            return Err(OverlayError::PhaseIncomplete {
                phase: PhaseId::CreateExpander.name(),
                budget: spec1.budget,
            });
        }

        // Hand-off 1: the survivor-induced final evolution graph, from the
        // per-node slot summaries (the same computation build_with performs on
        // full protocol states).
        let alive1 = run1.alive;
        let survivors: Vec<usize> = (0..n).filter(|&i| alive1[i]).collect();
        let slots = SlotEdges::collect_from(
            run1.summaries
                .iter()
                .map(|s| (s.id.index(), s.slots.as_slice())),
            &alive1,
        );
        let full = slots.survivor_graph();
        let comps = analysis::connected_components(&full.simplify());
        let mut sizes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &v in &survivors {
            *sizes.entry(comps.label(NodeId::from(v))).or_insert(0) += 1;
        }
        let component_count = sizes.len();
        let Some((&core_comp, &core_size)) =
            sizes.iter().max_by_key(|&(&comp, &size)| (size, comp))
        else {
            return Err(OverlayError::Fragmented {
                components: 0,
                core_size: 0,
            });
        };
        let core_old_ids: Vec<usize> = survivors
            .into_iter()
            .filter(|&v| comps.label(NodeId::from(v)) == core_comp)
            .collect();
        if core_old_ids.len() != n {
            // The strict clean-path contract: the tree must contain every node.
            return Err(OverlayError::Fragmented {
                components: component_count,
                core_size,
            });
        }
        let mut old_to_new = vec![None; n];
        for (new, &old) in core_old_ids.iter().enumerate() {
            old_to_new[old] = Some(new);
        }
        let expander = slots.remapped(&core_old_ids, &old_to_new);

        // Phase 2: BFS on the expander.
        let phase = Phase::bfs(&expander, &params, FaultPlan::default());
        let spec2 = spec(PhaseId::Bfs, phase.clean_rounds());
        let run2 = exec.execute(phase, spec2).map_err(backend)?;
        rounds.bfs = run2.rounds;
        messages.total_delivered += run2.delivered;
        if !run2.all_done {
            return Err(OverlayError::PhaseIncomplete {
                phase: PhaseId::Bfs.name(),
                budget: spec2.budget,
            });
        }

        // Hand-off 2: convergence — one shared root, no self-parents.
        let alive2 = run2.alive;
        let bfs = run2.summaries;
        let root = bfs
            .iter()
            .enumerate()
            .find(|(i, _)| alive2[*i])
            .map(|(_, b)| b.root);
        let converged = match root {
            None => false,
            Some(root) => bfs.iter().enumerate().all(|(i, node)| {
                !alive2[i] || (node.root == root && (node.id == root || node.parent != node.id))
            }),
        };
        if !converged {
            return Err(OverlayError::PhaseIncomplete {
                phase: "bfs-convergence",
                budget: spec2.budget,
            });
        }
        let bfs_parents: Vec<NodeId> = bfs.iter().map(|b| b.parent).collect();

        // Phase 3: binarization, constructed from the BFS summaries exactly as
        // Phase::binarize constructs it from the BFS protocol states.
        let nodes: Vec<BinarizeNode> = bfs
            .iter()
            .map(|b| BinarizeNode::new(b.id, b.parent, b.children.clone()))
            .collect();
        let phase = Phase::from_parts(
            PhaseId::Binarize,
            nodes,
            BinarizeNode::total_rounds() + 1,
            FaultPlan::default(),
        );
        let spec3 = spec(PhaseId::Binarize, phase.clean_rounds());
        let run3 = exec.execute(phase, spec3).map_err(backend)?;
        rounds.finalize = run3.rounds;
        messages.total_delivered += run3.delivered;
        if !run3.all_done {
            return Err(OverlayError::PhaseIncomplete {
                phase: PhaseId::Binarize.name(),
                budget: spec3.budget,
            });
        }

        // Hand-off 3: the finalize validation judges binarization's success.
        let alive3 = run3.alive;
        let parents: Vec<NodeId> = run3.summaries.iter().map(|s| s.new_parent).collect();
        match WellFormedTree::from_parents_over(parents, &alive3) {
            Some(tree) if tree.is_valid_over(&alive3) => Ok(OverlayResult {
                expander,
                bfs_parents,
                tree,
                rounds,
                messages,
            }),
            _ => Err(OverlayError::FinalizeFailed),
        }
    }

    fn build_with(
        &self,
        g: &DiGraph,
        faults: &FaultPlan,
        sink: Option<SharedTraceSink>,
    ) -> Result<BuildReport, OverlayError> {
        let params = self.params;
        params.validate().map_err(OverlayError::InvalidParams)?;
        let n = g.node_count();
        if n == 0 {
            return Err(OverlayError::EmptyGraph);
        }
        if !analysis::is_connected(&g.to_undirected()) {
            return Err(OverlayError::Disconnected);
        }
        faults.validate(n).map_err(OverlayError::InvalidParams)?;
        // Validates the degree precondition; the protocol nodes recompute their slots
        // locally during the run.
        benign::make_benign(g, &params)?;

        let mut runner =
            PhaseRunner::new(n, &params, self.round_budget, self.transport, self.phases);
        runner.set_parallelism(self.parallelism);
        runner.set_metrics_mode(self.metrics_mode);
        if let Some(sink) = sink {
            runner.set_trace_sink(sink);
        }

        // Phase 1: CreateExpander over all n nodes (joiners included; the fault
        // router keeps them dormant until their join round).
        let Ok(construction) = runner.run(Phase::create_expander(g, &params, faults.clone()))
        else {
            return Ok(runner.into_report());
        };
        let alive1 = construction.alive;

        // Hand-off 1: the survivor-induced final evolution graph; edges into dead
        // nodes dangle and are pruned. If the survivors fragment, continue on the
        // largest component — the "core" — and report the fragmentation.
        let survivors: Vec<usize> = (0..n).filter(|&i| alive1[i]).collect();
        let slots = SlotEdges::collect(&construction.nodes, &alive1);
        let full = slots.survivor_graph();
        let comps = analysis::connected_components(&full.simplify());
        let mut sizes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for &v in &survivors {
            *sizes.entry(comps.label(NodeId::from(v))).or_insert(0) += 1;
        }
        let component_count = sizes.len();
        let Some((&core_comp, &core_size)) =
            sizes.iter().max_by_key(|&(&comp, &size)| (size, comp))
        else {
            // Everyone crashed during construction.
            runner.fragmented(0, 0);
            return Ok(runner.into_report());
        };
        if component_count > 1 {
            runner.fragmented(component_count, core_size);
        }
        let core_old_ids: Vec<usize> = survivors
            .into_iter()
            .filter(|&v| comps.label(NodeId::from(v)) == core_comp)
            .collect();
        let mut old_to_new = vec![None; n];
        for (new, &old) in core_old_ids.iter().enumerate() {
            old_to_new[old] = Some(new);
        }
        let m = core_old_ids.len();
        runner.adopt_core(&core_old_ids);
        let expander = slots.remapped(&core_old_ids, &old_to_new);

        // Phase 2: BFS on the core expander, under the remainder of the fault plan.
        let offset1 = construction.rounds;
        let bfs_faults = remap_plan(&faults.shifted(offset1), &old_to_new);
        let Ok(bfs_run) = runner.run(Phase::bfs(&expander, &params, bfs_faults)) else {
            return Ok(runner.into_report());
        };
        let alive2 = bfs_run.alive;
        let bfs = bfs_run.nodes;

        // Hand-off 2: convergence among the nodes still alive — one shared root,
        // no self-parents.
        let root = bfs
            .iter()
            .enumerate()
            .find(|(i, _)| alive2[*i])
            .map(|(_, b)| b.root());
        let converged = match root {
            None => false,
            Some(root) => bfs.iter().enumerate().all(|(i, node)| {
                !alive2[i]
                    || (node.root() == root && (node.id() == root || node.parent() != node.id()))
            }),
        };
        if !converged {
            let agreeing = bfs
                .iter()
                .enumerate()
                .filter(|(i, b)| !alive2[*i] || Some(b.root()) == root)
                .count();
            runner.stall(
                "bfs-convergence",
                bfs_run.rounds,
                bfs_run.budget,
                agreeing,
                m,
            );
            return Ok(runner.into_report());
        }
        let bfs_parents: Vec<NodeId> = bfs.iter().map(BfsNode::parent).collect();

        // Phase 3: binarization into a well-formed tree.
        let offset2 = offset1 + bfs_run.rounds;
        let bin_faults = remap_plan(&faults.shifted(offset2), &old_to_new);
        let Ok(bin_run) = runner.run(Phase::binarize(&bfs, bin_faults)) else {
            return Ok(runner.into_report());
        };
        let alive3 = bin_run.alive;
        let parents: Vec<NodeId> = bin_run.nodes.iter().map(BinarizeNode::new_parent).collect();

        // Hand-off 3: the finalize validation judges binarization's success.
        let mut report = runner.into_report();
        match WellFormedTree::from_parents_over(parents, &alive3) {
            Some(tree) => {
                report.phases.push((
                    "finalize",
                    PhaseOutcome::Completed {
                        rounds: bin_run.rounds,
                    },
                ));
                report.tree_valid_over_alive = tree.is_valid_over(&alive3);
                report.alive_at_end = alive3;
                report.result = Some(OverlayResult {
                    expander,
                    bfs_parents,
                    tree,
                    rounds: report.rounds,
                    messages: report.messages,
                });
            }
            None => {
                report.phases.push((
                    "finalize",
                    PhaseOutcome::Stalled {
                        rounds: bin_run.rounds,
                        budget: bin_run.budget,
                        nodes_done: alive3.iter().filter(|a| **a).count(),
                        nodes_total: m,
                    },
                ));
                report.alive_at_end = alive3;
            }
        }
        Ok(report)
    }
}

/// Maps a result-less clean-path report to the honest error for its final phase
/// event: a budget stall is [`OverlayError::PhaseIncomplete`], but the `finalize`
/// event is a validation verdict (the binarization rounds completed; the parents
/// formed no valid rooted tree), so blaming its budget would be dishonest —
/// that is [`OverlayError::FinalizeFailed`]. Total fragmentation (every node
/// crashed) is the only way a result-less report ends on a non-stall event.
fn failure_error(report: &BuildReport) -> OverlayError {
    let (phase, outcome) = report
        .phases
        .last()
        .copied()
        .expect("a failed report names the failing phase");
    match outcome {
        PhaseOutcome::Stalled { .. } if phase == "finalize" => OverlayError::FinalizeFailed,
        PhaseOutcome::Stalled { budget, .. } => OverlayError::PhaseIncomplete { phase, budget },
        PhaseOutcome::Fragmented {
            components,
            core_size,
        } => OverlayError::Fragmented {
            components,
            core_size,
        },
        PhaseOutcome::Completed { .. } => {
            unreachable!("a completed final phase always carries a result")
        }
    }
}

/// Maps a partial-core clean-path report to the honest [`OverlayError::Fragmented`]:
/// the recorded `survivor-connectivity` event carries the component counts.
fn fragmentation_error(report: &BuildReport) -> OverlayError {
    report
        .phases
        .iter()
        .find_map(|(name, outcome)| match outcome {
            PhaseOutcome::Fragmented {
                components,
                core_size,
            } if *name == "survivor-connectivity" => Some(OverlayError::Fragmented {
                components: *components,
                core_size: *core_size,
            }),
            _ => None,
        })
        .expect("a partial core is always preceded by a fragmentation event")
}

/// `(smaller id, larger id) -> (multiplicity at smaller, multiplicity at larger)`.
type EdgeCounts = BTreeMap<(usize, usize), (usize, usize)>;

/// The alive-to-alive slot edges of the final evolution graph, collected in a single
/// pass over the protocol states and reused for both views the pipeline needs: the
/// survivor-connectivity graph (original ids) and the remapped core graph.
///
/// `build_under_faults` previously walked every node's slots twice per faulted build
/// — once per view; collecting once and deriving both halves that cost on the
/// fault-sweep hot path without changing either graph (see
/// [`SlotEdges::survivor_graph`] and [`SlotEdges::remapped`] for why the derived
/// views are identical to the two-pass ones).
struct SlotEdges {
    /// Undirected edge multiplicities between alive nodes, keyed by ordered id pair.
    pairs: EdgeCounts,
    /// Per-node self-loop counts (alive nodes only; dead nodes stay at zero).
    self_loops: Vec<usize>,
}

impl SlotEdges {
    /// Collects the slot edges among `alive` nodes, plus per-node self-loop counts.
    ///
    /// Under message loss an Accept can be dropped, leaving an edge in only one
    /// endpoint's slots; such half-acknowledged edges are *included* (one-sided
    /// knowledge suffices to re-establish contact in the NCC0 model), with the
    /// multiplicity the better-informed side holds — so the reconstruction depends on
    /// protocol state only, never on id order. Clean runs hold every edge
    /// symmetrically, and `max(k, k) == k` reproduces the exact fault-free graph.
    fn collect(nodes: &[ExpanderNode], alive: &[bool]) -> SlotEdges {
        SlotEdges::collect_from(nodes.iter().map(|n| (n.id().index(), n.slots())), alive)
    }

    /// [`SlotEdges::collect`] generalized over `(node index, slots)` pairs, so
    /// the same single pass also serves `build_over`'s hand-off, which sees
    /// per-node [`crate::seam::ExpanderSummary`] digests instead of protocol
    /// states.
    fn collect_from<'a>(
        nodes: impl Iterator<Item = (usize, &'a [NodeId])>,
        alive: &[bool],
    ) -> SlotEdges {
        let mut pairs: EdgeCounts = BTreeMap::new();
        let mut self_loops = vec![0usize; alive.len()];
        for (v, slots) in nodes {
            if !alive[v] {
                continue;
            }
            for &w in slots {
                let w = w.index();
                if w == v {
                    self_loops[v] += 1;
                } else if alive[w] {
                    let (key, side) = if v < w { ((v, w), 0) } else { ((w, v), 1) };
                    let entry = pairs.entry(key).or_insert((0, 0));
                    if side == 0 {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }
                }
            }
        }
        SlotEdges { pairs, self_loops }
    }

    /// The survivor-induced final evolution graph indexed by *original* ids; dead
    /// nodes stay as isolated vertices and edges into them are pruned.
    fn survivor_graph(&self) -> UGraph {
        let mut g = UGraph::new(self.self_loops.len());
        for (&(a, b), &(from_a, from_b)) in &self.pairs {
            for _ in 0..from_a.max(from_b) {
                g.add_edge(NodeId::from(a), NodeId::from(b));
            }
        }
        for (v, &loops) in self.self_loops.iter().enumerate() {
            for _ in 0..loops {
                g.add_self_loop(NodeId::from(v));
            }
        }
        g
    }

    /// The core subgraph reindexed to `0..core.len()`, with the same half-edge
    /// semantics as [`SlotEdges::survivor_graph`].
    ///
    /// Restricting the one collected edge set to the core is exactly the edge set a
    /// second collection pass over the core would produce: a core node's slot entries
    /// to non-core survivors form cross-component pairs — impossible, since the core
    /// is a connected component of the graph these very pairs induce — so for
    /// core-to-core pairs both multiplicities are untouched by the restriction, and
    /// self-loops only depend on the node itself being alive.
    fn remapped(&self, core: &[usize], old_to_new: &[Option<usize>]) -> UGraph {
        let mut g = UGraph::new(core.len());
        for (&(a, b), &(from_a, from_b)) in &self.pairs {
            let (Some(na), Some(nb)) = (old_to_new[a], old_to_new[b]) else {
                continue;
            };
            for _ in 0..from_a.max(from_b) {
                g.add_edge(NodeId::from(na), NodeId::from(nb));
            }
        }
        for &old in core {
            let v = old_to_new[old].expect("core nodes are mapped");
            for _ in 0..self.self_loops[old] {
                g.add_self_loop(NodeId::from(v));
            }
        }
        g
    }
}

/// Restricts a (already time-shifted) fault plan to the remapped core: events for
/// dead nodes disappear, joins are dropped entirely (nodes that had not joined by the
/// end of construction missed the overlay), and partitions keep only their core
/// members.
fn remap_plan(plan: &FaultPlan, old_to_new: &[Option<usize>]) -> FaultPlan {
    FaultPlan {
        drop_prob: plan.drop_prob,
        loss_from: plan.loss_from,
        delay: plan.delay,
        crashes: plan
            .crashes
            .iter()
            .filter_map(|c| {
                old_to_new[c.node.index()].map(|i| CrashEvent {
                    round: c.round,
                    node: NodeId::from(i),
                })
            })
            .collect(),
        joins: Vec::new(),
        partitions: plan
            .partitions
            .iter()
            .map(|p| Partition {
                from_round: p.from_round,
                heal_round: p.heal_round,
                side_a: p
                    .side_a
                    .iter()
                    .filter_map(|v| old_to_new[v.index()].map(NodeId::from))
                    .collect(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_graph::generators;
    use overlay_netsim::caps::log2_ceil;

    fn build(g: &DiGraph, seed: u64) -> OverlayResult {
        let params = ExpanderParams::for_n(g.node_count())
            .with_seed(seed)
            .with_walk_len(12);
        OverlayBuilder::new(params)
            .build(g)
            .expect("pipeline must succeed")
    }

    #[test]
    fn line_becomes_well_formed_tree() {
        let n = 128;
        let result = build(&generators::line(n), 21);
        assert!(result.tree.is_valid());
        assert_eq!(result.tree.node_count(), n);
        assert!(result.tree.max_degree() <= 4);
        let log_n = log2_ceil(n);
        assert!(
            result.tree.height() <= 4 * log_n * log2_ceil(log_n).max(1),
            "height {} too large",
            result.tree.height()
        );
        assert_eq!(result.messages.dropped_receive, 0);
        assert_eq!(result.messages.dropped_send, 0);
        assert_eq!(result.messages.dropped_fault, 0);
    }

    #[test]
    fn rounds_are_logarithmic_in_n() {
        let n = 64;
        let result = build(&generators::cycle(n), 3);
        let params = ExpanderParams::for_n(n);
        // The round count is determined by the parameter schedule, all Θ(log n).
        assert_eq!(
            result.rounds.construction,
            ExpanderNode::total_rounds(&ExpanderParams::for_n(n).with_walk_len(12))
        );
        assert_eq!(result.rounds.bfs, params.bfs_rounds + 1);
        assert_eq!(result.rounds.finalize, 1);
        assert_eq!(
            result.rounds.total(),
            result.rounds.construction + result.rounds.bfs + result.rounds.finalize
        );
    }

    #[test]
    fn message_bounds_hold() {
        let n = 128;
        let result = build(&generators::binary_tree(n), 5);
        let params = ExpanderParams::for_n(n);
        assert!(result.messages.max_per_node_per_round <= params.ncc0_cap);
        // O(log^2 n) total messages per node, with a generous constant.
        let log_n = log2_ceil(n) as u64;
        assert!(
            result.messages.max_total_per_node <= 40 * log_n * log_n,
            "total per-node messages {} exceed O(log^2 n)",
            result.messages.max_total_per_node
        );
    }

    #[test]
    fn build_over_sim_executor_matches_build() {
        use crate::seam::SimExecutor;
        for (g, seed) in [
            (generators::line(48), 3u64),
            (generators::binary_tree(96), 11),
        ] {
            let n = g.node_count();
            let params = ExpanderParams::for_n(n).with_seed(seed);
            let builder = OverlayBuilder::new(params);
            let direct = builder.build(&g).expect("build must succeed");
            let over = builder
                .build_over(&g, &mut SimExecutor::default())
                .expect("build_over must succeed");
            assert_eq!(over.expander.edge_count(), direct.expander.edge_count());
            for v in over.expander.nodes() {
                assert_eq!(over.expander.neighbors(v), direct.expander.neighbors(v));
            }
            assert_eq!(over.bfs_parents, direct.bfs_parents);
            assert_eq!(over.tree.node_count(), direct.tree.node_count());
            for v in (0..over.tree.node_count()).map(NodeId::from) {
                assert_eq!(over.tree.parent(v), direct.tree.parent(v));
            }
            assert_eq!(over.rounds.construction, direct.rounds.construction);
            assert_eq!(over.rounds.bfs, direct.rounds.bfs);
            assert_eq!(over.rounds.finalize, direct.rounds.finalize);
            assert_eq!(
                over.messages.total_delivered,
                direct.messages.total_delivered
            );
        }
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let g = generators::disjoint_union(&[generators::line(8), generators::line(8)]);
        let params = ExpanderParams::for_n(16);
        assert_eq!(
            OverlayBuilder::new(params).build(&g).unwrap_err(),
            OverlayError::Disconnected
        );
    }

    #[test]
    fn rejects_empty_and_high_degree_graphs() {
        let params = ExpanderParams::for_n(8);
        assert_eq!(
            OverlayBuilder::new(params)
                .build(&DiGraph::new(0))
                .unwrap_err(),
            OverlayError::EmptyGraph
        );
        let star = generators::star(64);
        let params = ExpanderParams::for_n(64);
        assert!(matches!(
            OverlayBuilder::new(params).build(&star).unwrap_err(),
            OverlayError::DegreeTooLarge { .. }
        ));
    }

    #[test]
    fn bfs_parents_form_spanning_tree_of_expander() {
        let n = 96;
        let result = build(&generators::cycle(n), 9);
        let simple = result.expander.simplify();
        assert!(analysis::is_spanning_tree(&simple, &result.bfs_parents));
    }

    #[test]
    fn clean_fault_report_matches_clean_build() {
        let n = 64;
        let g = generators::line(n);
        let params = ExpanderParams::for_n(n).with_seed(17);
        let builder = OverlayBuilder::new(params);
        let clean = builder.build(&g).expect("clean build succeeds");
        let report = builder
            .build_under_faults(&g, &FaultPlan::default())
            .expect("clean report succeeds");
        assert!(report.is_success());
        assert_eq!(report.survivor_ids.len(), n);
        assert!((report.coverage(n) - 1.0).abs() < 1e-12);
        assert_eq!(report.crashed, 0);
        assert_eq!(report.joined, 0);
        let faulty_result = report.result.expect("result present");
        assert_eq!(faulty_result.rounds, clean.rounds);
        assert_eq!(faulty_result.tree, clean.tree);
    }

    #[test]
    fn crash_wave_is_surfaced_not_erased() {
        let n = 96;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(23);
        // A wave of crashes one third into the construction schedule.
        let crash_round = ExpanderNode::total_rounds(&params) / 3;
        let mut plan = FaultPlan::default();
        for i in 0..n / 8 {
            plan = plan.with_crash(NodeId::from(i * 8), crash_round);
        }
        let report = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("input is valid");
        assert_eq!(report.crashed, n / 8);
        // Survivors never include the crashed nodes.
        assert!(report.survivor_ids.iter().all(|v| v.index() % 8 != 0));
        // Whatever the outcome, the report accounts for every phase that ran and the
        // books balance: nothing vanished without being recorded.
        assert!(!report.phases.is_empty());
        assert!(report.messages.dropped_offline > 0);
        if let Some(result) = &report.result {
            assert_eq!(result.tree.node_count(), report.survivor_ids.len());
        }
    }

    #[test]
    fn total_loss_collapses_the_core_to_a_singleton() {
        // With every message lost, the evolution schedule still runs to completion
        // (it is round-driven), but no node ever rewires: the final graph is all
        // self-loops, the survivors fragment into n singletons, and the pipeline
        // honestly reports a 1-node core instead of claiming a full overlay.
        let n = 32;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(3);
        let report = OverlayBuilder::new(params)
            .build_under_faults(&g, &FaultPlan::default().with_drop_prob(1.0))
            .expect("input is valid");
        let fragmented = report
            .phases
            .iter()
            .find(|(name, _)| *name == "survivor-connectivity")
            .expect("fragmentation must be reported");
        assert!(matches!(
            fragmented.1,
            PhaseOutcome::Fragmented {
                components: 32,
                core_size: 1
            }
        ));
        assert_eq!(report.survivor_ids.len(), 1);
        assert!(report.coverage(n) < 0.05);
        assert!(report.messages.dropped_fault > 0);
        // The clean path stays unaffected by fault plans elsewhere.
        assert!(OverlayBuilder::new(params).build(&g).is_ok());
    }

    #[test]
    fn crashes_after_construction_are_counted_once() {
        let n = 64;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(7);
        // One crash landing in the BFS phase: shifted() pins it to round 0 of the
        // binarize phase too, but it must appear exactly once in the report.
        let crash_round = ExpanderNode::total_rounds(&params) + 3;
        let plan = FaultPlan::default().with_crash(NodeId::from(5usize), crash_round);
        let report = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert_eq!(report.crashed, 1);
        // The node made it into the core (it was alive through construction) but is
        // dead at the end.
        assert!(report.survivor_ids.contains(&NodeId::from(5usize)));
        if !report.alive_at_end.is_empty() {
            let idx = report
                .survivor_ids
                .iter()
                .position(|v| *v == NodeId::from(5usize))
                .unwrap();
            assert!(!report.alive_at_end[idx]);
        }
    }

    #[test]
    fn binarize_window_crash_still_reports_the_survivor_tree() {
        let n = 64;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(11);
        // Pick a victim that ends up a non-root leaf of the (deterministic) clean
        // tree: its death in the binarize window orphans nobody.
        let clean = OverlayBuilder::new(params).build(&g).expect("clean build");
        let victim = g
            .nodes()
            .find(|&v| v != clean.tree.root() && clean.tree.children(v).is_empty())
            .expect("a constant-degree tree has leaves");
        // Crash lands in the binarize phase: the victim's stale self-parent must be
        // tolerated as a dangle, not miscounted as a second root.
        let crash_round =
            ExpanderNode::total_rounds(&params) + BfsNode::total_rounds(params.bfs_rounds) + 1;
        let plan = FaultPlan::default().with_crash(victim, crash_round);
        let report = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(report.result.is_some(), "phases: {:?}", report.phases);
        assert!(report.tree_valid_over_alive);
        assert!(report.is_success());
        assert_eq!(report.crashed, 1);
        let alive = report.alive_at_end.iter().filter(|a| **a).count();
        assert_eq!(alive, n - 1);
        assert!((report.coverage(n) - (n - 1) as f64 / n as f64).abs() < 1e-12);
        // The dead leaf is detached: tree metrics measure the alive tree only.
        let tree = &report.result.as_ref().unwrap().tree;
        assert!(tree.max_degree() <= 4);
        assert_eq!(tree.parent(victim), victim);
    }

    #[test]
    fn round_budget_rescues_a_join_past_the_clean_schedule() {
        let n = 32;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(13);
        // The joiner activates exactly when the clean budget runs out, so it needs
        // one more round than the clean schedule to flag itself done.
        let base = ExpanderNode::total_rounds(&params) + 2;
        let plan = FaultPlan::default().with_join(NodeId::from(3usize), base);
        let standard = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert_eq!(standard.stalled_phase(), Some("create-expander"));
        let generous = OverlayBuilder::new(params)
            .with_round_budget(RoundBudget::percent(150))
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(
            generous
                .phases
                .iter()
                .any(|(name, o)| *name == "create-expander" && !o.is_stall()),
            "phases: {:?}",
            generous.phases
        );
        // The declared multiplier never perturbs runs that fit the clean schedule.
        let clean = OverlayBuilder::new(params)
            .with_round_budget(RoundBudget::percent(300))
            .build(&g)
            .expect("clean build succeeds");
        assert_eq!(
            clean.rounds,
            OverlayBuilder::new(params).build(&g).unwrap().rounds
        );
    }

    #[test]
    fn reliable_transport_is_transparent_on_a_clean_network() {
        let n = 64;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(29).with_walk_len(12);
        let bare = OverlayBuilder::new(params).build(&g).expect("clean build");
        let reliable = OverlayBuilder::new(params)
            .with_reliable_transport(TransportConfig::default())
            .build_under_faults(&g, &FaultPlan::default())
            .expect("valid input");
        assert!(reliable.is_success());
        let result = reliable.result.expect("completed");
        // The transport never touches the node RNGs and adds no latency on a
        // clean network, so the constructed overlay is *identical*; only ack
        // traffic (and the final ack round-trips at each phase's end) is added.
        assert_eq!(result.tree, bare.tree);
        assert_eq!(result.expander, bare.expander);
        assert_eq!(result.bfs_parents, bare.bfs_parents);
        assert_eq!(reliable.messages.retransmits, 0);
        assert_eq!(reliable.messages.dupes_dropped, 0);
        assert!(reliable.messages.acks > 0);
        assert_eq!(bare.messages.acks, 0, "the bare pipeline has no transport");
        // The drain adds at most the ack round-trip per phase, within the
        // standard budget.
        assert!(result.rounds.total() <= bare.rounds.total() + 3);
    }

    #[test]
    fn reliable_transport_rescues_lossy_binarization() {
        // Seed 1 of the `lossy-ncc0` scenario (0.2% loss, cycle/128): the bare
        // pipeline loses a RelinkMsg in the one-round binarization and fails at
        // `finalize`. The transport retransmits it and completes the tree.
        let n = 128;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(1);
        let plan = FaultPlan::default().with_drop_prob(0.002);
        let bare = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(
            !bare.is_success(),
            "seed 1 must reproduce the baseline failure: {:?}",
            bare.phases
        );
        let reliable = OverlayBuilder::new(params)
            .with_reliable_transport(TransportConfig::default())
            .with_round_budget(RoundBudget::percent(200))
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(
            reliable.is_success(),
            "transport must rescue the run: {:?}",
            reliable.phases
        );
        assert!((reliable.coverage(n) - 1.0).abs() < 1e-12);
        // The reliability overhead is visible, not hidden.
        assert!(reliable.messages.retransmits > 0);
        assert!(reliable.messages.acks > 0);
    }

    #[test]
    fn fragmentation_error_carries_the_component_counts() {
        let report = BuildReport {
            result: None,
            phases: vec![
                ("create-expander", PhaseOutcome::Completed { rounds: 10 }),
                (
                    "survivor-connectivity",
                    PhaseOutcome::Fragmented {
                        components: 4,
                        core_size: 10,
                    },
                ),
            ],
            survivor_ids: Vec::new(),
            alive_at_end: Vec::new(),
            tree_valid_over_alive: false,
            rounds: RoundBreakdown::default(),
            messages: MessageStats::default(),
            crashed: 0,
            joined: 0,
            phase_metrics: Vec::new(),
        };
        assert_eq!(
            fragmentation_error(&report),
            OverlayError::Fragmented {
                components: 4,
                core_size: 10
            }
        );
    }

    #[test]
    fn failure_error_is_honest_per_event_kind() {
        let report_with = |phase: &'static str, outcome: PhaseOutcome| BuildReport {
            result: None,
            phases: vec![(phase, outcome)],
            survivor_ids: Vec::new(),
            alive_at_end: Vec::new(),
            tree_valid_over_alive: false,
            rounds: RoundBreakdown::default(),
            messages: MessageStats::default(),
            crashed: 0,
            joined: 0,
            phase_metrics: Vec::new(),
        };
        let stalled = PhaseOutcome::Stalled {
            rounds: 1,
            budget: 14,
            nodes_done: 128,
            nodes_total: 128,
        };
        // A finalize "stall" is a validation verdict (the rounds completed, the
        // parents were invalid), never a budget failure.
        assert_eq!(
            failure_error(&report_with("finalize", stalled)),
            OverlayError::FinalizeFailed
        );
        // A genuine budget stall keeps its real budget.
        assert_eq!(
            failure_error(&report_with("binarize", stalled)),
            OverlayError::PhaseIncomplete {
                phase: "binarize",
                budget: 14
            }
        );
        assert_eq!(
            failure_error(&report_with(
                "survivor-connectivity",
                PhaseOutcome::Fragmented {
                    components: 0,
                    core_size: 0
                }
            )),
            OverlayError::Fragmented {
                components: 0,
                core_size: 0
            }
        );
    }

    #[test]
    fn binarize_only_transport_rescues_a_binarize_window_partition() {
        // A partition covering exactly the one-round binarization drops every
        // cross-cut RelinkMsg: the bare pipeline finishes its schedule but the
        // orphaned nodes keep their self-parent and `finalize` fails. Scoping the
        // reliable transport to just the binarize phase retransmits the relinks
        // after the heal — the construction and BFS phases stay on the paper's
        // bare sends (their wall-rounds are untouched), yet the pipeline
        // completes.
        let n = 128;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(1);
        let clean = OverlayBuilder::new(params).build(&g).expect("clean build");
        let offset2 = clean.rounds.construction + clean.rounds.bfs;
        let side_a: Vec<NodeId> = (0..n / 2).map(NodeId::from).collect();
        let plan = FaultPlan::default().with_partition(side_a, offset2, offset2 + 1);
        let bare = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(
            !bare.is_success(),
            "the binarize-window partition must fail bare: {:?}",
            bare.phases
        );
        let scoped = OverlayBuilder::new(params)
            .with_phase_transport(
                PhaseId::Binarize,
                TransportChoice::Reliable(TransportConfig::default()),
            )
            .with_phase_budget(PhaseId::Binarize, RoundBudget::STANDARD.with_slack(12))
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(
            scoped.is_success(),
            "binarize-scoped transport must rescue the run: {:?}",
            scoped.phases
        );
        // The bare phases are untouched by the override: identical wall-rounds.
        assert_eq!(scoped.rounds.construction, clean.rounds.construction);
        assert_eq!(scoped.rounds.bfs, clean.rounds.bfs);
        // Reliability (acks, and the retransmissions that saved the run) is
        // confined to the binarize phase: one ack per relink plus retries, not the
        // tens of thousands a full-pipeline transport would deliver.
        assert!(scoped.messages.retransmits > 0);
        assert!(scoped.messages.acks > 0);
        assert!(
            scoped.messages.acks < 4 * n as u64,
            "acks ({}) must stay confined to the binarize phase",
            scoped.messages.acks
        );
    }

    #[test]
    fn phase_budget_override_targets_only_its_phase() {
        // The late joiner needs extra construction budget; granting it to the
        // wrong phase must not help, granting it to create-expander must.
        let n = 32;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(13);
        let base = ExpanderNode::total_rounds(&params) + 2;
        let plan = FaultPlan::default().with_join(NodeId::from(3usize), base);
        let wrong_phase = OverlayBuilder::new(params)
            .with_phase_budget(PhaseId::Binarize, RoundBudget::percent(300))
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert_eq!(wrong_phase.stalled_phase(), Some("create-expander"));
        let right_phase = OverlayBuilder::new(params)
            .with_phase_budget(PhaseId::CreateExpander, RoundBudget::percent(150))
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert!(
            right_phase
                .phases
                .iter()
                .any(|(name, o)| *name == "create-expander" && !o.is_stall()),
            "phases: {:?}",
            right_phase.phases
        );
    }

    #[test]
    fn empty_phase_overrides_change_nothing() {
        let n = 64;
        let g = generators::line(n);
        let params = ExpanderParams::for_n(n).with_seed(5);
        let plan = FaultPlan::default().with_drop_prob(0.02);
        let default_run = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        let explicit = OverlayBuilder::new(params)
            .with_phase_overrides(PhaseOverrides::none())
            .build_under_faults(&g, &plan)
            .expect("valid input");
        assert_eq!(default_run.rounds, explicit.rounds);
        assert_eq!(default_run.messages, explicit.messages);
        assert_eq!(default_run.phases, explicit.phases);
        assert_eq!(default_run.survivor_ids, explicit.survivor_ids);
    }

    #[test]
    fn fault_reports_are_deterministic() {
        let n = 64;
        let g = generators::line(n);
        let params = ExpanderParams::for_n(n).with_seed(5);
        let plan = FaultPlan::default()
            .with_drop_prob(0.02)
            .with_delays(0.1, 2);
        let run = || {
            let r = OverlayBuilder::new(params)
                .build_under_faults(&g, &plan)
                .expect("valid input");
            (
                r.is_success(),
                r.rounds,
                r.messages,
                r.survivor_ids.clone(),
                r.phases.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn every_simulated_phase_reports_its_metrics() {
        let n = 64;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(5);
        let report = OverlayBuilder::new(params)
            .build_under_faults(&g, &FaultPlan::default().with_drop_prob(0.02))
            .expect("valid input");
        let names: Vec<&str> = report.phase_metrics.iter().map(|m| m.phase).collect();
        assert_eq!(names, vec!["create-expander", "bfs", "binarize"]);
        // The rollups reconcile with the run-global books.
        assert_eq!(
            report.phase_metrics[0].rounds,
            report.rounds.construction + 1,
            "phase rounds include the start round"
        );
        let delivered: u64 = report.phase_metrics.iter().map(|m| m.delivered).sum();
        assert_eq!(delivered, report.messages.total_delivered);
        let faults: u64 = report.phase_metrics.iter().map(|m| m.dropped_fault).sum();
        assert_eq!(faults, report.messages.dropped_fault);
        assert!(faults > 0, "the loss plan must actually bite");
        assert_eq!(
            report.phase_metrics[0].dominant_drop().map(|(c, _)| c),
            Some("fault")
        );
    }

    #[test]
    fn tracing_leaves_the_report_unchanged() {
        let n = 64;
        let g = generators::cycle(n);
        let params = ExpanderParams::for_n(n).with_seed(9);
        let plan = FaultPlan::default()
            .with_drop_prob(0.05)
            .with_crash(NodeId::from(3usize), 4);
        let plain = OverlayBuilder::new(params)
            .build_under_faults(&g, &plan)
            .expect("valid input");
        let buf = overlay_netsim::TraceBuffer::shared();
        let traced = OverlayBuilder::new(params)
            .build_under_faults_traced(&g, &plan, buf.clone())
            .expect("valid input");
        assert_eq!(plain.is_success(), traced.is_success());
        assert_eq!(plain.rounds, traced.rounds);
        assert_eq!(plain.messages, traced.messages);
        assert_eq!(plain.phases, traced.phases);
        assert_eq!(plain.survivor_ids, traced.survivor_ids);
        assert_eq!(plain.phase_metrics, traced.phase_metrics);

        // The trace brackets each simulated phase and saw the injected crash.
        let events = buf.borrow().events.clone();
        use overlay_netsim::TraceEvent;
        let phase_starts: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseStart { phase } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(phase_starts, vec!["create-expander", "bfs", "binarize"]);
        assert!(events.contains(&TraceEvent::Crash {
            round: 4,
            node: NodeId::from(3usize)
        }));
        assert!(events.iter().any(|e| matches!(e, TraceEvent::Drop { .. })));
    }
}
