//! Structured event tracing for simulation runs.
//!
//! A [`TraceSink`] installed on a [`crate::Simulator`] (via
//! [`crate::Simulator::set_trace_sink`]) receives one [`TraceEvent`] per
//! observable incident of a run: round boundaries, every dropped message with
//! its cause and src/dst edge, crash and join lifecycle events, and the
//! transport layer's retransmission / give-up activity. Pipeline harnesses
//! additionally emit [`TraceEvent::PhaseStart`] / [`TraceEvent::PhaseEnd`]
//! markers so a single trace covers a whole multi-phase run.
//!
//! # The zero-cost contract
//!
//! Tracing must never change what a run *does*. The simulator guarantees:
//!
//! * **No sink, no work**: every emission site is guarded by an
//!   `Option` check on the installed sink; with no sink installed the run
//!   performs no per-event allocation, iteration, or formatting.
//! * **RNG-stream identity**: emission never draws from any RNG and never
//!   reorders or re-buffers messages, so a traced run is byte-identical (same
//!   metrics, same node states, same report) to an untraced run of the same
//!   seed. Tests in `runtime.rs` and the scenario crate pin this down.
//!
//! Sinks are shared as [`SharedTraceSink`] (`Rc<RefCell<dyn TraceSink>>`) so
//! one buffer can observe several consecutive simulations — e.g. the three
//! phases of the overlay pipeline — without ownership gymnastics.

use crate::faults::DropReason;
use crate::protocol::Channel;
use overlay_graph::NodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// Why a message never reached its recipient.
///
/// The first three variants mirror [`DropReason`] (the fault router's verdicts);
/// the rest are capacity-model and addressing drops decided by the simulator
/// itself. See the glossary in [`crate::metrics`] for how each cause maps onto
/// the [`crate::RoundMetrics`] counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// Injected random loss ([`crate::RoundMetrics::dropped_fault`]).
    Fault,
    /// Blocked by an active partition ([`crate::RoundMetrics::dropped_partition`]).
    Partition,
    /// Addressed to a crashed or not-yet-joined node
    /// ([`crate::RoundMetrics::dropped_offline`]).
    Offline,
    /// The sender exceeded its per-round send cap, or a local message violated
    /// the CONGEST edge discipline ([`crate::RoundMetrics::dropped_send`]).
    SendCap,
    /// The receiver's per-round global receive cap evicted the message
    /// ([`crate::RoundMetrics::dropped_receive`]).
    ReceiveCap,
    /// The recipient identifier does not name a node
    /// (counted under [`crate::RoundMetrics::dropped_send`]).
    InvalidAddress,
}

impl DropCause {
    /// Stable lowercase label used in serialized traces and post-mortems.
    pub fn label(self) -> &'static str {
        match self {
            DropCause::Fault => "fault",
            DropCause::Partition => "partition",
            DropCause::Offline => "offline",
            DropCause::SendCap => "send-cap",
            DropCause::ReceiveCap => "receive-cap",
            DropCause::InvalidAddress => "invalid-address",
        }
    }
}

impl From<DropReason> for DropCause {
    fn from(reason: DropReason) -> Self {
        match reason {
            DropReason::Fault => DropCause::Fault,
            DropReason::Partition => DropCause::Partition,
            DropReason::Offline => DropCause::Offline,
        }
    }
}

/// One observable incident of a simulation run.
///
/// Events are emitted in deterministic order: a `RoundStart`, then the round's
/// lifecycle events (`Crash` / `Join` in node order), then `Drop` events in
/// delivery/dispatch order, per-node `Retransmits` / `GiveUps` in node order,
/// and finally the `RoundEnd` rollup. Round numbers are *per simulation*: a
/// multi-phase pipeline restarts at round 0 inside each `PhaseStart` /
/// `PhaseEnd` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A simulated round began (`round` 0 is the start-callback round).
    RoundStart {
        /// The round number.
        round: usize,
    },
    /// A simulated round finished, with its headline delivery counts.
    RoundEnd {
        /// The round number.
        round: usize,
        /// Messages delivered to inboxes this round.
        delivered: usize,
        /// Messages dropped this round, all causes combined.
        dropped: usize,
    },
    /// A pipeline phase began (emitted by phase harnesses, not the simulator).
    PhaseStart {
        /// The phase's report name (e.g. `create-expander`).
        phase: &'static str,
    },
    /// A pipeline phase ended (emitted by phase harnesses, not the simulator).
    PhaseEnd {
        /// The phase's report name.
        phase: &'static str,
        /// Rounds the phase executed.
        rounds: usize,
        /// Whether every node finished within the phase's budget.
        completed: bool,
    },
    /// A message was dropped instead of delivered.
    Drop {
        /// The round the drop happened in.
        round: usize,
        /// The sending node.
        from: NodeId,
        /// The addressed recipient.
        to: NodeId,
        /// The channel the message travelled on.
        channel: Channel,
        /// Why the message was dropped.
        cause: DropCause,
    },
    /// A node crashed at the start of this round (crash-stop; it stays silent
    /// for the rest of the simulation).
    Crash {
        /// The first round the node is dead in.
        round: usize,
        /// The crashed node.
        node: NodeId,
    },
    /// A late joiner activated at the start of this round.
    Join {
        /// The node's first active round.
        round: usize,
        /// The joining node.
        node: NodeId,
    },
    /// A node's reliable-transport layer re-sent unacknowledged data this
    /// round (aggregated per node per round).
    Retransmits {
        /// The round the retransmissions were sent in.
        round: usize,
        /// The retransmitting node.
        node: NodeId,
        /// Number of data messages re-sent.
        count: usize,
    },
    /// A node's reliable-transport layer gave up on unacknowledged payloads
    /// this round (the peer exhausted its retransmission budget and is
    /// presumed gone; aggregated per node per round).
    GiveUps {
        /// The round the payloads were abandoned in.
        round: usize,
        /// The abandoning node.
        node: NodeId,
        /// Number of payloads abandoned.
        count: usize,
    },
    /// A maintenance epoch boundary was processed (emitted by the maintenance
    /// runner, not the simulator). `round` is the service round the boundary
    /// fell on, cumulative across the whole serve horizon.
    Epoch {
        /// The epoch index (0-based).
        epoch: usize,
        /// The service round the boundary fell on.
        round: usize,
        /// Alive members of the overlay after this epoch's churn.
        alive: usize,
        /// Stragglers still awaiting admission after this boundary.
        stragglers: usize,
    },
    /// A re-invitation was issued to a straggler at an epoch boundary,
    /// pulling it into the current evolution.
    ReInvite {
        /// The epoch the invitation was issued in.
        epoch: usize,
        /// The invited straggler (its stable service-wide id).
        joiner: NodeId,
        /// The alive member that extended the invitation.
        contact: NodeId,
        /// Whether the invitation survived transport loss and was accepted.
        delivered: bool,
    },
    /// A repair evolution ran at an epoch boundary, re-absorbing admitted
    /// stragglers and healing crash holes.
    Repair {
        /// The epoch the repair ran in.
        epoch: usize,
        /// Members newly covered by the overlay through this repair.
        healed: usize,
        /// Whether the rebuilt tree passed well-formedness validation.
        tree_valid: bool,
    },
    /// A traffic request entered its source's forward queue (emitted by the
    /// traffic harness, not the simulator).
    RequestInjected {
        /// The traffic round the request was injected in.
        round: usize,
        /// The injecting source node.
        src: NodeId,
        /// The request's destination node.
        dst: NodeId,
    },
    /// A traffic request reached its destination.
    RequestDelivered {
        /// The traffic round the request arrived in.
        round: usize,
        /// The destination that absorbed the request.
        dst: NodeId,
        /// Overlay edges the request traversed.
        hops: usize,
        /// Rounds from injection to delivery.
        latency: usize,
    },
    /// A traffic request was shed: queue overflow, an unroutable destination,
    /// or TTL expiry (aggregated per node per traffic phase).
    RequestDropped {
        /// The shedding node.
        node: NodeId,
        /// Requests shed by queue overflow or missing routes.
        dropped: usize,
        /// Requests aged out past their TTL.
        expired: usize,
    },
}

/// A consumer of [`TraceEvent`]s.
///
/// `Debug` is a supertrait so sinks can live inside the (`Debug`-derived)
/// simulator. Implementations should be cheap: they run inline with the
/// simulation whenever installed.
pub trait TraceSink: std::fmt::Debug {
    /// Receives one event, in emission order.
    fn record(&mut self, event: TraceEvent);
}

/// A sink handle shareable between a harness and the simulators it drives.
pub type SharedTraceSink = Rc<RefCell<dyn TraceSink>>;

/// The simplest useful sink: an in-memory event log.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    /// Every recorded event, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// An empty buffer behind a shared handle: clone one side into
    /// [`crate::Simulator::set_trace_sink`] (it coerces to [`SharedTraceSink`])
    /// and keep the other to read the events back after the run.
    pub fn shared() -> Rc<RefCell<TraceBuffer>> {
        Rc::new(RefCell::new(TraceBuffer::new()))
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_records_in_order() {
        let buf = TraceBuffer::shared();
        let sink: SharedTraceSink = buf.clone();
        sink.borrow_mut()
            .record(TraceEvent::RoundStart { round: 0 });
        sink.borrow_mut().record(TraceEvent::Crash {
            round: 0,
            node: NodeId::from(3usize),
        });
        let events = buf.borrow().events.clone();
        assert_eq!(
            events,
            vec![
                TraceEvent::RoundStart { round: 0 },
                TraceEvent::Crash {
                    round: 0,
                    node: NodeId::from(3usize)
                },
            ]
        );
    }

    #[test]
    fn drop_causes_have_stable_labels() {
        let labels: Vec<&str> = [
            DropCause::Fault,
            DropCause::Partition,
            DropCause::Offline,
            DropCause::SendCap,
            DropCause::ReceiveCap,
            DropCause::InvalidAddress,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(
            labels,
            vec![
                "fault",
                "partition",
                "offline",
                "send-cap",
                "receive-cap",
                "invalid-address"
            ]
        );
        assert_eq!(DropCause::from(DropReason::Fault), DropCause::Fault);
        assert_eq!(DropCause::from(DropReason::Partition), DropCause::Partition);
        assert_eq!(DropCause::from(DropReason::Offline), DropCause::Offline);
    }
}
