//! Deterministic synchronous message-passing simulator for overlay-network models.
//!
//! The paper's algorithms are stated for a synchronous round model in which nodes send
//! messages to nodes whose identifier they know, new connections are established by
//! sending identifiers, and per-round communication is capped. This crate implements
//! that model faithfully so that round counts and message counts measured in experiments
//! are *model-level* quantities, exactly the quantities the paper's theorems bound.
//!
//! Two capacity models are supported (see [`CapacityModel`]):
//!
//! * **NCC0**: every node may send and receive at most `O(log n)` messages per round;
//!   excess received messages are dropped (an arbitrary — here: seeded — subset is
//!   kept).
//! * **Hybrid**: the initial graph's edges are *local* edges following CONGEST (one
//!   message per edge per direction per round), and nodes may additionally send a
//!   polylogarithmic number of *global* messages per round to arbitrary known
//!   identifiers.
//!
//! Protocols are deterministic state machines implementing [`Protocol`]; all randomness
//! comes from per-node seeded RNGs, so every simulation is reproducible from its seed.
//!
//! Beyond the clean synchronous model, the simulator can inject deterministic
//! environmental faults — random message loss, delivery delays, crash-stop failures,
//! delayed node joins, and temporary partitions — declared as a [`FaultPlan`] in
//! [`SimConfig::faults`] and executed by the [`FaultRouter`] (see [`faults`]). Fault
//! decisions are drawn from the simulation seed, so faulty runs replay exactly, and
//! every interference is recorded in [`RoundMetrics`].
//!
//! # Example
//!
//! ```
//! use overlay_netsim::{Ctx, Envelope, Protocol, SimConfig, Simulator};
//! use overlay_graph::NodeId;
//!
//! /// Each node forwards a counter to its successor for a fixed number of rounds.
//! struct Relay { next: NodeId, hops: usize, done: bool }
//!
//! impl Protocol for Relay {
//!     type Message = usize;
//!     fn on_start(&mut self, ctx: &mut Ctx<usize>) {
//!         ctx.send_global(self.next, 0);
//!     }
//!     fn on_round(&mut self, ctx: &mut Ctx<usize>, inbox: &[Envelope<usize>]) {
//!         for env in inbox {
//!             if env.payload + 1 < self.hops {
//!                 ctx.send_global(self.next, env.payload + 1);
//!             } else {
//!                 self.done = true;
//!             }
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.done }
//! }
//!
//! let n = 8;
//! let nodes: Vec<Relay> = (0..n)
//!     .map(|i| Relay { next: NodeId::from((i + 1) % n), hops: 4, done: false })
//!     .collect();
//! let mut sim = Simulator::new(nodes, SimConfig::default());
//! let outcome = sim.run(64);
//! assert!(outcome.all_done);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caps;
pub mod churn;
pub mod faults;
pub mod metrics;
pub mod protocol;
pub mod runtime;
pub mod trace;
pub mod transport;
pub mod wire;

pub use caps::CapacityModel;
pub use churn::{ChurnSchedule, CrashBurst, RoundChurn};
pub use faults::{CrashEvent, DelayModel, FaultPlan, FaultRouter, JoinEvent, Partition};
pub use metrics::{MetricsMode, RoundMetrics, RunMetrics, TransportCounters};
pub use protocol::{Channel, Ctx, Envelope, Protocol};
pub use runtime::{node_rng, ParallelismConfig, RunOutcome, SimConfig, Simulator};
pub use trace::{DropCause, SharedTraceSink, TraceBuffer, TraceEvent, TraceSink};
pub use transport::TransportConfig;
pub use wire::{Wire, WireError};
