//! Deterministic fault injection: message loss, delivery delays, crashes, delayed
//! joins, and network partitions.
//!
//! A [`FaultPlan`] declares *what* goes wrong and *when*; the [`FaultRouter`] sits
//! between the send side of [`crate::Ctx`] and inbox delivery inside the
//! [`crate::Simulator`] and executes the plan. Every decision — which message is
//! lost, how long a delay lasts — is drawn from an RNG seeded from the simulation
//! seed, so a run with a fault plan is exactly as reproducible as a clean run, and
//! every interference is recorded in [`crate::RoundMetrics`] so that model-level
//! message counts stay honest.
//!
//! Faults compose: a message must survive the partition check, the random-loss
//! check, the recipient-liveness check, and (possibly) a delay before it is
//! delivered. Node lifecycle faults are crash-stop: a crashed node stops executing
//! and never recovers; a joining node is dormant (sends nothing, receives nothing)
//! until its join round, at which point its `on_start` callback runs with whatever
//! initial knowledge its protocol state was constructed with.

use crate::metrics::RoundMetrics;
use crate::protocol::Envelope;
use overlay_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

/// A random delivery-delay model: with probability `prob` a delivered message is
/// held back by 1 to `max_rounds` extra rounds (uniformly chosen).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayModel {
    /// Probability that a message is delayed at all.
    pub prob: f64,
    /// Maximum number of extra rounds a delayed message is held back (≥ 1).
    pub max_rounds: usize,
}

/// A scheduled crash-stop failure: `node` executes rounds `< round` and is silent
/// from `round` on. Messages addressed to it at or after `round` are lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The round at the start of which the node stops.
    pub round: usize,
    /// The crashing node.
    pub node: NodeId,
}

/// A scheduled join: `node` is dormant (no callbacks, all messages to it lost)
/// before `round`; its `on_start` runs at the beginning of `round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinEvent {
    /// The round at the start of which the node becomes active.
    pub round: usize,
    /// The joining node.
    pub node: NodeId,
}

/// A temporary split of the node set: while `from_round <= round < heal_round`,
/// messages between `side_a` and its complement are dropped in both directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// First round (send time) in which the partition is in effect.
    pub from_round: usize,
    /// First round in which traffic flows again.
    pub heal_round: usize,
    /// The nodes on one side of the cut; everyone else is on the other side.
    pub side_a: Vec<NodeId>,
}

/// A declarative, deterministic schedule of environmental faults.
///
/// The default plan is clean (no faults); [`Simulator`](crate::Simulator) runs with
/// a clean plan behave exactly like fault-free simulations. Plans are composed with
/// the builder-style `with_*` methods:
///
/// ```
/// use overlay_netsim::FaultPlan;
/// use overlay_graph::NodeId;
///
/// let plan = FaultPlan::default()
///     .with_drop_prob(0.05)
///     .with_delays(0.2, 3)
///     .with_crash(NodeId::from(3usize), 10)
///     .with_join(NodeId::from(7usize), 4)
///     .with_partition(vec![NodeId::from(0usize), NodeId::from(1usize)], 5, 9);
/// assert!(!plan.is_clean());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Independent per-message loss probability (applied to messages that survive
    /// partitions and liveness checks).
    pub drop_prob: f64,
    /// First send round the loss probability applies to. The default `0` makes
    /// loss unconditional, which is byte-identical to the pre-windowed behavior;
    /// a later round models a network that degrades partway through a run (see
    /// [`FaultPlan::with_drop_prob_from`]).
    pub loss_from: usize,
    /// Optional random delivery delays.
    pub delay: Option<DelayModel>,
    /// Scheduled crash-stop failures.
    pub crashes: Vec<CrashEvent>,
    /// Scheduled joins (nodes dormant until their join round).
    pub joins: Vec<JoinEvent>,
    /// Temporary partitions of the node set.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// `true` if the plan injects nothing; the simulator behaves identically to a
    /// fault-free run either way (the router is exact, not approximate), so this is
    /// purely informational.
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0
            && self.delay.is_none()
            && self.crashes.is_empty()
            && self.joins.is_empty()
            && self.partitions.is_empty()
    }

    /// Sets the independent per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability out of range: {p}"
        );
        self.drop_prob = p;
        self
    }

    /// Sets the independent per-message loss probability, applied only to messages
    /// sent at or after `from_round` — the network works, then degrades. Composes
    /// with crash waves into "crash, then loss" stressors where the survivors must
    /// also cope with a lossier network.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop_prob_from(mut self, p: f64, from_round: usize) -> Self {
        self = self.with_drop_prob(p);
        self.loss_from = from_round;
        self
    }

    /// Delays each message with probability `prob` by 1..=`max_rounds` extra rounds.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]` or `max_rounds == 0`.
    pub fn with_delays(mut self, prob: f64, max_rounds: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&prob),
            "delay probability out of range: {prob}"
        );
        assert!(max_rounds >= 1, "a delay must last at least one round");
        self.delay = Some(DelayModel { prob, max_rounds });
        self
    }

    /// Crashes `node` at the start of `round`.
    pub fn with_crash(mut self, node: NodeId, round: usize) -> Self {
        self.crashes.push(CrashEvent { round, node });
        self
    }

    /// Keeps `node` dormant until the start of `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` (a node joining at round 0 is simply present).
    pub fn with_join(mut self, node: NodeId, round: usize) -> Self {
        assert!(
            round >= 1,
            "a join at round 0 is a normal start; schedule round >= 1"
        );
        self.joins.push(JoinEvent { round, node });
        self
    }

    /// Partitions `side_a` from the rest during rounds `from_round..heal_round`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn with_partition(
        mut self,
        side_a: Vec<NodeId>,
        from_round: usize,
        heal_round: usize,
    ) -> Self {
        assert!(
            from_round < heal_round,
            "partition window must be non-empty"
        );
        self.partitions.push(Partition {
            from_round,
            heal_round,
            side_a,
        });
        self
    }

    /// Rebases the plan onto a timeline starting `offset` rounds later, for running
    /// a multi-phase pipeline where each phase is its own simulation.
    ///
    /// Crashes that already happened stay in effect (they become crashes at round
    /// 0); joins that already happened disappear (the node is simply active);
    /// partitions are clipped to the remaining window and dropped once healed.
    /// Loss and delay models persist unchanged, except that a windowed loss start
    /// ([`FaultPlan::with_drop_prob_from`]) is rebased onto the new timeline.
    pub fn shifted(&self, offset: usize) -> FaultPlan {
        FaultPlan {
            drop_prob: self.drop_prob,
            loss_from: self.loss_from.saturating_sub(offset),
            delay: self.delay,
            crashes: self
                .crashes
                .iter()
                .map(|c| CrashEvent {
                    round: c.round.saturating_sub(offset),
                    node: c.node,
                })
                .collect(),
            joins: self
                .joins
                .iter()
                .filter(|j| j.round > offset)
                .map(|j| JoinEvent {
                    round: j.round - offset,
                    node: j.node,
                })
                .collect(),
            partitions: self
                .partitions
                .iter()
                .filter(|p| p.heal_round > offset)
                .map(|p| Partition {
                    from_round: p.from_round.saturating_sub(offset),
                    heal_round: p.heal_round - offset,
                    side_a: p.side_a.clone(),
                })
                .collect(),
        }
    }

    /// Checks that the probabilities and delay bounds are in range (fields are
    /// public, so plans need not come from the `with_*` builders), that every
    /// referenced node exists among `n` nodes, and that no node both joins late and
    /// crashes before its join round.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.drop_prob) {
            return Err(format!("drop probability out of range: {}", self.drop_prob));
        }
        if let Some(delay) = &self.delay {
            if !(0.0..=1.0).contains(&delay.prob) {
                return Err(format!("delay probability out of range: {}", delay.prob));
            }
            if delay.max_rounds == 0 {
                return Err("a delay must last at least one round".into());
            }
        }
        for c in &self.crashes {
            if c.node.index() >= n {
                return Err(format!(
                    "crash event references node {} >= n = {n}",
                    c.node.index()
                ));
            }
        }
        for j in &self.joins {
            if j.node.index() >= n {
                return Err(format!(
                    "join event references node {} >= n = {n}",
                    j.node.index()
                ));
            }
            // Compare against the *effective* crash round (the minimum across
            // duplicate events), which is what the router enforces.
            let crash = self
                .crashes
                .iter()
                .filter(|c| c.node == j.node)
                .map(|c| c.round)
                .min();
            if let Some(round) = crash {
                if round <= j.round {
                    return Err(format!(
                        "node {} crashes at round {round} before joining at round {}",
                        j.node.index(),
                        j.round
                    ));
                }
            }
        }
        for p in &self.partitions {
            for &v in &p.side_a {
                if v.index() >= n {
                    return Err(format!(
                        "partition references node {} >= n = {n}",
                        v.index()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Why the router refused to deliver a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Lost to the independent per-message loss probability.
    Fault,
    /// Blocked by an active partition between sender and recipient.
    Partition,
    /// The recipient was crashed or not yet joined at delivery time.
    Offline,
}

/// The router's verdict for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Deliver next round, as normal.
    Deliver,
    /// Deliver at the returned (absolute) round instead.
    Delay(usize),
    /// Do not deliver.
    Drop(DropReason),
}

/// Executes a [`FaultPlan`] inside the simulator: decides the fate of every sent
/// message and tracks node liveness.
///
/// The router's RNG is seeded from the simulation seed, so fault decisions are part
/// of the deterministic replay.
#[derive(Clone, Debug)]
pub struct FaultRouter<M> {
    /// Per node: the round it crashes at, if any.
    crash_round: Vec<Option<usize>>,
    /// Per node: the round it becomes active (0 = present from the start).
    join_round: Vec<usize>,
    partitions: Vec<(usize, usize, HashSet<NodeId>)>,
    drop_prob: f64,
    loss_from: usize,
    delay: Option<DelayModel>,
    rng: StdRng,
    /// Messages in flight beyond the next round, keyed by (absolute) delivery round.
    delayed: BTreeMap<usize, Vec<(NodeId, Envelope<M>)>>,
    /// Emptied per-round buffers recycled by [`FaultRouter::buffer`], so steady-state
    /// delay traffic allocates no new `Vec`s (the same discipline as the simulator's
    /// envelope arena).
    spare: Vec<Vec<(NodeId, Envelope<M>)>>,
}

impl<M> FaultRouter<M> {
    /// Builds the router for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn new(plan: &FaultPlan, n: usize, seed: u64) -> Self {
        plan.validate(n).expect("invalid fault plan");
        let mut crash_round = vec![None; n];
        for c in &plan.crashes {
            let slot = &mut crash_round[c.node.index()];
            *slot = Some(slot.map_or(c.round, |r: usize| r.min(c.round)));
        }
        let mut join_round = vec![0usize; n];
        for j in &plan.joins {
            join_round[j.node.index()] = join_round[j.node.index()].max(j.round);
        }
        FaultRouter {
            crash_round,
            join_round,
            partitions: plan
                .partitions
                .iter()
                .map(|p| {
                    (
                        p.from_round,
                        p.heal_round,
                        p.side_a.iter().copied().collect(),
                    )
                })
                .collect(),
            drop_prob: plan.drop_prob,
            loss_from: plan.loss_from,
            delay: plan.delay,
            rng: StdRng::seed_from_u64(seed.wrapping_add(0xFA17)),
            delayed: BTreeMap::new(),
            spare: Vec::new(),
        }
    }

    /// `true` if `node` executes callbacks in `round` (joined and not yet crashed).
    pub fn is_active(&self, node: usize, round: usize) -> bool {
        self.join_round[node] <= round && self.crash_round[node].is_none_or(|c| round < c)
    }

    /// `true` if `node` joins exactly at `round` (its `on_start` must run now).
    pub fn joins_at(&self, node: usize, round: usize) -> bool {
        self.join_round[node] == round && round > 0
    }

    /// `true` if `node` is crashed at `round`.
    pub fn is_crashed(&self, node: usize, round: usize) -> bool {
        self.crash_round[node].is_some_and(|c| round >= c)
    }

    /// The round `node` becomes active.
    pub fn join_round(&self, node: usize) -> usize {
        self.join_round[node]
    }

    /// Number of nodes that crash at exactly `round` (for metrics).
    pub fn crashes_at(&self, round: usize) -> usize {
        self.crash_round
            .iter()
            .filter(|c| **c == Some(round))
            .count()
    }

    /// Number of nodes that join at exactly `round` (for metrics).
    pub fn join_count_at(&self, round: usize) -> usize {
        if round == 0 {
            return 0;
        }
        self.join_round.iter().filter(|&&j| j == round).count()
    }

    fn cut_by_partition(&self, from: NodeId, to: NodeId, send_round: usize) -> bool {
        self.partitions.iter().any(|(start, heal, side_a)| {
            (*start..*heal).contains(&send_round) && side_a.contains(&from) != side_a.contains(&to)
        })
    }

    /// Decides the fate of a message sent by `from` to `to` in `send_round` (normal
    /// delivery would be at `send_round + 1`).
    pub fn route(&mut self, from: NodeId, to: NodeId, send_round: usize) -> Route {
        if self.cut_by_partition(from, to, send_round) {
            return Route::Drop(DropReason::Partition);
        }
        // The loss window is checked before the RNG roll, so rounds before
        // `loss_from` draw nothing: an unwindowed plan (`loss_from == 0`) keeps
        // the exact pre-windowed RNG stream, and windowed plans stay
        // deterministic per seed regardless of how much clean traffic precedes
        // the window.
        if self.drop_prob > 0.0 && send_round >= self.loss_from && self.rng.gen_bool(self.drop_prob)
        {
            return Route::Drop(DropReason::Fault);
        }
        let mut deliver_round = send_round + 1;
        if let Some(delay) = self.delay {
            if delay.prob > 0.0 && self.rng.gen_bool(delay.prob) {
                deliver_round += self.rng.gen_range(1..delay.max_rounds + 1);
            }
        }
        // A joiner's first round runs `on_start`, not `on_round`, so a message
        // landing exactly on the join round would never reach the protocol;
        // treat it as offline too, so it is dropped *and counted*.
        if !self.is_active(to.index(), deliver_round) || self.joins_at(to.index(), deliver_round) {
            return Route::Drop(DropReason::Offline);
        }
        if deliver_round == send_round + 1 {
            Route::Deliver
        } else {
            Route::Delay(deliver_round)
        }
    }

    /// Buffers a delayed message for its delivery round.
    pub fn buffer(&mut self, deliver_round: usize, to: NodeId, env: Envelope<M>) {
        self.delayed
            .entry(deliver_round)
            .or_insert_with(|| self.spare.pop().unwrap_or_default())
            .push((to, env));
    }

    /// Removes and returns the messages scheduled for delivery at `round`.
    ///
    /// Allocates the returned `Vec`'s transfer of ownership; the simulator's hot
    /// path uses [`FaultRouter::drain_due`] instead, which recycles the buffer.
    pub fn take_due(&mut self, round: usize) -> Vec<(NodeId, Envelope<M>)> {
        self.delayed.remove(&round).unwrap_or_default()
    }

    /// Hands every message scheduled for delivery at `round` to `deliver` and
    /// recycles the emptied buffer, so rounds with active delay faults perform no
    /// per-round allocation once the pool is warm.
    pub fn drain_due(&mut self, round: usize, mut deliver: impl FnMut(NodeId, Envelope<M>)) {
        if let Some(mut due) = self.delayed.remove(&round) {
            for (to, env) in due.drain(..) {
                deliver(to, env);
            }
            self.spare.push(due);
        }
    }

    /// `true` if some delayed message is still in flight.
    pub fn has_in_flight(&self) -> bool {
        !self.delayed.is_empty()
    }

    /// Records this round's lifecycle events into `metrics`.
    pub fn record_lifecycle(&self, round: usize, metrics: &mut RoundMetrics) {
        metrics.crashed = self.crashes_at(round);
        metrics.joined = self.join_count_at(round);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::from(i)
    }

    #[test]
    fn clean_plan_is_clean() {
        assert!(FaultPlan::default().is_clean());
        assert!(!FaultPlan::default().with_drop_prob(0.1).is_clean());
        assert!(!FaultPlan::default().with_crash(id(0), 3).is_clean());
    }

    #[test]
    fn validate_rejects_out_of_range_nodes() {
        assert!(FaultPlan::default()
            .with_crash(id(9), 1)
            .validate(4)
            .is_err());
        assert!(FaultPlan::default()
            .with_join(id(9), 1)
            .validate(4)
            .is_err());
        assert!(FaultPlan::default()
            .with_partition(vec![id(9)], 0, 5)
            .validate(4)
            .is_err());
        assert!(FaultPlan::default()
            .with_crash(id(3), 1)
            .validate(4)
            .is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_probabilities() {
        let plan = FaultPlan {
            drop_prob: 1.5,
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan {
            delay: Some(DelayModel {
                prob: 1.0,
                max_rounds: 0,
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan {
            delay: Some(DelayModel {
                prob: -0.1,
                max_rounds: 2,
            }),
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
    }

    #[test]
    fn validate_rejects_crash_before_join() {
        let plan = FaultPlan::default()
            .with_join(id(1), 5)
            .with_crash(id(1), 3);
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan::default()
            .with_join(id(1), 3)
            .with_crash(id(1), 7);
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn liveness_windows() {
        let plan = FaultPlan::default()
            .with_join(id(1), 3)
            .with_crash(id(1), 7);
        let router: FaultRouter<u8> = FaultRouter::new(&plan, 4, 1);
        assert!(!router.is_active(1, 0));
        assert!(!router.is_active(1, 2));
        assert!(router.is_active(1, 3));
        assert!(router.joins_at(1, 3));
        assert!(router.is_active(1, 6));
        assert!(!router.is_active(1, 7));
        assert!(router.is_crashed(1, 7));
        // Node 0 is always active.
        assert!(router.is_active(0, 0) && router.is_active(0, 100));
    }

    #[test]
    fn partition_cuts_cross_traffic_only_during_window() {
        let plan = FaultPlan::default().with_partition(vec![id(0), id(1)], 2, 5);
        let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 4, 1);
        // Cross-cut during the window: dropped.
        assert_eq!(
            router.route(id(0), id(2), 3),
            Route::Drop(DropReason::Partition)
        );
        assert_eq!(
            router.route(id(2), id(1), 2),
            Route::Drop(DropReason::Partition)
        );
        // Same side during the window: delivered.
        assert_eq!(router.route(id(0), id(1), 3), Route::Deliver);
        assert_eq!(router.route(id(2), id(3), 3), Route::Deliver);
        // Cross-cut outside the window: delivered.
        assert_eq!(router.route(id(0), id(2), 1), Route::Deliver);
        assert_eq!(router.route(id(0), id(2), 5), Route::Deliver);
    }

    #[test]
    fn messages_to_offline_nodes_are_dropped() {
        let plan = FaultPlan::default()
            .with_join(id(1), 4)
            .with_crash(id(2), 2);
        let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 4, 1);
        // Delivery at round 1 < join round 4.
        assert_eq!(
            router.route(id(0), id(1), 0),
            Route::Drop(DropReason::Offline)
        );
        // Delivery at round 4 == join round: the joiner runs `on_start` that
        // round and would never see the inbox, so the message is dropped too.
        assert_eq!(
            router.route(id(0), id(1), 3),
            Route::Drop(DropReason::Offline)
        );
        // Delivery at round 5, its first `on_round`: fine.
        assert_eq!(router.route(id(0), id(1), 4), Route::Deliver);
        // Delivery at round 2 == crash round: lost.
        assert_eq!(
            router.route(id(0), id(2), 1),
            Route::Drop(DropReason::Offline)
        );
        assert_eq!(router.route(id(0), id(2), 0), Route::Deliver);
    }

    #[test]
    fn drop_prob_one_loses_everything_and_zero_nothing() {
        let mut lossy: FaultRouter<u8> =
            FaultRouter::new(&FaultPlan::default().with_drop_prob(1.0), 2, 1);
        let mut clean: FaultRouter<u8> = FaultRouter::new(&FaultPlan::default(), 2, 1);
        for r in 0..50 {
            assert_eq!(lossy.route(id(0), id(1), r), Route::Drop(DropReason::Fault));
            assert_eq!(clean.route(id(0), id(1), r), Route::Deliver);
        }
    }

    #[test]
    fn delays_buffer_and_release() {
        let plan = FaultPlan::default().with_delays(1.0, 3);
        let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 2, 1);
        let mut seen = 0;
        for _ in 0..20 {
            match router.route(id(0), id(1), 10) {
                Route::Delay(r) => {
                    assert!((12..=14).contains(&r), "delay out of range: {r}");
                    router.buffer(
                        r,
                        id(1),
                        Envelope {
                            from: id(0),
                            channel: crate::Channel::Global,
                            payload: 0u8,
                        },
                    );
                    seen += 1;
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
        assert_eq!(seen, 20);
        assert!(router.has_in_flight());
        let total: usize = (12..=14).map(|r| router.take_due(r).len()).sum();
        assert_eq!(total, 20);
        assert!(!router.has_in_flight());
        assert!(router.take_due(15).is_empty());
    }

    #[test]
    fn drain_due_delivers_everything_and_recycles_the_buffer() {
        let plan = FaultPlan::default().with_delays(1.0, 1);
        let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 2, 1);
        let env = |payload: u8| Envelope {
            from: id(0),
            channel: crate::Channel::Global,
            payload,
        };
        for p in 0..5u8 {
            router.buffer(3, id(1), env(p));
        }
        let mut seen = Vec::new();
        router.drain_due(3, |to, e| seen.push((to, e.payload)));
        assert_eq!(seen.len(), 5);
        assert!(seen.iter().all(|(to, _)| *to == id(1)));
        assert!(!router.has_in_flight());
        // The emptied buffer is recycled: buffering for a fresh round reuses it
        // instead of allocating (observable via its retained capacity).
        assert_eq!(router.spare.len(), 1);
        let recycled_cap = router.spare[0].capacity();
        assert!(recycled_cap >= 5);
        router.buffer(7, id(1), env(9));
        assert!(router.spare.is_empty());
        assert!(router.delayed[&7].capacity() >= recycled_cap);
        // Draining a round with nothing due is a no-op.
        router.drain_due(4, |_, _| panic!("nothing is due at round 4"));
    }

    #[test]
    fn windowed_loss_spares_rounds_before_the_window() {
        let plan = FaultPlan::default().with_drop_prob_from(1.0, 5);
        let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 2, 1);
        for r in 0..5 {
            assert_eq!(router.route(id(0), id(1), r), Route::Deliver);
        }
        for r in 5..20 {
            assert_eq!(
                router.route(id(0), id(1), r),
                Route::Drop(DropReason::Fault)
            );
        }
    }

    #[test]
    fn unwindowed_loss_keeps_the_pre_window_rng_stream() {
        // `with_drop_prob` and `with_drop_prob_from(p, 0)` must be routing-identical:
        // the window check happens before the RNG roll, so a zero window consumes
        // exactly the same random sequence as the historical unconditional check.
        let route_all = |plan: FaultPlan| -> Vec<Route> {
            let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 4, 9);
            (0..200)
                .map(|i| router.route(id(i % 4), id((i + 1) % 4), i))
                .collect()
        };
        assert_eq!(
            route_all(FaultPlan::default().with_drop_prob(0.3)),
            route_all(FaultPlan::default().with_drop_prob_from(0.3, 0)),
        );
    }

    #[test]
    fn shifted_rebases_the_loss_window() {
        let plan = FaultPlan::default().with_drop_prob_from(0.2, 15);
        assert_eq!(plan.shifted(10).loss_from, 5);
        assert_eq!(plan.shifted(20).loss_from, 0);
        assert_eq!(plan.shifted(20).drop_prob, 0.2);
    }

    #[test]
    fn routing_is_deterministic_per_seed() {
        let plan = FaultPlan::default().with_drop_prob(0.3).with_delays(0.5, 4);
        let route_all = |seed: u64| -> Vec<Route> {
            let mut router: FaultRouter<u8> = FaultRouter::new(&plan, 8, seed);
            (0..200)
                .map(|i| router.route(id(i % 8), id((i + 1) % 8), i))
                .collect()
        };
        assert_eq!(route_all(7), route_all(7));
        assert_ne!(route_all(7), route_all(8));
    }

    #[test]
    fn shifted_rebases_the_timeline() {
        let plan = FaultPlan::default()
            .with_drop_prob(0.1)
            .with_crash(id(0), 5)
            .with_join(id(1), 3)
            .with_join(id(2), 12)
            .with_partition(vec![id(0)], 2, 6)
            .with_partition(vec![id(1)], 8, 14);
        let s = plan.shifted(10);
        assert_eq!(s.drop_prob, 0.1);
        // Crash already happened: pinned at round 0.
        assert_eq!(
            s.crashes,
            vec![CrashEvent {
                round: 0,
                node: id(0)
            }]
        );
        // Join at 3 already happened and disappears; join at 12 becomes 2.
        assert_eq!(
            s.joins,
            vec![JoinEvent {
                round: 2,
                node: id(2)
            }]
        );
        // First partition healed; second clipped to [0, 4).
        assert_eq!(s.partitions.len(), 1);
        assert_eq!(
            (s.partitions[0].from_round, s.partitions[0].heal_round),
            (0, 4)
        );
    }

    #[test]
    fn crash_round_zero_means_never_active() {
        let plan = FaultPlan::default().with_crash(id(1), 0);
        let router: FaultRouter<u8> = FaultRouter::new(&plan, 2, 1);
        assert!(!router.is_active(1, 0));
        assert!(!router.is_active(1, 50));
        assert!(router.is_active(0, 0));
    }
}
