//! The protocol trait and the per-round node context.

use crate::metrics::TransportCounters;
use overlay_graph::NodeId;
use rand::rngs::StdRng;

/// Which kind of edge a message travels over.
///
/// The NCC0 model only uses [`Channel::Global`]; the hybrid model distinguishes local
/// (CONGEST, initial-graph) edges from global (overlay) messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Channel {
    /// A local edge of the initial graph (CONGEST discipline in the hybrid model).
    Local,
    /// A global / overlay message addressed by identifier.
    Global,
}

/// A delivered message together with its sender and channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The channel the message travelled over.
    pub channel: Channel,
    /// The message itself.
    pub payload: M,
}

/// The interface of a distributed protocol: one state machine per node, advanced one
/// synchronous round at a time.
///
/// Implementations must only communicate through the [`Ctx`] passed to the callbacks;
/// they must not share state between nodes (the simulator owns each node's state
/// exclusively, so the compiler enforces this).
///
/// `Send` is a supertrait (and `Send + Sync` is required of the message type) so
/// the simulator may step disjoint groups of nodes on different worker threads
/// within a round (see [`crate::runtime::ParallelismConfig`]). Protocol state is
/// plain owned data — per-node RNGs, identifiers, buffers — so this costs
/// implementations nothing; it only rules out sharing thread-bound handles
/// (`Rc`, `RefCell`) inside node state, which the model forbids anyway.
pub trait Protocol: Send {
    /// The message type exchanged by this protocol. Each message must fit in
    /// `O(log n)` bits, i.e. carry at most a constant number of identifiers.
    type Message: Clone + std::fmt::Debug + Send + Sync;

    /// Called once before the first round; typically used to send initial messages.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// Called once per round with all messages delivered at the beginning of the round.
    ///
    /// The inbox is a slice into the simulator's per-round envelope arena (see
    /// [`crate::runtime::EnvelopeArena`]); it is only valid for the duration of the
    /// callback, so implementations copy out what they keep. Messages are
    /// `O(log n)`-bit values, so copying a payload costs the same as moving it.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Message>, inbox: &[Envelope<Self::Message>]);

    /// Returns `true` once this node has terminated. The simulation stops when every
    /// node is done (or the round limit is reached).
    fn is_done(&self) -> bool {
        false
    }
}

/// The per-round context handed to a node: who it is, which round it is, how many nodes
/// exist, its private RNG, and its outbox.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    pub(crate) me: NodeId,
    pub(crate) round: usize,
    pub(crate) n: usize,
    pub(crate) rng: &'a mut StdRng,
    /// The whole round's shared outbox buffer; this node's messages start at `base`.
    pub(crate) outbox: &'a mut Vec<(NodeId, Channel, M)>,
    /// Index into `outbox` where this node's messages begin (the buffer is shared
    /// across all nodes of a round so it can be reused without reallocation).
    pub(crate) base: usize,
    /// Transport-overhead counters reported by reliable-delivery adapters this
    /// callback; the simulator folds them into the round's metrics afterwards.
    pub(crate) transport: TransportCounters,
}

impl<'a, M> Ctx<'a, M> {
    /// Builds a context for an *external* runner — a round executor other than
    /// [`crate::Simulator`], such as the socket-backed runners in the
    /// `overlay-net` crate — that owns its own per-node outbox.
    ///
    /// The constructed context behaves exactly like the one the simulator
    /// hands to callbacks, with this node's messages starting at the current
    /// end of `outbox`. External runners that replicate the simulator's
    /// delivery order and [`crate::runtime::node_rng`] seeding therefore drive
    /// protocols through bit-identical state trajectories.
    pub fn external(
        me: NodeId,
        round: usize,
        n: usize,
        rng: &'a mut StdRng,
        outbox: &'a mut Vec<(NodeId, Channel, M)>,
    ) -> Self {
        Ctx {
            me,
            round,
            n,
            base: outbox.len(),
            rng,
            outbox,
            transport: TransportCounters::default(),
        }
    }

    /// The transport-overhead counters reported by adapters during this
    /// callback (external runners fold these into their own metrics; the
    /// simulator reads the field directly).
    pub fn transport_counters(&self) -> TransportCounters {
        self.transport
    }

    /// The identifier of the executing node.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The current round number (the start callback runs in round 0).
    pub fn round(&self) -> usize {
        self.round
    }

    /// The total number of nodes `n`. The paper only requires nodes to know an upper
    /// bound `L ≥ log n` with `L = O(log n)`; protocols in this workspace only ever use
    /// [`Ctx::log_n`], but `n` is exposed for harness-side assertions.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The upper bound `L = ⌈log₂ n⌉ ≥ log n` that all nodes know.
    pub fn log_n(&self) -> usize {
        crate::caps::log2_ceil(self.n).max(1)
    }

    /// The node's private, deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Queues a message to `to` over a global (overlay) edge. The recipient must be a
    /// node whose identifier this node knows; the simulator does not check this (it
    /// cannot), but protocols in this workspace only ever address identifiers they
    /// received in messages or knew initially, as the model requires.
    pub fn send_global(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, Channel::Global, msg));
    }

    /// Queues a message to `to` over a local edge of the initial graph (hybrid model
    /// only; in the NCC0 model use [`Ctx::send_global`]).
    pub fn send_local(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, Channel::Local, msg));
    }

    /// Queues a message over an explicitly chosen channel.
    pub fn send(&mut self, to: NodeId, channel: Channel, msg: M) {
        self.outbox.push((to, channel, msg));
    }

    /// Number of messages queued so far this round by *this* node.
    pub fn queued(&self) -> usize {
        self.outbox.len() - self.base
    }

    /// Re-borrows this context for a *wrapped* protocol exchanging a different
    /// message type, writing into the adapter-owned `outbox` instead of the
    /// simulator's shared one.
    ///
    /// This is the seam protocol adapters (e.g. the `overlay-transport` crate's
    /// `Reliable<P>`) are built on: the adapter runs the inner protocol against the
    /// derived context, then translates the collected inner messages into its own
    /// wire format on the outer context. The derived context shares the node's RNG
    /// (so the inner protocol's random stream is exactly what it would be without
    /// the adapter), identity, round number and `n`; its transport counters are
    /// separate and discarded — adapters report overhead on the *outer* context.
    pub fn derived<'b, N>(&'b mut self, outbox: &'b mut Vec<(NodeId, Channel, N)>) -> Ctx<'b, N> {
        Ctx {
            me: self.me,
            round: self.round,
            n: self.n,
            rng: self.rng,
            base: outbox.len(),
            outbox,
            transport: TransportCounters::default(),
        }
    }

    /// Records one transport-layer retransmission (for reliable-delivery adapters;
    /// folded into [`crate::RoundMetrics::retransmits`]).
    pub fn note_retransmit(&mut self) {
        self.transport.retransmits += 1;
    }

    /// Records one transport-layer acknowledgment message sent (folded into
    /// [`crate::RoundMetrics::acks`]).
    pub fn note_ack(&mut self) {
        self.transport.acks += 1;
    }

    /// Records one duplicate payload suppressed before it reached the wrapped
    /// protocol (folded into [`crate::RoundMetrics::dupes_dropped`]).
    pub fn note_dupe_dropped(&mut self) {
        self.transport.dupes_dropped += 1;
    }

    /// Records one payload abandoned after its retransmission budget ran out
    /// (folded into [`crate::RoundMetrics::give_ups`]).
    pub fn note_give_up(&mut self) {
        self.transport.give_ups += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ctx_accessors_and_send() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox = Vec::new();
        let mut ctx: Ctx<'_, u32> = Ctx {
            me: NodeId::from(3usize),
            round: 5,
            n: 1000,
            rng: &mut rng,
            outbox: &mut outbox,
            base: 0,
            transport: TransportCounters::default(),
        };
        assert_eq!(ctx.me(), NodeId::from(3usize));
        assert_eq!(ctx.round(), 5);
        assert_eq!(ctx.n(), 1000);
        assert_eq!(ctx.log_n(), 10);
        ctx.send_global(NodeId::from(1usize), 42);
        ctx.send_local(NodeId::from(2usize), 43);
        ctx.send(NodeId::from(4usize), Channel::Global, 44);
        assert_eq!(ctx.queued(), 3);
        assert_eq!(outbox[0], (NodeId::from(1usize), Channel::Global, 42));
        assert_eq!(outbox[1], (NodeId::from(2usize), Channel::Local, 43));
    }

    #[test]
    fn log_n_is_at_least_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut outbox: Vec<(NodeId, Channel, u8)> = Vec::new();
        let ctx: Ctx<'_, u8> = Ctx {
            me: NodeId::from(0usize),
            round: 0,
            n: 1,
            rng: &mut rng,
            outbox: &mut outbox,
            base: 0,
            transport: TransportCounters::default(),
        };
        assert_eq!(ctx.log_n(), 1);
    }

    #[test]
    fn queued_counts_only_past_the_base() {
        let mut rng = StdRng::seed_from_u64(1);
        // Two messages queued by an earlier node of the same round.
        let mut outbox = vec![
            (NodeId::from(0usize), Channel::Global, 1u32),
            (NodeId::from(0usize), Channel::Global, 2u32),
        ];
        let mut ctx: Ctx<'_, u32> = Ctx {
            me: NodeId::from(1usize),
            round: 1,
            n: 4,
            rng: &mut rng,
            outbox: &mut outbox,
            base: 2,
            transport: TransportCounters::default(),
        };
        assert_eq!(ctx.queued(), 0);
        ctx.send_global(NodeId::from(2usize), 3);
        assert_eq!(ctx.queued(), 1);
        assert_eq!(outbox.len(), 3);
    }
}
