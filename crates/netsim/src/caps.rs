//! Communication capacity models.

/// The per-round communication limits enforced by the simulator.
///
/// All limits are in *messages*; every message is assumed to be `O(log n)` bits (a
/// constant number of identifiers plus constant bookkeeping), which the protocols in
/// this workspace respect by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CapacityModel {
    /// No limits. Used by reference protocols (e.g. pointer jumping) to demonstrate
    /// what unbounded communication would cost.
    #[default]
    Unbounded,
    /// The NCC0 model: every node may send at most `per_round` messages and receive at
    /// most `per_round` messages per round. Excess received messages are dropped (a
    /// seeded arbitrary subset of size `per_round` is kept); excess sends are dropped at
    /// the sender and counted separately, since a correct NCC0 algorithm never attempts
    /// them.
    Ncc0 {
        /// Per-node, per-round send and receive budget, `Θ(log n)` in the paper.
        per_round: usize,
    },
    /// The hybrid model: CONGEST on the local edges (at most `local_per_edge` messages
    /// per local edge per direction per round) plus `global_per_round` global messages
    /// sent and received per node per round.
    Hybrid {
        /// Messages allowed per local edge per direction per round (1 in CONGEST).
        local_per_edge: usize,
        /// Per-node, per-round global send and receive budget (polylogarithmic).
        global_per_round: usize,
    },
}

impl CapacityModel {
    /// The standard NCC0 capacity for a graph of `n` nodes: `factor · ⌈log₂ n⌉`.
    pub fn ncc0_for(n: usize, factor: usize) -> Self {
        CapacityModel::Ncc0 {
            per_round: factor * log2_ceil(n).max(1),
        }
    }

    /// The standard hybrid capacity for a graph of `n` nodes: CONGEST local edges and
    /// `factor · ⌈log₂ n⌉³` global messages per round.
    pub fn hybrid_for(n: usize, factor: usize) -> Self {
        let l = log2_ceil(n).max(1);
        CapacityModel::Hybrid {
            local_per_edge: 1,
            global_per_round: factor * l * l * l,
        }
    }

    /// The send/receive cap applied to global (overlay) messages, if any.
    pub fn global_cap(&self) -> Option<usize> {
        match self {
            CapacityModel::Unbounded => None,
            CapacityModel::Ncc0 { per_round } => Some(*per_round),
            CapacityModel::Hybrid {
                global_per_round, ..
            } => Some(*global_per_round),
        }
    }

    /// The per-edge cap applied to local messages, if the model distinguishes them.
    pub fn local_edge_cap(&self) -> Option<usize> {
        match self {
            CapacityModel::Hybrid { local_per_edge, .. } => Some(*local_per_edge),
            _ => None,
        }
    }
}

/// `⌈log₂ n⌉` with `log2_ceil(0) == 0` and `log2_ceil(1) == 0`.
pub fn log2_ceil(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn ncc0_cap_scales_with_log_n() {
        let c = CapacityModel::ncc0_for(1024, 4);
        assert_eq!(c.global_cap(), Some(40));
        assert_eq!(c.local_edge_cap(), None);
    }

    #[test]
    fn hybrid_cap_is_polylog() {
        let c = CapacityModel::hybrid_for(256, 2);
        assert_eq!(c.global_cap(), Some(2 * 8 * 8 * 8));
        assert_eq!(c.local_edge_cap(), Some(1));
    }

    #[test]
    fn unbounded_has_no_caps() {
        assert_eq!(CapacityModel::Unbounded.global_cap(), None);
        assert_eq!(CapacityModel::default(), CapacityModel::Unbounded);
    }

    #[test]
    fn tiny_graphs_get_positive_caps() {
        assert_eq!(CapacityModel::ncc0_for(1, 3).global_cap(), Some(3));
    }
}
