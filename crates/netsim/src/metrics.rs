//! Per-round and per-run communication metrics.
//!
//! The experiments of this reproduction are about *model-level* costs: how many rounds
//! an algorithm takes and how many messages each node sends and receives per round.
//! The simulator records those quantities here.
//!
//! # Drop-cause and counter glossary
//!
//! A message that is sent but never reaches its recipient's protocol callback is
//! counted in exactly one of these buckets (the trace layer's
//! [`crate::trace::DropCause`] uses the same taxonomy, with the send-side bucket
//! split by cause):
//!
//! | Counter | Cause | Trace label |
//! |---|---|---|
//! | [`RoundMetrics::dropped_send`] | sender exceeded its per-round global send cap, a local message violated the CONGEST edge discipline, or the recipient id names no node | `send-cap`, `invalid-address` |
//! | [`RoundMetrics::dropped_receive`] | receiver's per-round global receive cap evicted a random subset of its inbox | `receive-cap` |
//! | [`RoundMetrics::dropped_fault`] | injected random loss ([`crate::FaultPlan::drop_prob`]) | `fault` |
//! | [`RoundMetrics::dropped_partition`] | an active partition separates sender and receiver | `partition` |
//! | [`RoundMetrics::dropped_offline`] | recipient is crashed or has not joined yet | `offline` |
//!
//! `delayed` is *not* a drop: a delayed message is re-counted as `delivered` in
//! its actual delivery round (unless the run ends first).
//!
//! Transport-overhead counters (`retransmits`, `acks`, `dupes_dropped`,
//! `give_ups`) are reported by reliable-delivery adapters via the
//! [`crate::Ctx::note_retransmit`]-family hooks and are all zero for bare
//! protocols. `dupes_dropped` payloads *do* appear in `delivered` — the network
//! carried them, the transport suppressed them. `give_ups` counts payloads
//! abandoned after the adapter's retransmission budget was exhausted (the peer
//! is presumed dead).

/// Communication counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Maximum number of messages any single node sent this round (local + global).
    pub max_sent: usize,
    /// Maximum number of messages any single node received this round (after drops).
    pub max_received: usize,
    /// Maximum number of *global* messages any single node sent this round.
    pub max_global_sent: usize,
    /// Maximum number of *global* messages any single node received this round.
    pub max_global_received: usize,
    /// Total messages delivered this round.
    pub delivered: usize,
    /// Messages dropped because a receiver exceeded its receive cap.
    pub dropped_receive: usize,
    /// Messages dropped because a sender exceeded its send cap (or the per-edge CONGEST
    /// cap for local messages).
    pub dropped_send: usize,
    /// Messages lost to injected random loss (see [`crate::FaultPlan::drop_prob`]).
    pub dropped_fault: usize,
    /// Messages blocked by an active partition.
    pub dropped_partition: usize,
    /// Messages addressed to a crashed or not-yet-joined node.
    pub dropped_offline: usize,
    /// Messages held back by an injected delivery delay this round (counted at send
    /// time; they appear in `delivered` in their actual delivery round — unless the
    /// run stops first, in which case this is the only counter that saw them).
    pub delayed: usize,
    /// Nodes that crashed at the start of this round.
    pub crashed: usize,
    /// Nodes that joined at the start of this round.
    pub joined: usize,
    /// Transport-layer retransmissions performed this round (reported by reliable
    /// protocol adapters via [`crate::Ctx::note_retransmit`]; zero for bare
    /// protocols).
    pub retransmits: usize,
    /// Transport-layer acknowledgment messages sent this round (via
    /// [`crate::Ctx::note_ack`]).
    pub acks: usize,
    /// Duplicate payloads suppressed by a transport layer this round (via
    /// [`crate::Ctx::note_dupe_dropped`]). These messages appear in `delivered`
    /// (the network did carry them) but never reached the wrapped protocol.
    pub dupes_dropped: usize,
    /// Payloads abandoned by a transport layer this round after exhausting their
    /// retransmission budget (via [`crate::Ctx::note_give_up`]).
    pub give_ups: usize,
}

impl RoundMetrics {
    /// Folds one node's per-round transport counters into this round's totals.
    pub(crate) fn absorb_transport(&mut self, t: &TransportCounters) {
        self.retransmits += t.retransmits;
        self.acks += t.acks;
        self.dupes_dropped += t.dupes_dropped;
        self.give_ups += t.give_ups;
    }
}

/// Per-callback transport-overhead counters, accumulated on [`crate::Ctx`] by
/// reliable-delivery adapters (see the `overlay-transport` crate) and folded into
/// [`RoundMetrics`] by the simulator after each callback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Data messages re-sent because no acknowledgment arrived in time.
    pub retransmits: usize,
    /// Acknowledgment messages sent.
    pub acks: usize,
    /// Duplicate payloads suppressed before reaching the wrapped protocol.
    pub dupes_dropped: usize,
    /// Payloads abandoned after their retransmission budget ran out.
    pub give_ups: usize,
}

/// Aggregated communication counters for a whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of rounds recorded in `per_round`, including the start round (round 0).
    /// Kept in lockstep with `per_round.len()` by the simulator on *every* path —
    /// the start callback as well as each message round — so a run that ends before
    /// its first message round (round budget 0) still reports its recorded round.
    pub rounds: usize,
    /// Per-round metrics, in order.
    pub per_round: Vec<RoundMetrics>,
    /// Total messages sent per node over the whole run.
    pub total_sent_per_node: Vec<u64>,
    /// Total *global* messages sent per node over the whole run.
    pub total_global_sent_per_node: Vec<u64>,
}

impl RunMetrics {
    /// Creates empty metrics for `n` nodes.
    pub fn new(n: usize) -> Self {
        RunMetrics {
            rounds: 0,
            per_round: Vec::new(),
            total_sent_per_node: vec![0; n],
            total_global_sent_per_node: vec![0; n],
        }
    }

    /// The largest per-node, per-round send count observed in any round.
    pub fn max_sent_in_any_round(&self) -> usize {
        self.per_round.iter().map(|r| r.max_sent).max().unwrap_or(0)
    }

    /// The largest per-node, per-round receive count observed in any round.
    pub fn max_received_in_any_round(&self) -> usize {
        self.per_round
            .iter()
            .map(|r| r.max_received)
            .max()
            .unwrap_or(0)
    }

    /// The largest per-node, per-round *global* message count (max of send and receive)
    /// observed in any round. This is the "global capacity" the hybrid theorems bound.
    pub fn max_global_in_any_round(&self) -> usize {
        self.per_round
            .iter()
            .map(|r| r.max_global_sent.max(r.max_global_received))
            .max()
            .unwrap_or(0)
    }

    /// Total messages delivered over the whole run.
    pub fn total_delivered(&self) -> u64 {
        self.per_round.iter().map(|r| r.delivered as u64).sum()
    }

    /// Total messages dropped at receivers over the whole run (should be zero for
    /// protocols that respect the w.h.p. bounds of the paper).
    pub fn total_dropped_receive(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.dropped_receive as u64)
            .sum()
    }

    /// Total messages dropped at senders over the whole run.
    pub fn total_dropped_send(&self) -> u64 {
        self.per_round.iter().map(|r| r.dropped_send as u64).sum()
    }

    /// Total messages lost to injected random loss over the whole run.
    pub fn total_dropped_fault(&self) -> u64 {
        self.per_round.iter().map(|r| r.dropped_fault as u64).sum()
    }

    /// Total messages blocked by partitions over the whole run.
    pub fn total_dropped_partition(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.dropped_partition as u64)
            .sum()
    }

    /// Total messages addressed to offline (crashed / not yet joined) nodes.
    pub fn total_dropped_offline(&self) -> u64 {
        self.per_round
            .iter()
            .map(|r| r.dropped_offline as u64)
            .sum()
    }

    /// Total messages that suffered an injected delivery delay.
    pub fn total_delayed(&self) -> u64 {
        self.per_round.iter().map(|r| r.delayed as u64).sum()
    }

    /// Total number of crash events executed over the whole run.
    pub fn total_crashed(&self) -> usize {
        self.per_round.iter().map(|r| r.crashed).sum()
    }

    /// Total number of join events executed over the whole run.
    pub fn total_joined(&self) -> usize {
        self.per_round.iter().map(|r| r.joined).sum()
    }

    /// Total transport-layer retransmissions over the whole run (zero unless the
    /// protocols run behind a reliable-delivery adapter).
    pub fn total_retransmits(&self) -> u64 {
        self.per_round.iter().map(|r| r.retransmits as u64).sum()
    }

    /// Total transport-layer acknowledgment messages over the whole run.
    pub fn total_acks(&self) -> u64 {
        self.per_round.iter().map(|r| r.acks as u64).sum()
    }

    /// Total duplicate payloads suppressed by a transport layer over the whole run.
    pub fn total_dupes_dropped(&self) -> u64 {
        self.per_round.iter().map(|r| r.dupes_dropped as u64).sum()
    }

    /// Total payloads abandoned by a transport layer over the whole run.
    pub fn total_give_ups(&self) -> u64 {
        self.per_round.iter().map(|r| r.give_ups as u64).sum()
    }

    /// The maximum total number of messages any single node sent over the whole run
    /// (the paper bounds this by `O(log² n)` for the main algorithm).
    pub fn max_total_sent_per_node(&self) -> u64 {
        self.total_sent_per_node.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics() {
        let m = RunMetrics::new(3);
        assert_eq!(m.rounds, 0);
        assert_eq!(m.max_sent_in_any_round(), 0);
        assert_eq!(m.total_delivered(), 0);
        assert_eq!(m.max_total_sent_per_node(), 0);
    }

    #[test]
    fn aggregation_over_rounds() {
        let mut m = RunMetrics::new(2);
        m.per_round.push(RoundMetrics {
            max_sent: 3,
            max_received: 2,
            max_global_sent: 3,
            max_global_received: 1,
            delivered: 5,
            dropped_receive: 1,
            dropped_send: 0,
            dropped_fault: 2,
            dropped_partition: 1,
            dropped_offline: 0,
            delayed: 3,
            crashed: 1,
            joined: 0,
            retransmits: 2,
            acks: 4,
            dupes_dropped: 1,
            give_ups: 1,
        });
        m.per_round.push(RoundMetrics {
            max_sent: 1,
            max_received: 4,
            max_global_sent: 0,
            max_global_received: 4,
            delivered: 4,
            dropped_receive: 0,
            dropped_send: 2,
            dropped_fault: 0,
            dropped_partition: 2,
            dropped_offline: 4,
            delayed: 0,
            crashed: 0,
            joined: 2,
            retransmits: 1,
            acks: 3,
            dupes_dropped: 0,
            give_ups: 2,
        });
        m.total_sent_per_node = vec![7, 2];
        assert_eq!(m.max_sent_in_any_round(), 3);
        assert_eq!(m.max_received_in_any_round(), 4);
        assert_eq!(m.max_global_in_any_round(), 4);
        assert_eq!(m.total_delivered(), 9);
        assert_eq!(m.total_dropped_receive(), 1);
        assert_eq!(m.total_dropped_send(), 2);
        assert_eq!(m.total_dropped_fault(), 2);
        assert_eq!(m.total_dropped_partition(), 3);
        assert_eq!(m.total_dropped_offline(), 4);
        assert_eq!(m.total_delayed(), 3);
        assert_eq!(m.total_crashed(), 1);
        assert_eq!(m.total_joined(), 2);
        assert_eq!(m.max_total_sent_per_node(), 7);
        assert_eq!(m.total_retransmits(), 3);
        assert_eq!(m.total_acks(), 7);
        assert_eq!(m.total_dupes_dropped(), 1);
        assert_eq!(m.total_give_ups(), 3);
    }

    #[test]
    fn transport_counters_fold_into_round_metrics() {
        let mut r = RoundMetrics::default();
        r.absorb_transport(&TransportCounters {
            retransmits: 2,
            acks: 1,
            dupes_dropped: 3,
            give_ups: 4,
        });
        r.absorb_transport(&TransportCounters::default());
        assert_eq!(
            (r.retransmits, r.acks, r.dupes_dropped, r.give_ups),
            (2, 1, 3, 4)
        );
    }
}
