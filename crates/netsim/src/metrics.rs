//! Per-round and per-run communication metrics.
//!
//! The experiments of this reproduction are about *model-level* costs: how many rounds
//! an algorithm takes and how many messages each node sends and receives per round.
//! The simulator records those quantities here.
//!
//! # Drop-cause and counter glossary
//!
//! A message that is sent but never reaches its recipient's protocol callback is
//! counted in exactly one of these buckets (the trace layer's
//! [`crate::trace::DropCause`] uses the same taxonomy, with the send-side bucket
//! split by cause):
//!
//! | Counter | Cause | Trace label |
//! |---|---|---|
//! | [`RoundMetrics::dropped_send`] | sender exceeded its per-round global send cap, a local message violated the CONGEST edge discipline, or the recipient id names no node | `send-cap`, `invalid-address` |
//! | [`RoundMetrics::dropped_receive`] | receiver's per-round global receive cap evicted a random subset of its inbox | `receive-cap` |
//! | [`RoundMetrics::dropped_fault`] | injected random loss ([`crate::FaultPlan::drop_prob`]) | `fault` |
//! | [`RoundMetrics::dropped_partition`] | an active partition separates sender and receiver | `partition` |
//! | [`RoundMetrics::dropped_offline`] | recipient is crashed or has not joined yet | `offline` |
//!
//! `delayed` is *not* a drop: a delayed message is re-counted as `delivered` in
//! its actual delivery round (unless the run ends first).
//!
//! Transport-overhead counters (`retransmits`, `acks`, `dupes_dropped`,
//! `give_ups`) are reported by reliable-delivery adapters via the
//! [`crate::Ctx::note_retransmit`]-family hooks and are all zero for bare
//! protocols. `dupes_dropped` payloads *do* appear in `delivered` — the network
//! carried them, the transport suppressed them. `give_ups` counts payloads
//! abandoned after the adapter's retransmission budget was exhausted (the peer
//! is presumed dead).
//!
//! # Memory modes
//!
//! [`RunMetrics`] records one [`RoundMetrics`] per round via
//! [`RunMetrics::record_round`]. How much of that history is *retained* is
//! governed by [`MetricsMode`]:
//!
//! * [`MetricsMode::Full`] (the default) keeps every round in
//!   [`RunMetrics::per_round`] — O(rounds) memory, full post-hoc analysis.
//! * [`MetricsMode::Rollup`] keeps only streaming aggregates plus a ring of the
//!   last `window` rounds — O(window) memory, for long-horizon runs at large
//!   `n` (e.g. the scaling harness) where buffering every round is wasteful.
//!
//! Every total/peak accessor (`total_*`, `max_*_in_any_round`,
//! [`RunMetrics::first_round_crashed`]) reads *streaming* aggregates that are
//! maintained identically in both modes, so the reported numbers are
//! mode-independent by construction (unit-tested in this module). Only the
//! retained history ([`RunMetrics::per_round`] /
//! [`RunMetrics::recent_rounds`]) differs.

use std::collections::VecDeque;

/// Communication counters for a single round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundMetrics {
    /// Maximum number of messages any single node sent this round (local + global).
    pub max_sent: usize,
    /// Maximum number of messages any single node received this round (after drops).
    pub max_received: usize,
    /// Maximum number of *global* messages any single node sent this round.
    pub max_global_sent: usize,
    /// Maximum number of *global* messages any single node received this round.
    pub max_global_received: usize,
    /// Total messages delivered this round.
    pub delivered: usize,
    /// Messages dropped because a receiver exceeded its receive cap.
    pub dropped_receive: usize,
    /// Messages dropped because a sender exceeded its send cap (or the per-edge CONGEST
    /// cap for local messages).
    pub dropped_send: usize,
    /// Messages lost to injected random loss (see [`crate::FaultPlan::drop_prob`]).
    pub dropped_fault: usize,
    /// Messages blocked by an active partition.
    pub dropped_partition: usize,
    /// Messages addressed to a crashed or not-yet-joined node.
    pub dropped_offline: usize,
    /// Messages held back by an injected delivery delay this round (counted at send
    /// time; they appear in `delivered` in their actual delivery round — unless the
    /// run stops first, in which case this is the only counter that saw them).
    pub delayed: usize,
    /// Nodes that crashed at the start of this round.
    pub crashed: usize,
    /// Nodes that joined at the start of this round.
    pub joined: usize,
    /// Transport-layer retransmissions performed this round (reported by reliable
    /// protocol adapters via [`crate::Ctx::note_retransmit`]; zero for bare
    /// protocols).
    pub retransmits: usize,
    /// Transport-layer acknowledgment messages sent this round (via
    /// [`crate::Ctx::note_ack`]).
    pub acks: usize,
    /// Duplicate payloads suppressed by a transport layer this round (via
    /// [`crate::Ctx::note_dupe_dropped`]). These messages appear in `delivered`
    /// (the network did carry them) but never reached the wrapped protocol.
    pub dupes_dropped: usize,
    /// Payloads abandoned by a transport layer this round after exhausting their
    /// retransmission budget (via [`crate::Ctx::note_give_up`]).
    pub give_ups: usize,
}

impl RoundMetrics {
    /// Folds one node's per-round transport counters into this round's totals.
    pub(crate) fn absorb_transport(&mut self, t: &TransportCounters) {
        self.retransmits += t.retransmits;
        self.acks += t.acks;
        self.dupes_dropped += t.dupes_dropped;
        self.give_ups += t.give_ups;
    }
}

/// Per-callback transport-overhead counters, accumulated on [`crate::Ctx`] by
/// reliable-delivery adapters (see the `overlay-transport` crate) and folded into
/// [`RoundMetrics`] by the simulator after each callback.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportCounters {
    /// Data messages re-sent because no acknowledgment arrived in time.
    pub retransmits: usize,
    /// Acknowledgment messages sent.
    pub acks: usize,
    /// Duplicate payloads suppressed before reaching the wrapped protocol.
    pub dupes_dropped: usize,
    /// Payloads abandoned after their retransmission budget ran out.
    pub give_ups: usize,
}

/// How a [`RunMetrics`] retains per-round history. Aggregate accessors are
/// mode-independent (see the module docs); only the retained history differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MetricsMode {
    /// Keep every round's [`RoundMetrics`] in [`RunMetrics::per_round`].
    #[default]
    Full,
    /// Keep streaming aggregate totals plus a ring of the most recent rounds.
    Rollup {
        /// Number of most-recent rounds retained (`0` keeps aggregates only).
        window: usize,
    },
}

/// Streaming aggregates maintained by [`RunMetrics::record_round`] in both
/// metrics modes; the source of truth for every total/peak accessor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct RunningTotals {
    max_sent: usize,
    max_received: usize,
    max_global: usize,
    delivered: u64,
    dropped_receive: u64,
    dropped_send: u64,
    dropped_fault: u64,
    dropped_partition: u64,
    dropped_offline: u64,
    delayed: u64,
    crashed: usize,
    joined: usize,
    retransmits: u64,
    acks: u64,
    dupes_dropped: u64,
    give_ups: u64,
    first_round_crashed: usize,
}

impl RunningTotals {
    fn absorb(&mut self, r: &RoundMetrics, is_first_round: bool) {
        if is_first_round {
            self.first_round_crashed = r.crashed;
        }
        self.max_sent = self.max_sent.max(r.max_sent);
        self.max_received = self.max_received.max(r.max_received);
        self.max_global = self
            .max_global
            .max(r.max_global_sent.max(r.max_global_received));
        self.delivered += r.delivered as u64;
        self.dropped_receive += r.dropped_receive as u64;
        self.dropped_send += r.dropped_send as u64;
        self.dropped_fault += r.dropped_fault as u64;
        self.dropped_partition += r.dropped_partition as u64;
        self.dropped_offline += r.dropped_offline as u64;
        self.delayed += r.delayed as u64;
        self.crashed += r.crashed;
        self.joined += r.joined;
        self.retransmits += r.retransmits as u64;
        self.acks += r.acks as u64;
        self.dupes_dropped += r.dupes_dropped as u64;
        self.give_ups += r.give_ups as u64;
    }
}

/// Aggregated communication counters for a whole run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Number of rounds recorded, including the start round (round 0). Kept in
    /// lockstep by [`RunMetrics::record_round`] on *every* path — the start
    /// callback as well as each message round — so a run that ends before its
    /// first message round (round budget 0) still reports its recorded round.
    pub rounds: usize,
    /// Per-round metrics, in order — every round in [`MetricsMode::Full`],
    /// empty in [`MetricsMode::Rollup`] (use [`RunMetrics::recent_rounds`]).
    pub per_round: Vec<RoundMetrics>,
    /// Total messages sent per node over the whole run.
    pub total_sent_per_node: Vec<u64>,
    /// Total *global* messages sent per node over the whole run.
    pub total_global_sent_per_node: Vec<u64>,
    mode: MetricsMode,
    totals: RunningTotals,
    recent: VecDeque<RoundMetrics>,
}

impl RunMetrics {
    /// Creates empty metrics for `n` nodes in [`MetricsMode::Full`].
    pub fn new(n: usize) -> Self {
        RunMetrics::with_mode(n, MetricsMode::Full)
    }

    /// Creates empty metrics for `n` nodes with the given retention mode.
    pub fn with_mode(n: usize, mode: MetricsMode) -> Self {
        RunMetrics {
            rounds: 0,
            per_round: Vec::new(),
            total_sent_per_node: vec![0; n],
            total_global_sent_per_node: vec![0; n],
            mode,
            totals: RunningTotals::default(),
            recent: VecDeque::new(),
        }
    }

    /// The retention mode these metrics were created with.
    pub fn mode(&self) -> MetricsMode {
        self.mode
    }

    /// Records one finished round: folds it into the streaming aggregates (both
    /// modes) and retains it according to the [`MetricsMode`].
    pub fn record_round(&mut self, round: RoundMetrics) {
        self.totals.absorb(&round, self.rounds == 0);
        self.rounds += 1;
        match self.mode {
            MetricsMode::Full => self.per_round.push(round),
            MetricsMode::Rollup { window } => {
                if window == 0 {
                    return;
                }
                if self.recent.len() == window {
                    self.recent.pop_front();
                }
                self.recent.push_back(round);
            }
        }
    }

    /// The retained per-round history, oldest first: every round in
    /// [`MetricsMode::Full`], the last `window` rounds in
    /// [`MetricsMode::Rollup`].
    pub fn recent_rounds(&self) -> impl Iterator<Item = &RoundMetrics> {
        self.per_round.iter().chain(self.recent.iter())
    }

    /// The largest per-node, per-round send count observed in any round.
    pub fn max_sent_in_any_round(&self) -> usize {
        self.totals.max_sent
    }

    /// The largest per-node, per-round receive count observed in any round.
    pub fn max_received_in_any_round(&self) -> usize {
        self.totals.max_received
    }

    /// The largest per-node, per-round *global* message count (max of send and receive)
    /// observed in any round. This is the "global capacity" the hybrid theorems bound.
    pub fn max_global_in_any_round(&self) -> usize {
        self.totals.max_global
    }

    /// Total messages delivered over the whole run.
    pub fn total_delivered(&self) -> u64 {
        self.totals.delivered
    }

    /// Total messages dropped at receivers over the whole run (should be zero for
    /// protocols that respect the w.h.p. bounds of the paper).
    pub fn total_dropped_receive(&self) -> u64 {
        self.totals.dropped_receive
    }

    /// Total messages dropped at senders over the whole run.
    pub fn total_dropped_send(&self) -> u64 {
        self.totals.dropped_send
    }

    /// Total messages lost to injected random loss over the whole run.
    pub fn total_dropped_fault(&self) -> u64 {
        self.totals.dropped_fault
    }

    /// Total messages blocked by partitions over the whole run.
    pub fn total_dropped_partition(&self) -> u64 {
        self.totals.dropped_partition
    }

    /// Total messages addressed to offline (crashed / not yet joined) nodes.
    pub fn total_dropped_offline(&self) -> u64 {
        self.totals.dropped_offline
    }

    /// Total messages that suffered an injected delivery delay.
    pub fn total_delayed(&self) -> u64 {
        self.totals.delayed
    }

    /// Total number of crash events executed over the whole run.
    pub fn total_crashed(&self) -> usize {
        self.totals.crashed
    }

    /// Number of crash events executed in the *first recorded round* (round 0).
    /// Pipeline harnesses use this to tell crashes inherited from a previous
    /// phase (pinned at round 0 by [`crate::FaultPlan::shifted`]) apart from
    /// fresh ones; tracked streamingly so it is available in both metrics modes.
    pub fn first_round_crashed(&self) -> usize {
        self.totals.first_round_crashed
    }

    /// Total number of join events executed over the whole run.
    pub fn total_joined(&self) -> usize {
        self.totals.joined
    }

    /// Total transport-layer retransmissions over the whole run (zero unless the
    /// protocols run behind a reliable-delivery adapter).
    pub fn total_retransmits(&self) -> u64 {
        self.totals.retransmits
    }

    /// Total transport-layer acknowledgment messages over the whole run.
    pub fn total_acks(&self) -> u64 {
        self.totals.acks
    }

    /// Total duplicate payloads suppressed by a transport layer over the whole run.
    pub fn total_dupes_dropped(&self) -> u64 {
        self.totals.dupes_dropped
    }

    /// Total payloads abandoned by a transport layer over the whole run.
    pub fn total_give_ups(&self) -> u64 {
        self.totals.give_ups
    }

    /// The maximum total number of messages any single node sent over the whole run
    /// (the paper bounds this by `O(log² n)` for the main algorithm).
    pub fn max_total_sent_per_node(&self) -> u64 {
        self.total_sent_per_node.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics() {
        let m = RunMetrics::new(3);
        assert_eq!(m.rounds, 0);
        assert_eq!(m.max_sent_in_any_round(), 0);
        assert_eq!(m.total_delivered(), 0);
        assert_eq!(m.max_total_sent_per_node(), 0);
        assert_eq!(m.first_round_crashed(), 0);
        assert_eq!(m.mode(), MetricsMode::Full);
    }

    fn two_rounds() -> [RoundMetrics; 2] {
        [
            RoundMetrics {
                max_sent: 3,
                max_received: 2,
                max_global_sent: 3,
                max_global_received: 1,
                delivered: 5,
                dropped_receive: 1,
                dropped_send: 0,
                dropped_fault: 2,
                dropped_partition: 1,
                dropped_offline: 0,
                delayed: 3,
                crashed: 1,
                joined: 0,
                retransmits: 2,
                acks: 4,
                dupes_dropped: 1,
                give_ups: 1,
            },
            RoundMetrics {
                max_sent: 1,
                max_received: 4,
                max_global_sent: 0,
                max_global_received: 4,
                delivered: 4,
                dropped_receive: 0,
                dropped_send: 2,
                dropped_fault: 0,
                dropped_partition: 2,
                dropped_offline: 4,
                delayed: 0,
                crashed: 0,
                joined: 2,
                retransmits: 1,
                acks: 3,
                dupes_dropped: 0,
                give_ups: 2,
            },
        ]
    }

    #[test]
    fn aggregation_over_rounds() {
        let mut m = RunMetrics::new(2);
        for r in two_rounds() {
            m.record_round(r);
        }
        m.total_sent_per_node = vec![7, 2];
        assert_eq!(m.rounds, 2);
        assert_eq!(m.per_round.len(), 2);
        assert_eq!(m.max_sent_in_any_round(), 3);
        assert_eq!(m.max_received_in_any_round(), 4);
        assert_eq!(m.max_global_in_any_round(), 4);
        assert_eq!(m.total_delivered(), 9);
        assert_eq!(m.total_dropped_receive(), 1);
        assert_eq!(m.total_dropped_send(), 2);
        assert_eq!(m.total_dropped_fault(), 2);
        assert_eq!(m.total_dropped_partition(), 3);
        assert_eq!(m.total_dropped_offline(), 4);
        assert_eq!(m.total_delayed(), 3);
        assert_eq!(m.total_crashed(), 1);
        assert_eq!(m.first_round_crashed(), 1);
        assert_eq!(m.total_joined(), 2);
        assert_eq!(m.max_total_sent_per_node(), 7);
        assert_eq!(m.total_retransmits(), 3);
        assert_eq!(m.total_acks(), 7);
        assert_eq!(m.total_dupes_dropped(), 1);
        assert_eq!(m.total_give_ups(), 3);
    }

    #[test]
    fn transport_counters_fold_into_round_metrics() {
        let mut r = RoundMetrics::default();
        r.absorb_transport(&TransportCounters {
            retransmits: 2,
            acks: 1,
            dupes_dropped: 3,
            give_ups: 4,
        });
        r.absorb_transport(&TransportCounters::default());
        assert_eq!(
            (r.retransmits, r.acks, r.dupes_dropped, r.give_ups),
            (2, 1, 3, 4)
        );
    }

    /// A pseudo-random but deterministic stream of round metrics (no RNG crate
    /// needed): every counter cycles at a different small modulus.
    fn synthetic_round(i: usize) -> RoundMetrics {
        RoundMetrics {
            max_sent: i % 7,
            max_received: (i * 3) % 11,
            max_global_sent: (i * 5) % 13,
            max_global_received: (i * 2) % 9,
            delivered: i % 17,
            dropped_receive: i % 3,
            dropped_send: i % 4,
            dropped_fault: i % 5,
            dropped_partition: i % 2,
            dropped_offline: (i * 7) % 6,
            delayed: i % 8,
            crashed: usize::from(i % 19 == 4),
            joined: usize::from(i % 23 == 6),
            retransmits: i % 6,
            acks: i % 10,
            dupes_dropped: i % 12,
            give_ups: usize::from(i % 29 == 1),
        }
    }

    #[test]
    fn rollup_accessors_match_full_mode_exactly() {
        for window in [0usize, 1, 4, 64, 1000] {
            let mut full = RunMetrics::new(2);
            let mut rollup = RunMetrics::with_mode(2, MetricsMode::Rollup { window });
            for i in 0..500 {
                full.record_round(synthetic_round(i));
                rollup.record_round(synthetic_round(i));
            }
            // Every total/peak accessor is mode-independent.
            assert_eq!(full.rounds, rollup.rounds);
            assert_eq!(full.max_sent_in_any_round(), rollup.max_sent_in_any_round());
            assert_eq!(
                full.max_received_in_any_round(),
                rollup.max_received_in_any_round()
            );
            assert_eq!(
                full.max_global_in_any_round(),
                rollup.max_global_in_any_round()
            );
            assert_eq!(full.total_delivered(), rollup.total_delivered());
            assert_eq!(full.total_dropped_receive(), rollup.total_dropped_receive());
            assert_eq!(full.total_dropped_send(), rollup.total_dropped_send());
            assert_eq!(full.total_dropped_fault(), rollup.total_dropped_fault());
            assert_eq!(
                full.total_dropped_partition(),
                rollup.total_dropped_partition()
            );
            assert_eq!(full.total_dropped_offline(), rollup.total_dropped_offline());
            assert_eq!(full.total_delayed(), rollup.total_delayed());
            assert_eq!(full.total_crashed(), rollup.total_crashed());
            assert_eq!(full.first_round_crashed(), rollup.first_round_crashed());
            assert_eq!(full.total_joined(), rollup.total_joined());
            assert_eq!(full.total_retransmits(), rollup.total_retransmits());
            assert_eq!(full.total_acks(), rollup.total_acks());
            assert_eq!(full.total_dupes_dropped(), rollup.total_dupes_dropped());
            assert_eq!(full.total_give_ups(), rollup.total_give_ups());
            // Retention differs exactly as documented.
            assert_eq!(full.per_round.len(), 500);
            assert!(rollup.per_round.is_empty());
            assert_eq!(rollup.recent_rounds().count(), window.min(500));
        }
    }

    #[test]
    fn rollup_ring_keeps_the_most_recent_rounds_in_order() {
        let mut m = RunMetrics::with_mode(1, MetricsMode::Rollup { window: 3 });
        for i in 0..10 {
            m.record_round(synthetic_round(i));
        }
        let kept: Vec<RoundMetrics> = m.recent_rounds().copied().collect();
        let expected: Vec<RoundMetrics> = (7..10).map(synthetic_round).collect();
        assert_eq!(kept, expected);
    }

    #[test]
    fn first_round_crashed_is_pinned_to_round_zero() {
        let mut m = RunMetrics::new(1);
        m.record_round(RoundMetrics {
            crashed: 2,
            ..RoundMetrics::default()
        });
        m.record_round(RoundMetrics {
            crashed: 5,
            ..RoundMetrics::default()
        });
        assert_eq!(m.first_round_crashed(), 2);
        assert_eq!(m.total_crashed(), 7);
    }
}
