//! Configuration of the reliable-delivery transport layer.
//!
//! The paper's protocols assume perfectly reliable synchronous delivery; the
//! `overlay-transport` crate provides a `Reliable<P>` adapter that wraps any
//! [`crate::Protocol`] with at-least-once delivery (per-peer sequence numbers,
//! cumulative/selective acknowledgments, deterministic retransmission timers in
//! rounds, and duplicate suppression). [`TransportConfig`] is that adapter's knob
//! set. It lives here — next to the [`crate::RoundMetrics`] counters the adapter
//! reports into — so every layer (netsim, core, scenarios) can speak about
//! transport settings without depending on the adapter implementation.

/// Tuning knobs of the reliable-delivery adapter.
///
/// All values are in *rounds* or *messages*; there is no wall-clock anywhere. The
/// defaults are chosen so that a fault-free run behaves exactly like the unwrapped
/// protocol: data is delivered one round after sending (same latency as a bare
/// send), windows are wide enough that the paper's protocols never queue, and the
/// retransmission timer only fires when the one-round ack round-trip was actually
/// missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransportConfig {
    /// Rounds a data message may stay unacknowledged before it is retransmitted.
    ///
    /// The fastest possible acknowledgment for a message sent in round `r` arrives
    /// in round `r + 2` (data lands at `r + 1`, the ack lands one round later), and
    /// acknowledgments are processed *before* the retransmission timer is checked,
    /// so the minimum useful value — and the default — is `2`: a clean round-trip
    /// never triggers a spurious resend.
    pub retransmit_after: usize,
    /// Maximum number of retransmissions per data message before the transport
    /// gives up on it (at-least-once delivery is only an *attempt* against a peer
    /// that is crashed or partitioned away forever). Abandoned messages stop
    /// blocking [`crate::Protocol::is_done`].
    pub max_retransmits: usize,
    /// Maximum number of sent-but-unacknowledged data messages per peer. Further
    /// sends to that peer queue inside the adapter and enter the network as the
    /// window reopens; this bounds how much transport traffic a lossy round can
    /// add on top of the wrapped protocol's own `O(log n)` per-round budget.
    pub window: usize,
    /// Per-peer failure detection. When `false` (the default), the
    /// retransmission budget is spent *per message*: against a crashed peer,
    /// every queued payload burns its full `max_retransmits` before being
    /// abandoned. When `true`, the first payload to exhaust its budget marks
    /// the whole peer as failed: every other pending payload to that peer is
    /// abandoned on the spot and future sends to it are dropped immediately —
    /// the dead peer costs one give-up instead of one per message. Detection
    /// silences the *sender* role only (data from a falsely-suspected peer is
    /// still received and acknowledged) and is permanent for the run, matching
    /// the simulator's crash-stop fault model.
    pub failure_detector: bool,
}

impl TransportConfig {
    /// Returns the config with a different retransmission timeout (rounds).
    ///
    /// # Panics
    ///
    /// Panics if `rounds < 2`: an acknowledgment takes two rounds to return, so a
    /// smaller timeout would retransmit every message every round.
    pub fn with_retransmit_after(mut self, rounds: usize) -> Self {
        assert!(
            rounds >= 2,
            "retransmit timeout below the 2-round ack round-trip: {rounds}"
        );
        self.retransmit_after = rounds;
        self
    }

    /// Returns the config with a different per-message retransmission budget.
    pub fn with_max_retransmits(mut self, max: usize) -> Self {
        self.max_retransmits = max;
        self
    }

    /// Returns the config with a different per-peer in-flight window.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` (nothing could ever be sent) or `window > 64`:
    /// the adapter's selective acknowledgment is a 64-bit bitmap above the
    /// cumulative horizon, so an out-of-order delivery more than 64 sequences
    /// ahead could never be reported back and would be spuriously retransmitted
    /// until the horizon catches up — a wider window silently degrades instead
    /// of helping.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "a zero window can never send");
        assert!(
            window <= 64,
            "window {window} exceeds the 64-sequence selective-ack bitmap"
        );
        self.window = window;
        self
    }

    /// Returns the config with per-peer failure detection switched on or off.
    pub fn with_failure_detector(mut self, enabled: bool) -> Self {
        self.failure_detector = enabled;
        self
    }
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            retransmit_after: 2,
            max_retransmits: 32,
            window: 64,
            failure_detector: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let c = TransportConfig::default();
        assert_eq!(c.retransmit_after, 2);
        assert_eq!(c.max_retransmits, 32);
        assert_eq!(c.window, 64);
        assert!(!c.failure_detector);
        let c = c
            .with_retransmit_after(4)
            .with_max_retransmits(8)
            .with_window(16)
            .with_failure_detector(true);
        assert_eq!(
            (c.retransmit_after, c.max_retransmits, c.window),
            (4, 8, 16)
        );
        assert!(c.failure_detector);
    }

    #[test]
    #[should_panic(expected = "ack round-trip")]
    fn rejects_sub_roundtrip_timeout() {
        let _ = TransportConfig::default().with_retransmit_after(1);
    }

    #[test]
    #[should_panic(expected = "zero window")]
    fn rejects_zero_window() {
        let _ = TransportConfig::default().with_window(0);
    }

    #[test]
    #[should_panic(expected = "selective-ack bitmap")]
    fn rejects_window_beyond_the_ack_bitmap() {
        let _ = TransportConfig::default().with_window(65);
    }
}
