//! The synchronous round simulator.

use crate::caps::CapacityModel;
use crate::faults::{DropReason, FaultPlan, FaultRouter, Route};
use crate::metrics::{MetricsMode, RoundMetrics, RunMetrics, TransportCounters};
use crate::protocol::{Channel, Ctx, Envelope, Protocol};
use crate::trace::{DropCause, SharedTraceSink, TraceEvent};
use overlay_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Within-round parallelism policy for the simulator.
///
/// When engaged, the simulator steps disjoint groups of nodes on rayon worker
/// threads inside each round: every node writes into its own outbox shard and
/// reports its own transport counters, and the shards are merged back in
/// node-id order before the (serial) dispatch and fault phases run. Each node
/// already owns its RNG, the fault router's RNG is only drawn during serial
/// dispatch, and the receive-cap `drop_rng` is only drawn during serial
/// delivery — so a run is **bitwise identical at every worker count**,
/// including 1. Parallelism is a wall-clock knob, never a semantics knob.
///
/// Spawning workers costs real time per round, so small simulations opt out
/// via `min_nodes`: below the threshold the simulator keeps the classic
/// serial loop (which shares one outbox buffer and allocates nothing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelismConfig {
    /// Worker threads to step nodes with; `None` asks rayon
    /// ([`rayon::current_num_threads`], which honors `RAYON_NUM_THREADS`).
    pub workers: Option<usize>,
    /// Minimum node count before within-round parallelism engages; below it the
    /// serial loop runs regardless of `workers`.
    pub min_nodes: usize,
}

impl ParallelismConfig {
    /// The threshold below which parallelizing a round costs more than it saves
    /// (thread spawns are microseconds; small rounds are too).
    pub const DEFAULT_MIN_NODES: usize = 4096;

    /// Always step nodes serially (the historical behavior).
    pub fn serial() -> Self {
        ParallelismConfig {
            workers: Some(1),
            min_nodes: 0,
        }
    }

    /// Step nodes on exactly `workers` threads whenever `n >= min_nodes`.
    pub fn fixed(workers: usize, min_nodes: usize) -> Self {
        ParallelismConfig {
            workers: Some(workers),
            min_nodes,
        }
    }

    /// The worker count to use for a round over `n` nodes (`1` = serial path).
    pub fn effective_workers(&self, n: usize) -> usize {
        if n < self.min_nodes {
            return 1;
        }
        self.workers
            .unwrap_or_else(rayon::current_num_threads)
            .max(1)
    }
}

impl Default for ParallelismConfig {
    /// Rayon's worker count, engaged from
    /// [`ParallelismConfig::DEFAULT_MIN_NODES`] nodes up.
    fn default() -> Self {
        ParallelismConfig {
            workers: None,
            min_nodes: Self::DEFAULT_MIN_NODES,
        }
    }
}

/// Configuration of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The capacity model to enforce.
    pub caps: CapacityModel,
    /// Seed for all randomness (per-node RNGs, drop selection, and fault decisions).
    pub seed: u64,
    /// The local edges of the initial graph (distinct neighbors per node), required by
    /// the hybrid model's CONGEST discipline: local messages may only travel over these
    /// edges. Ignored by the NCC0 and unbounded models.
    pub local_edges: Option<Vec<Vec<NodeId>>>,
    /// The environmental faults to inject (clean by default).
    pub faults: FaultPlan,
    /// Within-round parallelism policy (bitwise identical at any worker count).
    pub parallelism: ParallelismConfig,
    /// How per-round metrics history is retained (aggregates are mode-independent).
    pub metrics_mode: MetricsMode,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            caps: CapacityModel::Unbounded,
            seed: 0xBADC0FFE,
            local_edges: None,
            faults: FaultPlan::default(),
            parallelism: ParallelismConfig::default(),
            metrics_mode: MetricsMode::Full,
        }
    }
}

impl SimConfig {
    /// A convenience constructor for the NCC0 model on `n` nodes.
    pub fn ncc0(n: usize, cap_factor: usize, seed: u64) -> Self {
        SimConfig {
            caps: CapacityModel::ncc0_for(n, cap_factor),
            seed,
            ..SimConfig::default()
        }
    }

    /// The NCC0 model with an explicit per-node, per-round message cap — the
    /// configuration recipe of one overlay-construction pipeline phase: the cap and
    /// seed come from the phase's parameter schedule and the fault plan is the
    /// (shifted, remapped) remainder of the run's plan. Unlike [`SimConfig::ncc0`],
    /// nothing is derived from `n`; the caller owns the exact cap.
    pub fn ncc0_capped(per_round: usize, seed: u64, faults: FaultPlan) -> Self {
        SimConfig {
            caps: CapacityModel::Ncc0 { per_round },
            seed,
            faults,
            ..SimConfig::default()
        }
    }

    /// A convenience constructor for the hybrid model with the given local adjacency.
    pub fn hybrid(local_edges: Vec<Vec<NodeId>>, cap_factor: usize, seed: u64) -> Self {
        let n = local_edges.len();
        SimConfig {
            caps: CapacityModel::hybrid_for(n, cap_factor),
            seed,
            local_edges: Some(local_edges),
            ..SimConfig::default()
        }
    }

    /// Returns the config with the given fault plan installed.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the config with the given within-round parallelism policy.
    pub fn with_parallelism(mut self, parallelism: ParallelismConfig) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the config with the given metrics-retention mode.
    pub fn with_metrics_mode(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }
}

/// The result of [`Simulator::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of message rounds executed (not counting the start callback).
    pub rounds: usize,
    /// Whether every node reported [`Protocol::is_done`] before the round limit.
    pub all_done: bool,
}

/// A flat, reusable arena holding one round's envelopes, grouped per recipient.
///
/// The arena is the simulator's message plumbing: during dispatch it is the *staging*
/// area (envelopes appended in routing order, tagged with their recipient), and at the
/// start of the next round `EnvelopeArena::group` counting-sorts it in place so each
/// node's inbox becomes one contiguous `(offset, len)` slice of a single buffer. The
/// buffers are **cleared, never reallocated**, between rounds, so a steady-state round
/// performs no per-inbox allocations at all — unlike the `Vec`-of-`Vec`s layout this
/// replaced, which allocated `n` fresh inbox vectors every round.
///
/// Grouping is *stable*: two messages to the same recipient keep their staging order,
/// which is exactly the delivery order the old nested-`Vec` layout produced. That
/// stability is what keeps faulty runs byte-identical per seed across the refactor.
#[derive(Debug)]
pub struct EnvelopeArena<M> {
    /// All envelopes of the current round; grouped by recipient after [`Self::group`].
    buf: Vec<Envelope<M>>,
    /// Recipient of `buf[i]`, parallel to `buf` (used only while staging/grouping).
    to: Vec<usize>,
    /// Per-node `(offset, len)` into `buf`, valid after [`Self::group`].
    ranges: Vec<(usize, usize)>,
    /// Scratch: per-node write cursors during the counting sort.
    cursors: Vec<usize>,
    /// Scratch: target position of each staged envelope during the in-place permute.
    pos: Vec<usize>,
}

impl<M> EnvelopeArena<M> {
    /// An empty arena for `n` nodes.
    fn new(n: usize) -> Self {
        EnvelopeArena {
            buf: Vec::new(),
            to: Vec::new(),
            ranges: vec![(0, 0); n],
            cursors: vec![0; n],
            pos: Vec::new(),
        }
    }

    /// Stages an envelope for recipient `to` (delivery happens after [`Self::group`]).
    fn push(&mut self, to: NodeId, env: Envelope<M>) {
        self.to.push(to.index());
        self.buf.push(env);
    }

    /// Clears the staged envelopes, retaining every buffer's capacity.
    fn clear(&mut self) {
        self.buf.clear();
        self.to.clear();
    }

    /// Groups the staged envelopes by recipient with a stable in-place counting sort
    /// and records each node's `(offset, len)` range.
    fn group(&mut self) {
        let total = self.buf.len();
        self.cursors.iter_mut().for_each(|c| *c = 0);
        for &t in &self.to {
            self.cursors[t] += 1;
        }
        let mut acc = 0usize;
        for (range, cursor) in self.ranges.iter_mut().zip(self.cursors.iter_mut()) {
            let count = *cursor;
            *range = (acc, count);
            *cursor = acc;
            acc += count;
        }
        self.pos.clear();
        for &t in &self.to {
            let cursor = &mut self.cursors[t];
            self.pos.push(*cursor);
            *cursor += 1;
        }
        // Apply the permutation in place by chasing cycles; each element is swapped
        // into its final position at most once, so this is O(total) swaps.
        for i in 0..total {
            while self.pos[i] != i {
                let j = self.pos[i];
                self.buf.swap(i, j);
                self.to.swap(i, j);
                self.pos.swap(i, j);
            }
        }
    }

    /// Node `i`'s inbox for the current round (valid after [`Self::group`]).
    fn inbox(&self, i: usize) -> &[Envelope<M>] {
        let (start, len) = self.ranges[i];
        &self.buf[start..start + len]
    }

    /// Shrinks node `i`'s range to the envelopes whose range-relative index is *not*
    /// marked in `drop`, preserving their relative order. Dropped envelopes linger in
    /// the (now out-of-range) tail until the next [`Self::clear`]; they are never
    /// observed.
    fn retain_range(&mut self, i: usize, drop: &[bool]) {
        let (start, len) = self.ranges[i];
        debug_assert_eq!(drop.len(), len, "one mark per envelope in the range");
        let mut w = start;
        for (k, &dropped) in drop.iter().enumerate() {
            if !dropped {
                self.buf.swap(w, start + k);
                w += 1;
            }
        }
        self.ranges[i].1 = w - start;
    }
}

/// The hybrid model's local adjacency in CSR (structure-of-arrays) form: one
/// flat sorted neighbor array plus per-node offsets. Membership tests are a
/// binary search over a contiguous range — no per-node `HashSet`, no pointer
/// chasing, and the flat layout is shared read-only by all worker threads.
#[derive(Debug)]
struct LocalAdjacency {
    /// `offsets[i]..offsets[i + 1]` is node `i`'s slice of `neighbors`.
    offsets: Vec<usize>,
    /// All neighbor lists back to back, each sorted and deduplicated.
    neighbors: Vec<NodeId>,
}

impl LocalAdjacency {
    fn new(edges: Vec<Vec<NodeId>>) -> Self {
        let mut offsets = Vec::with_capacity(edges.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for mut adj in edges {
            adj.sort_unstable();
            adj.dedup();
            neighbors.extend_from_slice(&adj);
            offsets.push(neighbors.len());
        }
        LocalAdjacency { offsets, neighbors }
    }

    /// `true` if `(node, to)` is a declared local edge.
    fn contains(&self, node: usize, to: NodeId) -> bool {
        self.neighbors[self.offsets[node]..self.offsets[node + 1]]
            .binary_search(&to)
            .is_ok()
    }
}

/// One node's private slice of a parallel round: the messages it queued and the
/// transport counters it reported. Workers fill shards concurrently; the
/// simulator merges them back in node-id order, which reproduces the serial
/// loop's outbox layout, metrics arithmetic, and trace-event order exactly.
#[derive(Debug)]
struct NodeShard<M> {
    /// The node's outbox for this round (the parallel stand-in for a base
    /// offset into the shared buffer). Capacity is retained across rounds.
    outbox: Vec<(NodeId, Channel, M)>,
    /// Transport counters reported by the node's callback this round.
    transport: TransportCounters,
}

impl<M> Default for NodeShard<M> {
    fn default() -> Self {
        NodeShard {
            outbox: Vec::new(),
            transport: TransportCounters::default(),
        }
    }
}

/// The per-node RNG for node `i` of a run seeded with `seed`.
///
/// This is the seeding rule [`Simulator::new`] uses (seed XOR a
/// golden-ratio-multiplied node index, so neighboring nodes get well-separated
/// streams). It is public so external round executors (the `overlay-net`
/// crate) can hand each node the *identical* random stream the simulator
/// would, which is what makes cross-backend runs bit-for-bit comparable.
pub fn node_rng(seed: u64, i: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1)))
}

/// A deterministic synchronous simulator executing one [`Protocol`] state machine per
/// node.
///
/// Environmental faults (message loss, delays, crashes, joins, partitions) are
/// injected by the [`FaultRouter`] the simulator builds from
/// [`SimConfig::faults`]; a clean plan reproduces the fault-free behavior exactly.
///
/// # Hot-path layout
///
/// All per-round message traffic flows through two flat, reusable buffers: the
/// [`EnvelopeArena`] (inboxes, grouped per recipient by a stable counting sort) and a
/// single shared outbox `Vec` that every node appends to behind its own base offset.
/// Both are cleared — not reallocated — each round, so steady-state rounds are
/// allocation-free regardless of `n` or message volume. The remaining per-node
/// lookups are flat arrays too: local adjacency is CSR (offsets plus a sorted,
/// deduplicated neighbor array with binary-search membership),
/// per-edge CONGEST counters are an epoch-stamped array instead of a `HashMap`,
/// and done-flags are cached per node so `all_done` never virtual-dispatches.
///
/// # Within-round parallelism
///
/// With [`SimConfig::parallelism`] engaged, the protocol callbacks of a round
/// run on rayon worker threads over disjoint chunks of `nodes` / `rngs` /
/// outbox shards; everything that draws shared randomness (fault routing,
/// receive-cap eviction) or observes cross-node order (dispatch, tracing,
/// metrics) stays serial, and shard merging is in node-id order — so results
/// are bitwise identical to the serial loop at every worker count.
#[derive(Debug)]
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    /// Next round's inboxes: staged during dispatch, grouped at the start of `step`.
    arena: EnvelopeArena<P::Message>,
    /// The whole round's outgoing messages, all nodes back to back.
    outbox: Vec<(NodeId, Channel, P::Message)>,
    /// Per-node message count within `outbox` for the current round.
    out_lens: Vec<usize>,
    caps: CapacityModel,
    local_neighbors: Option<LocalAdjacency>,
    drop_rng: StdRng,
    /// Scratch for `apply_receive_caps`: range-relative indices of global messages.
    cap_scratch: Vec<usize>,
    /// Scratch for `apply_receive_caps`: per-envelope drop marks for one inbox.
    drop_mark: Vec<bool>,
    /// Scratch for `dispatch`: per-recipient CONGEST counters of the current
    /// sender, epoch-stamped so switching senders is O(1) instead of a clear.
    per_edge_count: Vec<usize>,
    /// The epoch (`edge_epoch` value) `per_edge_count[i]` was last written in.
    per_edge_stamp: Vec<u64>,
    /// Current sender's epoch for the stamped per-edge counters.
    edge_epoch: u64,
    /// Cached `Protocol::is_done` per node, refreshed after each callback, so
    /// `done_count` scans a flat bool array instead of virtual-dispatching.
    done_flags: Vec<bool>,
    /// Per-node outbox shards for parallel rounds (empty until first used).
    shards: Vec<NodeShard<P::Message>>,
    parallelism: ParallelismConfig,
    router: FaultRouter<P::Message>,
    metrics: RunMetrics,
    round: usize,
    started: bool,
    /// Structured-event sink; `None` (the default) skips all trace work. The
    /// simulator never draws randomness or moves messages on behalf of the
    /// sink, so traced and untraced runs of one seed are byte-identical.
    sink: Option<SharedTraceSink>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator over the given per-node protocol instances.
    ///
    /// # Panics
    ///
    /// Panics if `config.local_edges` is present but its length differs from the number
    /// of nodes, or if `config.faults` references nodes that do not exist.
    pub fn new(nodes: Vec<P>, config: SimConfig) -> Self {
        let n = nodes.len();
        if let Some(edges) = &config.local_edges {
            assert_eq!(
                edges.len(),
                n,
                "local edge table must have one entry per node"
            );
        }
        let rngs = (0..n).map(|i| node_rng(config.seed, i)).collect();
        let local_neighbors = config.local_edges.map(LocalAdjacency::new);
        let done_flags = nodes.iter().map(Protocol::is_done).collect();
        Simulator {
            nodes,
            rngs,
            arena: EnvelopeArena::new(n),
            outbox: Vec::new(),
            out_lens: vec![0; n],
            caps: config.caps,
            local_neighbors,
            drop_rng: StdRng::seed_from_u64(config.seed.wrapping_add(1)),
            cap_scratch: Vec::new(),
            drop_mark: Vec::new(),
            per_edge_count: vec![0; n],
            per_edge_stamp: vec![0; n],
            edge_epoch: 0,
            done_flags,
            shards: Vec::new(),
            parallelism: config.parallelism,
            router: FaultRouter::new(&config.faults, n, config.seed),
            metrics: RunMetrics::with_mode(n, config.metrics_mode),
            round: 0,
            started: false,
            sink: None,
        }
    }

    /// Installs a structured-event trace sink (see [`crate::trace`]). The sink
    /// observes every subsequent round; installing one never perturbs the
    /// simulation itself (no RNG draws, no message reordering).
    pub fn set_trace_sink(&mut self, sink: SharedTraceSink) {
        self.sink = Some(sink);
    }

    /// Removes the trace sink, returning the run to the zero-cost untraced mode.
    pub fn clear_trace_sink(&mut self) {
        self.sink = None;
    }

    /// Emits the round's lifecycle identity events (who crashed, who joined)
    /// in node order. Only called when a sink is installed — the identity scan
    /// is O(n) and the untraced path keeps the cheap count-only bookkeeping of
    /// [`FaultRouter::record_lifecycle`].
    fn emit_lifecycle(&self, round: usize) {
        let Some(sink) = &self.sink else { return };
        let mut sink = sink.borrow_mut();
        for i in 0..self.nodes.len() {
            if self.router.is_crashed(i, round)
                && (round == 0 || !self.router.is_crashed(i, round - 1))
            {
                sink.record(TraceEvent::Crash {
                    round,
                    node: NodeId::from(i),
                });
            }
            if self.router.joins_at(i, round) {
                sink.record(TraceEvent::Join {
                    round,
                    node: NodeId::from(i),
                });
            }
        }
    }

    /// Emits the round-end rollup for `round_metrics`.
    fn emit_round_end(&self, round: usize, round_metrics: &RoundMetrics) {
        let Some(sink) = &self.sink else { return };
        sink.borrow_mut().record(TraceEvent::RoundEnd {
            round,
            delivered: round_metrics.delivered,
            dropped: round_metrics.dropped_receive
                + round_metrics.dropped_send
                + round_metrics.dropped_fault
                + round_metrics.dropped_partition
                + round_metrics.dropped_offline,
        });
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's protocol state.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Immutable access to all node states.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the simulator and returns the node states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// The metrics recorded so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The current round number.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Returns `true` if every node is accounted for: crashed nodes count as done,
    /// nodes whose join round has not arrived yet count as *not* done (the simulation
    /// must run at least until they activate).
    pub fn all_done(&self) -> bool {
        self.done_count() == self.nodes.len()
    }

    /// Returns `true` if node `i` executes callbacks in the current round.
    pub fn is_active(&self, id: NodeId) -> bool {
        self.router.is_active(id.index(), self.round)
    }

    /// Number of nodes currently accounted as done under [`Simulator::all_done`]'s
    /// rule: crashed, or joined and finished. Dormant joiners count as *not* done.
    /// Reads the cached done-flags (refreshed after every callback), so the scan
    /// is over flat arrays only.
    pub fn done_count(&self) -> usize {
        self.done_flags
            .iter()
            .enumerate()
            .filter(|&(i, &done)| {
                self.router.is_crashed(i, self.round)
                    || (self.router.join_round(i) <= self.round && done)
            })
            .count()
    }

    /// Runs the start callback (if not yet run) and then message rounds until either
    /// every node is done or `max_rounds` rounds have been executed.
    ///
    /// Delay-faulted messages still in flight when the run stops are never
    /// delivered; they are visible in the metrics only as `delayed` counts (use
    /// [`Simulator::step`] past `all_done` to flush them).
    pub fn run(&mut self, max_rounds: usize) -> RunOutcome {
        self.ensure_started();
        let mut executed = 0usize;
        while executed < max_rounds && !self.all_done() {
            self.step();
            executed += 1;
        }
        RunOutcome {
            rounds: self.round,
            all_done: self.all_done(),
        }
    }

    /// Runs exactly one message round (running the start callback first if needed).
    pub fn step(&mut self) {
        self.ensure_started();
        let n = self.nodes.len();
        self.round += 1;
        let round = self.round;
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(TraceEvent::RoundStart { round });
        }
        self.emit_lifecycle(round);

        // Delayed messages surface in their scheduled round; liveness of the
        // recipient at this round was already checked when they were routed.
        let (router, arena) = (&mut self.router, &mut self.arena);
        router.drain_due(round, |to, env| arena.push(to, env));
        self.arena.group();

        let mut round_metrics = RoundMetrics::default();
        self.router.record_lifecycle(round, &mut round_metrics);
        self.apply_receive_caps(&mut round_metrics);
        for i in 0..n {
            let inbox = self.arena.inbox(i);
            round_metrics.max_received = round_metrics.max_received.max(inbox.len());
            let globals = inbox
                .iter()
                .filter(|e| e.channel == Channel::Global)
                .count();
            round_metrics.max_global_received = round_metrics.max_global_received.max(globals);
            round_metrics.delivered += inbox.len();
        }

        self.run_callbacks(round, false, &mut round_metrics);
        self.dispatch(&mut round_metrics);
        self.emit_round_end(round, &round_metrics);
        self.metrics.record_round(round_metrics);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(sink) = &self.sink {
            sink.borrow_mut()
                .record(TraceEvent::RoundStart { round: 0 });
        }
        self.emit_lifecycle(0);
        let mut round_metrics = RoundMetrics::default();
        self.router.record_lifecycle(0, &mut round_metrics);
        // Late joiners and nodes crashed from round 0 do not start now; a
        // joiner's start callback runs at its join round instead.
        self.run_callbacks(0, true, &mut round_metrics);
        self.dispatch(&mut round_metrics);
        self.emit_round_end(0, &round_metrics);
        self.metrics.record_round(round_metrics);
    }

    /// Emits one node's per-round transport trace events (`Retransmits`, then
    /// `GiveUps`; only non-zero counts emit anything).
    fn emit_transport_events(&self, round: usize, node: usize, t: &TransportCounters) {
        let Some(sink) = &self.sink else { return };
        if t.retransmits > 0 {
            sink.borrow_mut().record(TraceEvent::Retransmits {
                round,
                node: NodeId::from(node),
                count: t.retransmits,
            });
        }
        if t.give_ups > 0 {
            sink.borrow_mut().record(TraceEvent::GiveUps {
                round,
                node: NodeId::from(node),
                count: t.give_ups,
            });
        }
    }

    /// Runs every active node's callback for `round`, filling `self.outbox` /
    /// `self.out_lens` and folding transport counters into `round_metrics`.
    ///
    /// `start_round` selects the round-0 rule (every active node runs
    /// `on_start`); otherwise joiners run `on_start` and everyone else
    /// `on_round`. Depending on [`ParallelismConfig::effective_workers`] this
    /// is the classic serial loop or the sharded parallel path — the two are
    /// bitwise equivalent (see [`ParallelismConfig`]).
    fn run_callbacks(&mut self, round: usize, start_round: bool, round_metrics: &mut RoundMetrics) {
        let n = self.nodes.len();
        self.outbox.clear();
        let workers = self.parallelism.effective_workers(n);
        if workers > 1 && n > 1 {
            self.run_callbacks_sharded(round, start_round, workers, round_metrics);
            return;
        }
        for i in 0..n {
            let base = self.outbox.len();
            if self.router.is_active(i, round) {
                let mut ctx = Ctx {
                    me: NodeId::from(i),
                    round,
                    n,
                    rng: &mut self.rngs[i],
                    outbox: &mut self.outbox,
                    base,
                    transport: Default::default(),
                };
                if start_round {
                    self.nodes[i].on_start(&mut ctx);
                } else if self.router.joins_at(i, round) {
                    // The node's first round: it runs its start callback with the
                    // initial knowledge its protocol state was built with. Its inbox
                    // is empty: the router drops (and counts) messages that would
                    // land on the join round itself.
                    debug_assert!(
                        self.arena.inbox(i).is_empty(),
                        "join-round inboxes are empty"
                    );
                    self.nodes[i].on_start(&mut ctx);
                } else {
                    self.nodes[i].on_round(&mut ctx, self.arena.inbox(i));
                }
                let transport = ctx.transport;
                round_metrics.absorb_transport(&transport);
                self.done_flags[i] = self.nodes[i].is_done();
                self.emit_transport_events(round, i, &transport);
            }
            self.out_lens[i] = self.outbox.len() - base;
        }
    }

    /// The parallel body of [`Simulator::run_callbacks`]: nodes are split into
    /// one contiguous chunk per worker; each worker steps its nodes against the
    /// shared read-only arena/router and writes into per-node [`NodeShard`]s.
    /// Afterwards the shards are merged serially in node-id order, which
    /// reproduces the serial loop's outbox layout, transport-counter
    /// arithmetic, and trace-event order exactly. Nothing in here draws from a
    /// shared RNG: each node owns its `StdRng`, and the fault/drop RNGs are
    /// only touched by the serial phases.
    fn run_callbacks_sharded(
        &mut self,
        round: usize,
        start_round: bool,
        workers: usize,
        round_metrics: &mut RoundMetrics,
    ) {
        let n = self.nodes.len();
        if self.shards.len() < n {
            self.shards.resize_with(n, NodeShard::default);
        }
        let chunk_len = n.div_ceil(workers);
        {
            let arena = &self.arena;
            let router = &self.router;
            let mut nodes = self.nodes.as_mut_slice();
            let mut rngs = self.rngs.as_mut_slice();
            let mut shards = self.shards.as_mut_slice();
            let mut flags = self.done_flags.as_mut_slice();
            rayon::scope(|s| {
                let mut start = 0usize;
                while !nodes.is_empty() {
                    let take = chunk_len.min(nodes.len());
                    let (node_chunk, rest) = nodes.split_at_mut(take);
                    nodes = rest;
                    let (rng_chunk, rest) = rngs.split_at_mut(take);
                    rngs = rest;
                    let (shard_chunk, rest) = shards.split_at_mut(take);
                    shards = rest;
                    let (flag_chunk, rest) = flags.split_at_mut(take);
                    flags = rest;
                    let first = start;
                    start += take;
                    s.spawn(move |_| {
                        let per_node = node_chunk
                            .iter_mut()
                            .zip(rng_chunk.iter_mut())
                            .zip(shard_chunk.iter_mut().zip(flag_chunk.iter_mut()));
                        for (k, ((node, rng), (shard, done))) in per_node.enumerate() {
                            let i = first + k;
                            shard.outbox.clear();
                            shard.transport = TransportCounters::default();
                            if !router.is_active(i, round) {
                                continue;
                            }
                            let mut ctx = Ctx {
                                me: NodeId::from(i),
                                round,
                                n,
                                rng,
                                outbox: &mut shard.outbox,
                                base: 0,
                                transport: Default::default(),
                            };
                            if start_round {
                                node.on_start(&mut ctx);
                            } else if router.joins_at(i, round) {
                                debug_assert!(
                                    arena.inbox(i).is_empty(),
                                    "join-round inboxes are empty"
                                );
                                node.on_start(&mut ctx);
                            } else {
                                node.on_round(&mut ctx, arena.inbox(i));
                            }
                            shard.transport = ctx.transport;
                            *done = node.is_done();
                        }
                    });
                }
            });
        }
        // Serial merge in node-id order: exactly the order (and therefore the
        // outbox layout, metrics arithmetic, and trace emission) of the serial
        // loop. `append` leaves each shard empty with its capacity retained.
        for i in 0..n {
            let base = self.outbox.len();
            let shard = &mut self.shards[i];
            self.outbox.append(&mut shard.outbox);
            let transport = shard.transport;
            if self.router.is_active(i, round) {
                round_metrics.absorb_transport(&transport);
                self.emit_transport_events(round, i, &transport);
            }
            self.out_lens[i] = self.outbox.len() - base;
        }
    }

    /// Applies the per-node receive cap for global messages at delivery time (local
    /// messages are bounded by the CONGEST edge discipline already): a seeded random
    /// subset of size `cap` is kept, the rest is dropped ("arbitrary subset" in the
    /// paper). Applying the cap at delivery rather than at send time means injected
    /// delays cannot be used to smuggle extra messages past the cap.
    ///
    /// The kept subset is chosen by a partial Fisher–Yates over the global messages
    /// of the in-arena inbox slice: only the selection steps that decide the dropped
    /// tail move elements, while the remaining draws are still made so the RNG stream
    /// stays identical to a full `SliceRandom::shuffle` — which keeps every seeded
    /// run byte-identical to the pre-arena implementation. No per-inbox `Vec` or
    /// `HashSet` is allocated; the two scratch buffers are reused across rounds.
    fn apply_receive_caps(&mut self, round_metrics: &mut RoundMetrics) {
        let Some(cap) = self.caps.global_cap() else {
            return;
        };
        for i in 0..self.nodes.len() {
            self.cap_scratch.clear();
            let (start, len) = self.arena.ranges[i];
            for (k, env) in self.arena.buf[start..start + len].iter().enumerate() {
                if env.channel == Channel::Global {
                    self.cap_scratch.push(k);
                }
            }
            let global_count = self.cap_scratch.len();
            if global_count <= cap {
                continue;
            }
            // Partial Fisher–Yates: after the first `global_count - cap` steps the
            // tail (positions `cap..`) is final; the later steps only permute the
            // kept prefix, so their swaps are skipped but their draws are kept to
            // preserve the historical RNG stream.
            for k in (1..global_count).rev() {
                let j = self.drop_rng.gen_range(0..k + 1);
                if k >= cap {
                    self.cap_scratch.swap(k, j);
                }
            }
            self.drop_mark.clear();
            self.drop_mark.resize(len, false);
            for &k in &self.cap_scratch[cap..] {
                self.drop_mark[k] = true;
            }
            round_metrics.dropped_receive += global_count - cap;
            // The dropped senders are still readable here; `retain_range` below
            // compacts them out of the inbox.
            if let Some(sink) = &self.sink {
                let mut sink = sink.borrow_mut();
                for &k in &self.cap_scratch[cap..] {
                    sink.record(TraceEvent::Drop {
                        round: self.round,
                        from: self.arena.buf[start + k].from,
                        to: NodeId::from(i),
                        channel: Channel::Global,
                        cause: DropCause::ReceiveCap,
                    });
                }
            }
            self.arena.retain_range(i, &self.drop_mark);
        }
    }

    /// Applies send-side caps and routes every surviving message through the fault
    /// router, which enqueues it for the next round (staged in the arena), delays
    /// it, or drops it.
    fn dispatch(&mut self, round_metrics: &mut RoundMetrics) {
        let n = self.nodes.len();
        let global_send_cap = self.caps.global_cap();
        let local_edge_cap = self.caps.local_edge_cap();

        // The arena's current contents were consumed by the protocol callbacks;
        // recycle it as the staging area for the next round's deliveries.
        self.arena.clear();
        let mut outbox = std::mem::take(&mut self.outbox);
        let mut messages = outbox.drain(..);
        for i in 0..n {
            let sender = NodeId::from(i);
            let mut global_sent = 0usize;
            let mut total_sent = 0usize;
            // A fresh epoch invalidates every per-edge counter at once: a stamp
            // that doesn't match `edge_epoch` reads as zero (the SoA replacement
            // for clearing a per-sender HashMap each iteration).
            self.edge_epoch += 1;
            for (to, channel, payload) in messages.by_ref().take(self.out_lens[i]) {
                if to.index() >= n {
                    round_metrics.dropped_send += 1;
                    if let Some(sink) = &self.sink {
                        sink.borrow_mut().record(TraceEvent::Drop {
                            round: self.round,
                            from: sender,
                            to,
                            channel,
                            cause: DropCause::InvalidAddress,
                        });
                    }
                    continue;
                }
                let allowed = match channel {
                    Channel::Global => !matches!(global_send_cap, Some(cap) if global_sent >= cap),
                    Channel::Local => {
                        let is_edge = match &self.local_neighbors {
                            Some(adj) => adj.contains(i, to),
                            // Without a declared local graph, local messages behave
                            // like global ones under the active model's cap.
                            None => true,
                        };
                        let under_edge_cap = match local_edge_cap {
                            Some(cap) => {
                                let count = if self.per_edge_stamp[to.index()] == self.edge_epoch {
                                    self.per_edge_count[to.index()]
                                } else {
                                    0
                                };
                                count < cap
                            }
                            None => true,
                        };
                        is_edge && under_edge_cap
                    }
                };
                if !allowed {
                    round_metrics.dropped_send += 1;
                    if let Some(sink) = &self.sink {
                        sink.borrow_mut().record(TraceEvent::Drop {
                            round: self.round,
                            from: sender,
                            to,
                            channel,
                            cause: DropCause::SendCap,
                        });
                    }
                    continue;
                }
                if channel == Channel::Local {
                    if self.per_edge_stamp[to.index()] == self.edge_epoch {
                        self.per_edge_count[to.index()] += 1;
                    } else {
                        self.per_edge_stamp[to.index()] = self.edge_epoch;
                        self.per_edge_count[to.index()] = 1;
                    }
                }
                if channel == Channel::Global {
                    global_sent += 1;
                    self.metrics.total_global_sent_per_node[i] += 1;
                }
                total_sent += 1;
                self.metrics.total_sent_per_node[i] += 1;
                // The message was sent (and paid for); the fault router now decides
                // whether the network actually carries it.
                let env = Envelope {
                    from: sender,
                    channel,
                    payload,
                };
                match self.router.route(sender, to, self.round) {
                    Route::Deliver => self.arena.push(to, env),
                    Route::Delay(deliver_round) => {
                        round_metrics.delayed += 1;
                        self.router.buffer(deliver_round, to, env);
                    }
                    Route::Drop(reason) => {
                        match reason {
                            DropReason::Fault => round_metrics.dropped_fault += 1,
                            DropReason::Partition => round_metrics.dropped_partition += 1,
                            DropReason::Offline => round_metrics.dropped_offline += 1,
                        }
                        if let Some(sink) = &self.sink {
                            sink.borrow_mut().record(TraceEvent::Drop {
                                round: self.round,
                                from: sender,
                                to,
                                channel,
                                cause: reason.into(),
                            });
                        }
                    }
                }
            }
            round_metrics.max_sent = round_metrics.max_sent.max(total_sent);
            round_metrics.max_global_sent = round_metrics.max_global_sent.max(global_sent);
        }
        drop(messages);
        // Hand the (drained, capacity-retaining) buffer back for the next round.
        self.outbox = outbox;
        // Receive caps are applied at delivery time (see `apply_receive_caps`).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every node sends `fan_out` messages to node 0 each round, for `rounds` rounds.
    #[derive(Debug)]
    struct Flooder {
        fan_out: usize,
        rounds: usize,
        received: usize,
        done: bool,
    }

    impl Protocol for Flooder {
        type Message = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            for k in 0..self.fan_out {
                ctx.send_global(NodeId::from(0usize), k as u32);
            }
        }

        fn on_round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[Envelope<u32>]) {
            self.received += inbox.len();
            if ctx.round() < self.rounds {
                for k in 0..self.fan_out {
                    ctx.send_global(NodeId::from(0usize), k as u32);
                }
            } else {
                self.done = true;
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn flooders(n: usize, fan_out: usize, rounds: usize) -> Vec<Flooder> {
        (0..n)
            .map(|_| Flooder {
                fan_out,
                rounds,
                received: 0,
                done: false,
            })
            .collect()
    }

    #[test]
    fn unbounded_delivers_everything() {
        let mut sim = Simulator::new(flooders(8, 2, 3), SimConfig::default());
        let outcome = sim.run(10);
        assert!(outcome.all_done);
        // 8 nodes * 2 messages * 3 send opportunities (start + rounds 1 and 2); the
        // sends of the final round are never made because the nodes finish first.
        assert_eq!(sim.node(NodeId::from(0usize)).received, 8 * 2 * 3);
        assert_eq!(sim.metrics().total_dropped_receive(), 0);
        assert_eq!(sim.metrics().total_dropped_send(), 0);
    }

    #[test]
    fn ncc0_receive_cap_drops_excess() {
        let config = SimConfig {
            caps: CapacityModel::Ncc0 { per_round: 4 },
            seed: 7,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(flooders(16, 1, 2), config);
        sim.run(10);
        // Node 0 can receive at most 4 messages per round.
        assert!(sim.metrics().max_received_in_any_round() <= 4);
        assert!(sim.metrics().total_dropped_receive() > 0);
        assert!(sim.node(NodeId::from(0usize)).received <= 4 * 3);
    }

    #[test]
    fn ncc0_send_cap_drops_excess() {
        let config = SimConfig {
            caps: CapacityModel::Ncc0 { per_round: 3 },
            seed: 7,
            ..SimConfig::default()
        };
        // A single node trying to send 10 messages per round to itself.
        let mut sim = Simulator::new(flooders(1, 10, 1), config);
        sim.run(5);
        assert!(sim.metrics().max_sent_in_any_round() <= 3);
        assert!(sim.metrics().total_dropped_send() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let config = SimConfig {
                caps: CapacityModel::Ncc0 { per_round: 2 },
                seed,
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(flooders(12, 1, 3), config);
            sim.run(10);
            sim.node(NodeId::from(0usize)).received
        };
        assert_eq!(run(42), run(42));
    }

    /// Local-channel protocol for testing the CONGEST discipline.
    #[derive(Debug)]
    struct LocalSpammer {
        target: NodeId,
        copies: usize,
        received: usize,
    }

    impl Protocol for LocalSpammer {
        type Message = u8;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u8>) {
            for _ in 0..self.copies {
                ctx.send_local(self.target, 1);
            }
        }
        fn on_round(&mut self, _ctx: &mut Ctx<'_, u8>, inbox: &[Envelope<u8>]) {
            self.received += inbox.len();
        }
    }

    #[test]
    fn hybrid_local_edges_enforce_congest() {
        // Node 0 and 1 are local neighbors; node 2 is isolated locally.
        let local = vec![
            vec![NodeId::from(1usize)],
            vec![NodeId::from(0usize)],
            vec![],
        ];
        let config = SimConfig {
            caps: CapacityModel::Hybrid {
                local_per_edge: 1,
                global_per_round: 8,
            },
            seed: 3,
            local_edges: Some(local),
            ..SimConfig::default()
        };
        let nodes = vec![
            LocalSpammer {
                target: NodeId::from(1usize),
                copies: 5,
                received: 0,
            },
            LocalSpammer {
                target: NodeId::from(2usize),
                copies: 2,
                received: 0,
            },
            LocalSpammer {
                target: NodeId::from(0usize),
                copies: 1,
                received: 0,
            },
        ];
        let mut sim = Simulator::new(nodes, config);
        sim.run(2);
        // Only one of node 0's five copies travels the (0,1) edge per round.
        assert_eq!(sim.node(NodeId::from(1usize)).received, 1);
        // Node 1 -> 2 is not a local edge: nothing arrives.
        assert_eq!(sim.node(NodeId::from(2usize)).received, 0);
        // Node 2 -> 0 is not a local edge either.
        assert_eq!(sim.node(NodeId::from(0usize)).received, 0);
        // Copies over capacity: 4 from node 0, 2 from node 1, 1 from node 2.
        assert!(sim.metrics().total_dropped_send() >= 7);
    }

    #[test]
    fn arena_groups_stably_by_recipient() {
        let env = |from: usize, payload: u32| Envelope {
            from: NodeId::from(from),
            channel: Channel::Global,
            payload,
        };
        let mut arena: EnvelopeArena<u32> = EnvelopeArena::new(3);
        // Interleaved staging order, as dispatch produces it.
        arena.push(NodeId::from(2usize), env(0, 10));
        arena.push(NodeId::from(0usize), env(1, 11));
        arena.push(NodeId::from(2usize), env(1, 12));
        arena.push(NodeId::from(0usize), env(2, 13));
        arena.push(NodeId::from(2usize), env(2, 14));
        arena.group();
        fn payloads(arena: &EnvelopeArena<u32>, i: usize) -> Vec<u32> {
            arena.inbox(i).iter().map(|e| e.payload).collect()
        }
        assert_eq!(payloads(&arena, 0), vec![11, 13]);
        assert_eq!(payloads(&arena, 1), Vec::<u32>::new());
        assert_eq!(payloads(&arena, 2), vec![10, 12, 14]);
        // Dropping the middle of an inbox preserves the order of the rest.
        arena.retain_range(2, &[false, true, false]);
        assert_eq!(payloads(&arena, 2), vec![10, 14]);
        // Clearing retains nothing but keeps the arena usable.
        arena.clear();
        arena.group();
        assert!((0..3).all(|i| arena.inbox(i).is_empty()));
    }

    #[test]
    fn metrics_rounds_is_consistent_across_start_and_step() {
        // A zero-budget run executes only the start callback: exactly one round of
        // metrics is recorded and `rounds` agrees with it instead of staying stale.
        let mut sim = Simulator::new(flooders(4, 1, 2), SimConfig::default());
        let outcome = sim.run(0);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(sim.metrics().per_round.len(), 1);
        assert_eq!(sim.metrics().rounds, 1);
        // Each message round adds one recorded round and keeps the two in lockstep.
        sim.step();
        assert_eq!(sim.metrics().per_round.len(), 2);
        assert_eq!(sim.metrics().rounds, 2);
    }

    #[test]
    fn run_respects_round_limit() {
        let mut sim = Simulator::new(flooders(4, 1, 100), SimConfig::default());
        let outcome = sim.run(5);
        assert_eq!(outcome.rounds, 5);
        assert!(!outcome.all_done);
    }

    #[test]
    fn crashed_node_goes_silent_and_its_mail_is_lost() {
        // 8 flooders target node 0; node 0 crashes at round 2.
        let config = SimConfig::default()
            .with_faults(FaultPlan::default().with_crash(NodeId::from(0usize), 2));
        let mut sim = Simulator::new(flooders(8, 1, 4), config);
        let outcome = sim.run(10);
        // Crashed nodes count as done, so the run still completes.
        assert!(outcome.all_done);
        // Node 0 received mail in rounds 1 (it was alive); everything addressed to it
        // from round 2 on was dropped as offline.
        assert!(sim.metrics().total_dropped_offline() > 0);
        assert_eq!(sim.metrics().total_crashed(), 1);
        // Its own state stopped advancing: it never flagged done itself.
        assert!(!sim.node(NodeId::from(0usize)).done);
    }

    #[test]
    fn joiner_is_dormant_until_its_round() {
        // Node 1 joins at round 3. Flooders send every round to node 0, so node 1's
        // own sends (to node 0) only begin at its join round.
        let config = SimConfig::default()
            .with_faults(FaultPlan::default().with_join(NodeId::from(1usize), 3));
        let mut sim = Simulator::new(flooders(4, 1, 6), config);
        let outcome = sim.run(12);
        assert!(outcome.all_done);
        assert_eq!(sim.metrics().total_joined(), 1);
        // The dormant node sent nothing in rounds 0..3.
        let sent_by_joiner = sim.metrics().total_sent_per_node[1];
        let sent_by_resident = sim.metrics().total_sent_per_node[2];
        assert!(sent_by_joiner < sent_by_resident);
        assert!(
            sent_by_joiner > 0,
            "the joiner does participate after joining"
        );
    }

    #[test]
    fn join_forces_the_run_to_wait() {
        // All residents are done immediately, but node 2 joins at round 5: the
        // simulation cannot report all_done before then.
        let config = SimConfig::default()
            .with_faults(FaultPlan::default().with_join(NodeId::from(2usize), 5));
        let mut sim = Simulator::new(flooders(3, 1, 1), config);
        let outcome = sim.run(20);
        assert!(outcome.all_done);
        assert!(outcome.rounds >= 5, "ended at round {}", outcome.rounds);
    }

    #[test]
    fn random_loss_is_recorded_and_deterministic() {
        let run = |seed: u64| {
            let config = SimConfig {
                caps: CapacityModel::Unbounded,
                seed,
                faults: FaultPlan::default().with_drop_prob(0.4),
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(flooders(8, 2, 4), config);
            sim.run(10);
            sim.metrics().clone()
        };
        let a = run(11);
        assert!(a.total_dropped_fault() > 0);
        assert!(a.total_delivered() > 0);
        assert_eq!(a, run(11), "same seed must give byte-identical metrics");
        assert_ne!(a.total_dropped_fault(), run(12).total_dropped_fault());
    }

    #[test]
    fn delays_postpone_but_do_not_lose_messages() {
        let clean = {
            let mut sim = Simulator::new(flooders(6, 1, 3), SimConfig::default());
            sim.run(20);
            sim.metrics().total_delivered()
        };
        let config = SimConfig::default().with_faults(FaultPlan::default().with_delays(1.0, 3));
        let mut sim = Simulator::new(flooders(6, 1, 3), config);
        // Step past the point where every node is done so in-flight delayed messages
        // (run() would stop at all_done) still get delivered.
        for _ in 0..20 {
            sim.step();
        }
        assert!(sim.all_done());
        assert!(sim.metrics().total_delayed() > 0);
        // Everything still arrives, just later.
        assert_eq!(sim.metrics().total_delivered(), clean);
    }

    #[test]
    fn partition_blocks_cross_traffic_then_heals() {
        // Nodes 1..4 flood node 0 every round; nodes {2, 3} are cut off during
        // rounds 1..3.
        let side_a = vec![NodeId::from(2usize), NodeId::from(3usize)];
        let config =
            SimConfig::default().with_faults(FaultPlan::default().with_partition(side_a, 1, 3));
        let mut sim = Simulator::new(flooders(4, 1, 6), config);
        sim.run(10);
        assert!(sim.metrics().total_dropped_partition() > 0);
        // After healing, cross traffic flows again: node 0 hears from everyone in the
        // final rounds, so total deliveries exceed the partition-long minimum.
        let lost = sim.metrics().total_dropped_partition();
        // Two cut senders, two send rounds inside the window.
        assert_eq!(lost, 4);
    }

    #[test]
    fn receive_caps_bound_delayed_arrivals_too() {
        // Every node sends straight to node 0 with a forced 1-2 round delay; the
        // NCC0 receive cap must still hold on the rounds the messages land in.
        let config = SimConfig {
            caps: CapacityModel::Ncc0 { per_round: 3 },
            seed: 9,
            faults: FaultPlan::default().with_delays(1.0, 2),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(flooders(12, 1, 3), config);
        sim.run(12);
        assert!(sim.metrics().max_received_in_any_round() <= 3);
        assert!(sim.metrics().total_dropped_receive() > 0);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn fault_plan_referencing_missing_nodes_panics() {
        let config = SimConfig::default()
            .with_faults(FaultPlan::default().with_crash(NodeId::from(99usize), 1));
        let _ = Simulator::new(flooders(3, 1, 1), config);
    }

    #[test]
    #[should_panic(expected = "one entry per node")]
    fn mismatched_local_edges_panic() {
        let config = SimConfig {
            caps: CapacityModel::Unbounded,
            seed: 0,
            local_edges: Some(vec![vec![]]),
            ..SimConfig::default()
        };
        let _ = Simulator::new(flooders(3, 1, 1), config);
    }

    /// A config exercising every drop path: tight caps, random loss, a crash,
    /// and a late joiner.
    fn stormy_config() -> SimConfig {
        SimConfig {
            caps: CapacityModel::Ncc0 { per_round: 3 },
            seed: 11,
            faults: FaultPlan::default()
                .with_drop_prob(0.3)
                .with_crash(NodeId::from(1usize), 2)
                .with_join(NodeId::from(2usize), 3),
            ..SimConfig::default()
        }
    }

    #[test]
    fn tracing_does_not_change_the_run() {
        let run = |traced: bool| {
            let mut sim = Simulator::new(flooders(8, 2, 5), stormy_config());
            let buf = crate::trace::TraceBuffer::shared();
            if traced {
                sim.set_trace_sink(buf.clone());
            }
            let outcome = sim.run(12);
            let events = buf.borrow().events.len();
            (outcome, sim.metrics().clone(), events)
        };
        let (plain_outcome, plain_metrics, plain_events) = run(false);
        let (traced_outcome, traced_metrics, traced_events) = run(true);
        assert_eq!(plain_events, 0, "no sink, no events");
        assert!(traced_events > 0);
        assert_eq!(plain_outcome.rounds, traced_outcome.rounds);
        assert_eq!(plain_outcome.all_done, traced_outcome.all_done);
        assert_eq!(plain_metrics, traced_metrics, "RNG-stream identity");
    }

    #[test]
    fn trace_is_deterministic() {
        let run = || {
            let mut sim = Simulator::new(flooders(8, 2, 5), stormy_config());
            let buf = crate::trace::TraceBuffer::shared();
            sim.set_trace_sink(buf.clone());
            sim.run(12);
            let events = buf.borrow().events.clone();
            events
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn parallel_path_is_bitwise_identical_to_serial() {
        let run = |parallelism: ParallelismConfig| {
            let mut sim = Simulator::new(
                flooders(8, 2, 5),
                stormy_config().with_parallelism(parallelism),
            );
            let buf = crate::trace::TraceBuffer::shared();
            sim.set_trace_sink(buf.clone());
            let outcome = sim.run(12);
            let events = buf.borrow().events.clone();
            let received: Vec<usize> = (0..8).map(|i| sim.node(NodeId::from(i)).received).collect();
            (outcome.rounds, sim.metrics().clone(), events, received)
        };
        let serial = run(ParallelismConfig::serial());
        // Worker counts both below and above the node count, plus one that
        // leaves a ragged final chunk.
        for workers in [2, 3, 8, 13] {
            let parallel = run(ParallelismConfig::fixed(workers, 0));
            assert_eq!(serial, parallel, "workers={workers} must be bitwise serial");
        }
    }

    #[test]
    fn parallel_path_respects_congest_edges() {
        let run = |parallelism: ParallelismConfig| {
            let local = vec![
                vec![NodeId::from(1usize)],
                vec![NodeId::from(0usize), NodeId::from(2usize)],
                vec![NodeId::from(1usize)],
            ];
            let config = SimConfig {
                caps: CapacityModel::Hybrid {
                    local_per_edge: 1,
                    global_per_round: 8,
                },
                seed: 3,
                local_edges: Some(local),
                parallelism,
                ..SimConfig::default()
            };
            let nodes = vec![
                LocalSpammer {
                    target: NodeId::from(1usize),
                    copies: 5,
                    received: 0,
                },
                LocalSpammer {
                    target: NodeId::from(2usize),
                    copies: 1,
                    received: 0,
                },
                LocalSpammer {
                    target: NodeId::from(0usize),
                    copies: 1,
                    received: 0,
                },
            ];
            let mut sim = Simulator::new(nodes, config);
            sim.run(4);
            let received: Vec<usize> = (0..3).map(|i| sim.node(NodeId::from(i)).received).collect();
            (sim.metrics().clone(), received)
        };
        assert_eq!(
            run(ParallelismConfig::serial()),
            run(ParallelismConfig::fixed(2, 0))
        );
    }

    #[test]
    fn parallelism_threshold_keeps_small_runs_serial() {
        let auto = ParallelismConfig::default();
        assert_eq!(
            auto.effective_workers(16),
            1,
            "below min_nodes stays serial"
        );
        let fixed = ParallelismConfig::fixed(4, 1024);
        assert_eq!(fixed.effective_workers(1023), 1);
        assert_eq!(fixed.effective_workers(1024), 4);
        assert_eq!(ParallelismConfig::serial().effective_workers(1 << 20), 1);
    }

    #[test]
    fn trace_records_lifecycle_and_drops() {
        let mut sim = Simulator::new(flooders(8, 2, 5), stormy_config());
        let buf = crate::trace::TraceBuffer::shared();
        sim.set_trace_sink(buf.clone());
        sim.run(12);
        let events = buf.borrow().events.clone();

        assert_eq!(events.first(), Some(&TraceEvent::RoundStart { round: 0 }));
        assert!(events.contains(&TraceEvent::Crash {
            round: 2,
            node: NodeId::from(1usize)
        }));
        assert!(events.contains(&TraceEvent::Join {
            round: 3,
            node: NodeId::from(2usize)
        }));

        // Each drop cause seen in the trace matches the metrics counter it is
        // documented against.
        let drops_by = |cause: DropCause| {
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Drop { cause: c, .. } if *c == cause))
                .count() as u64
        };
        let m = sim.metrics();
        assert_eq!(drops_by(DropCause::Fault), m.total_dropped_fault());
        assert_eq!(drops_by(DropCause::Offline), m.total_dropped_offline());
        assert_eq!(drops_by(DropCause::ReceiveCap), m.total_dropped_receive());
        assert_eq!(
            drops_by(DropCause::SendCap) + drops_by(DropCause::InvalidAddress),
            m.total_dropped_send()
        );
        assert!(m.total_dropped_fault() > 0, "the storm must actually drop");
        assert!(m.total_dropped_receive() > 0);

        // Every round is bracketed by a RoundStart / RoundEnd pair, and the
        // RoundEnd rollups re-add to the run totals.
        let starts = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RoundStart { .. }))
            .count();
        let ends: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RoundEnd {
                    delivered, dropped, ..
                } => Some((*delivered, *dropped)),
                _ => None,
            })
            .collect();
        assert_eq!(starts, ends.len());
        assert_eq!(starts, m.rounds);
        let traced_delivered: u64 = ends.iter().map(|(d, _)| *d as u64).sum();
        assert_eq!(traced_delivered, m.total_delivered());
    }
}
