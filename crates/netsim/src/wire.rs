//! A small, dependency-free binary codec for protocol messages.
//!
//! The lockstep simulator moves messages as typed Rust values, so it never
//! needs a serialization format. Running the *same* protocols over real byte
//! streams (see the `overlay-net` crate) does: every message type that should
//! travel over a socket implements [`Wire`], a minimal length-delimited binary
//! encoding with explicit error reporting for truncated or malformed input.
//!
//! Design constraints, in order:
//!
//! * **No dependencies.** The workspace builds offline from vendored crates
//!   only, so the codec is hand-rolled little-endian encoding — no serde.
//! * **Total decoding.** `decode` never panics on adversarial input; every
//!   failure is a typed [`WireError`]. Callers feed untrusted bytes from
//!   sockets straight into it.
//! * **Deterministic bytes.** Encoding a value twice yields identical bytes,
//!   so frames can be compared and logged byte-for-byte across backends.
//!
//! Integers are little-endian and fixed-width. Collections are prefixed with a
//! `u32` element count. Enums write a one-byte tag followed by the variant's
//! fields; unknown tags decode to [`WireError::BadTag`].

use overlay_graph::NodeId;

use crate::protocol::Channel;

/// Why a byte buffer failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// An enum tag byte had no corresponding variant.
    BadTag(u8),
    /// A frame header declared an unsupported codec version.
    BadVersion(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadTag(t) => write!(f, "unknown enum tag {t}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A type with a deterministic binary encoding suitable for sockets.
///
/// `decode` consumes from the front of `buf` (advancing the slice) and must
/// accept exactly the bytes `encode` produces; round-tripping is asserted by
/// proptests in `overlay-net`. Implementations for protocol messages live next
/// to the message type they encode.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, advancing it past the bytes
    /// consumed.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;
}

/// Splits `n` bytes off the front of `buf`, or reports truncation.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(take(buf, 1)?[0])
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = take(buf, 4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let bytes = take(buf, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl Wire for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(NodeId::new(u64::decode(buf)?))
    }
}

impl Wire for Channel {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Channel::Local => 0,
            Channel::Global => 1,
        });
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Channel::Local),
            1 => Ok(Channel::Global),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(WireError::BadTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.len()).expect("collection fits in u32");
        len.encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        // Every element costs at least one byte, so a length prefix larger
        // than the remaining buffer is certainly truncated (or hostile);
        // rejecting it up front also bounds the allocation below.
        if len > buf.len() {
            return Err(WireError::Truncated);
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(buf)?);
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(T::decode(&mut slice).unwrap(), value);
        assert!(slice.is_empty(), "decode consumed every byte");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(NodeId::new(42));
        round_trip(Channel::Local);
        round_trip(Channel::Global);
        round_trip(Option::<u32>::None);
        round_trip(Some(7u32));
        round_trip(vec![NodeId::new(1), NodeId::new(2)]);
        round_trip(Vec::<u64>::new());
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut bytes = Vec::new();
        0xDEAD_BEEFu32.encode(&mut bytes);
        for cut in 0..bytes.len() {
            let mut slice = &bytes[..cut];
            assert_eq!(u32::decode(&mut slice), Err(WireError::Truncated));
        }
    }

    #[test]
    fn oversized_length_prefix_is_truncation_not_allocation() {
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(Vec::<u64>::decode(&mut slice), Err(WireError::Truncated));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut slice: &[u8] = &[9];
        assert_eq!(bool::decode(&mut slice), Err(WireError::BadTag(9)));
        let mut slice: &[u8] = &[7];
        assert_eq!(Channel::decode(&mut slice), Err(WireError::BadTag(7)));
        let mut slice: &[u8] = &[3, 0, 0, 0, 0];
        assert_eq!(Option::<u32>::decode(&mut slice), Err(WireError::BadTag(3)));
    }
}
