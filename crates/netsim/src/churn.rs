//! Continuous churn schedules: ongoing join/leave/crash arrival processes.
//!
//! A [`crate::FaultPlan`] describes *one-shot* interference — a crash wave at a
//! fixed round, a batch of delayed joiners — which is the right shape for a
//! bounded construction run. A long-running overlay service faces the opposite
//! regime: nodes arrive, depart, and crash **forever**, at steady rates, with
//! no final round after which the membership stops moving. A [`ChurnSchedule`]
//! models that regime as a deterministic arrival process: for every simulated
//! round it yields how many fresh nodes join, and which currently-alive members
//! leave gracefully or crash-stop.
//!
//! # Determinism
//!
//! Event *counts* come from a fixed-rate accumulator
//! (`⌊rate·(round+1)⌋ − ⌊rate·round⌋`), so they are an exact function of the
//! rate and the round number — no RNG, no drift. Victim *choices* are drawn
//! from a per-round RNG seeded from `(schedule seed, round)`, so a schedule
//! replays identically regardless of how the caller interleaves sampling with
//! other work. Two samples of the same `(round, alive)` pair are equal.
//!
//! # Victim ranks
//!
//! The schedule cannot know the caller's membership table, so departures are
//! reported as *ranks* into the caller's current alive list, applied
//! sequentially: each rank indexes the alive list **after** the previous
//! victims in the same [`RoundChurn`] have been removed (leaves first, then
//! crashes). Applying them in order therefore never indexes out of bounds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A periodic crash burst layered on top of the steady crash rate.
///
/// Bursts model correlated failures (a rack power event, a rolling reboot):
/// every `every_rounds` rounds, `fraction` of the currently-alive membership
/// crash-stops at once. The serve-family metric *rounds-to-repair* measures
/// how quickly maintenance restores coverage after each burst.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashBurst {
    /// Burst period in rounds (a burst fires at every positive multiple).
    pub every_rounds: usize,
    /// Fraction of the alive membership crashed per burst (`0.0..=1.0`).
    pub fraction: f64,
}

/// A deterministic continuous churn process: steady join/leave/crash rates
/// plus an optional periodic [`CrashBurst`].
///
/// Rates are *expected events per round* (absolute, not per-node) and may be
/// fractional: a `join_rate` of `0.1` admits one joiner every ten rounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSchedule {
    /// Seed for victim selection (counts are rate-only and seed-independent).
    pub seed: u64,
    /// Expected fresh-node arrivals per round.
    pub join_rate: f64,
    /// Expected graceful departures per round.
    pub leave_rate: f64,
    /// Expected crash-stop failures per round (steady component).
    pub crash_rate: f64,
    /// Optional periodic correlated-failure burst.
    pub burst: Option<CrashBurst>,
}

/// The churn events of one round, in application order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundChurn {
    /// Number of fresh nodes arriving this round.
    pub joins: usize,
    /// Graceful departures, as sequential ranks into the caller's alive list
    /// (see the module docs); applied before `crashes`.
    pub leaves: Vec<usize>,
    /// Crash-stop victims, as sequential ranks into the alive list *after*
    /// the leaves have been removed.
    pub crashes: Vec<usize>,
}

impl RoundChurn {
    /// `true` when the round carries no churn at all.
    pub fn is_empty(&self) -> bool {
        self.joins == 0 && self.leaves.is_empty() && self.crashes.is_empty()
    }
}

/// Events implied by `rate` in the half-open round interval `[round, round+1)`.
fn rate_count(rate: f64, round: usize) -> usize {
    let r = round as f64;
    ((rate * (r + 1.0)).floor() - (rate * r).floor()) as usize
}

impl ChurnSchedule {
    /// A schedule with the given seed and all rates zero — a quiet service.
    pub fn quiet(seed: u64) -> Self {
        ChurnSchedule {
            seed,
            join_rate: 0.0,
            leave_rate: 0.0,
            crash_rate: 0.0,
            burst: None,
        }
    }

    /// Validates the schedule: rates must be finite and non-negative, and a
    /// burst fraction must lie in `0.0..=1.0` with a positive period.
    ///
    /// # Panics
    ///
    /// Panics on any violation; schedules are configuration, so a bad one is
    /// a programming error.
    pub fn validate(&self) {
        for (label, rate) in [
            ("join_rate", self.join_rate),
            ("leave_rate", self.leave_rate),
            ("crash_rate", self.crash_rate),
        ] {
            assert!(
                rate.is_finite() && rate >= 0.0,
                "ChurnSchedule::{label} must be finite and non-negative, got {rate}"
            );
        }
        if let Some(burst) = self.burst {
            assert!(
                burst.every_rounds > 0,
                "CrashBurst::every_rounds must be positive"
            );
            assert!(
                (0.0..=1.0).contains(&burst.fraction) && burst.fraction.is_finite(),
                "CrashBurst::fraction must lie in 0.0..=1.0, got {}",
                burst.fraction
            );
        }
    }

    /// `true` when a burst fires at the start of `round`.
    pub fn burst_at(&self, round: usize) -> bool {
        match self.burst {
            Some(b) => round > 0 && round.is_multiple_of(b.every_rounds),
            None => false,
        }
    }

    /// Samples the churn of one round against an alive population of size
    /// `alive`. Pure in `(self, round, alive)`; see the module docs for the
    /// rank semantics of `leaves`/`crashes`.
    pub fn sample(&self, round: usize, alive: usize) -> RoundChurn {
        let joins = rate_count(self.join_rate, round);
        let mut wanted_leaves = rate_count(self.leave_rate, round);
        let mut wanted_crashes = rate_count(self.crash_rate, round);
        if self.burst_at(round) {
            let b = self.burst.expect("burst_at implies a burst is configured");
            wanted_crashes += (b.fraction * alive as f64).ceil() as usize;
        }

        // Per-round RNG: mix the round into the seed with SplitMix64's odd
        // constant so adjacent rounds decorrelate.
        let mix = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ mix);

        let mut remaining = alive;
        let mut pick = |wanted: usize, remaining: &mut usize| -> Vec<usize> {
            let take = wanted.min(*remaining);
            (0..take)
                .map(|_| {
                    let rank = rng.gen_range(0..*remaining);
                    *remaining -= 1;
                    rank
                })
                .collect()
        };
        wanted_leaves = wanted_leaves.min(remaining);
        let leaves = pick(wanted_leaves, &mut remaining);
        wanted_crashes = wanted_crashes.min(remaining);
        let crashes = pick(wanted_crashes, &mut remaining);

        RoundChurn {
            joins,
            leaves,
            crashes,
        }
    }

    /// Total events implied by `rate` over the first `rounds` rounds — the
    /// accumulator's closed form, handy for sizing expectations in tests.
    pub fn total_for(rate: f64, rounds: usize) -> usize {
        (rate * rounds as f64).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_the_rate_accumulator_exactly() {
        let s = ChurnSchedule {
            seed: 7,
            join_rate: 0.3,
            leave_rate: 0.0,
            crash_rate: 0.0,
            burst: None,
        };
        let total: usize = (0..100).map(|r| s.sample(r, 50).joins).sum();
        assert_eq!(total, ChurnSchedule::total_for(0.3, 100));
        assert_eq!(total, 30);
    }

    #[test]
    fn sampling_is_pure_in_round_and_alive() {
        let s = ChurnSchedule {
            seed: 42,
            join_rate: 0.5,
            leave_rate: 0.2,
            crash_rate: 0.1,
            burst: Some(CrashBurst {
                every_rounds: 10,
                fraction: 0.25,
            }),
        };
        s.validate();
        for round in 0..40 {
            assert_eq!(s.sample(round, 64), s.sample(round, 64));
        }
        // Out-of-order sampling changes nothing.
        let forward: Vec<_> = (0..40).map(|r| s.sample(r, 64)).collect();
        let backward: Vec<_> = (0..40).rev().map(|r| s.sample(r, 64)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn victim_ranks_are_sequentially_in_bounds() {
        let s = ChurnSchedule {
            seed: 3,
            join_rate: 0.0,
            leave_rate: 1.5,
            crash_rate: 2.0,
            burst: Some(CrashBurst {
                every_rounds: 5,
                fraction: 0.5,
            }),
        };
        for round in 0..30 {
            for alive in [0usize, 1, 3, 17] {
                let churn = s.sample(round, alive);
                let mut remaining = alive;
                for &rank in churn.leaves.iter().chain(churn.crashes.iter()) {
                    assert!(rank < remaining, "rank {rank} vs remaining {remaining}");
                    remaining -= 1;
                }
            }
        }
    }

    #[test]
    fn bursts_fire_on_the_period_and_never_at_round_zero() {
        let s = ChurnSchedule {
            seed: 0,
            join_rate: 0.0,
            leave_rate: 0.0,
            crash_rate: 0.0,
            burst: Some(CrashBurst {
                every_rounds: 8,
                fraction: 0.5,
            }),
        };
        assert!(!s.burst_at(0));
        assert!(s.burst_at(8));
        assert!(s.burst_at(16));
        assert!(!s.burst_at(9));
        assert_eq!(s.sample(8, 10).crashes.len(), 5);
        assert!(s.sample(7, 10).crashes.is_empty());
    }

    #[test]
    fn quiet_schedule_is_quiet() {
        let s = ChurnSchedule::quiet(9);
        s.validate();
        for round in 0..100 {
            assert!(s.sample(round, 128).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn negative_rates_are_rejected() {
        let mut s = ChurnSchedule::quiet(0);
        s.crash_rate = -0.1;
        s.validate();
    }
}
