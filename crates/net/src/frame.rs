//! The length-prefixed frame format every backend moves bytes in.
//!
//! A frame is the unit of transmission on both the in-process channel backend
//! and the TCP backend: protocol payloads, round-synchronizer markers and the
//! phase-boundary summary exchange all travel as frames. On a socket each
//! frame is preceded by a `u32` little-endian length prefix (the length of the
//! encoded frame, prefix excluded); on channels frames travel as values but
//! are still built from the *encoded* payload bytes, so the codec is exercised
//! identically on every backend.
//!
//! Layout after the length prefix (all integers little-endian):
//!
//! ```text
//! version:1  kind:1  phase:1  round:4  from:4  to:4  seq:4  body:…
//! ```
//!
//! `from`/`to` are node indices for [`FrameKind::Data`] and process ranks for
//! the control-plane kinds. `seq` is the sender's per-round send ordinal for
//! data frames (receivers sort inboxes by `(from, seq)` to reproduce the
//! simulator's delivery order) and spare space elsewhere. Frames whose
//! `version` is not [`WIRE_VERSION`] are rejected with
//! [`WireError::BadVersion`] before any field is interpreted.

use overlay_netsim::wire::{take, Wire, WireError};
use std::io::{Read, Write};

/// The frame codec version this build speaks. Bumped on any layout change;
/// decoding rejects every other value.
pub const WIRE_VERSION: u8 = 1;

/// Frames larger than this are rejected at the socket before allocation: no
/// phase of the pipeline legitimately produces frames anywhere near it, so an
/// oversized length prefix means a corrupt or hostile stream.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// What a frame carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// TCP handshake: a joiner introduces itself (body: its mesh listen
    /// address as UTF-8). Also sent on freshly dialed mesh links with `from`
    /// set to the dialer's rank and an empty body.
    Hello,
    /// TCP handshake: the listener's reply assigning ranks and describing the
    /// whole run (see [`Roster`]).
    Roster,
    /// A protocol payload: `body` is the encoded `(Channel, message)` pair,
    /// `round` the round it was sent in (delivery happens one round later).
    Data,
    /// Round-synchronizer marker: the sending *process* finished `round`;
    /// body is one `bool` — every node it owns reported done.
    Done,
    /// Phase-boundary all-gather: one frame per process carrying the encoded
    /// summaries of every node it owns plus its delivered-message count.
    Summary,
    /// Orderly shutdown: the sender will write nothing further.
    Bye,
}

impl Wire for FrameKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            FrameKind::Hello => 0,
            FrameKind::Roster => 1,
            FrameKind::Data => 2,
            FrameKind::Done => 3,
            FrameKind::Summary => 4,
            FrameKind::Bye => 5,
        });
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(FrameKind::Hello),
            1 => Ok(FrameKind::Roster),
            2 => Ok(FrameKind::Data),
            3 => Ok(FrameKind::Done),
            4 => Ok(FrameKind::Summary),
            5 => Ok(FrameKind::Bye),
            t => Err(WireError::BadTag(t)),
        }
    }
}

/// One unit of transmission; see the module docs for the field conventions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Pipeline phase index the frame belongs to.
    pub phase: u8,
    /// The round the frame was produced in.
    pub round: u32,
    /// Sending node index (data) or process rank (control plane).
    pub from: u32,
    /// Destination node index (data) or process rank (control plane).
    pub to: u32,
    /// Per-sender, per-round send ordinal for data frames; spare elsewhere.
    pub seq: u32,
    /// Kind-specific payload bytes.
    pub body: Vec<u8>,
}

impl Frame {
    /// A data frame carrying `body` from node `from` to node `to`.
    pub fn data(phase: u8, round: u32, from: u32, to: u32, seq: u32, body: Vec<u8>) -> Frame {
        Frame {
            kind: FrameKind::Data,
            phase,
            round,
            from,
            to,
            seq,
            body,
        }
    }

    /// A control-plane frame with no payload.
    pub fn control(kind: FrameKind, phase: u8, round: u32, from: u32, to: u32) -> Frame {
        Frame {
            kind,
            phase,
            round,
            from,
            to,
            seq: 0,
            body: Vec::new(),
        }
    }

    /// Encodes the frame *without* the socket length prefix.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(WIRE_VERSION);
        self.kind.encode(out);
        out.push(self.phase);
        self.round.encode(out);
        self.from.encode(out);
        self.to.encode(out);
        self.seq.encode(out);
        out.extend_from_slice(&self.body);
    }

    /// Decodes a frame from exactly the bytes [`Frame::encode`] produced (the
    /// whole remaining buffer becomes the body).
    pub fn decode(buf: &mut &[u8]) -> Result<Frame, WireError> {
        let version = u8::decode(buf)?;
        if version != WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let kind = FrameKind::decode(buf)?;
        let phase = u8::decode(buf)?;
        let round = u32::decode(buf)?;
        let from = u32::decode(buf)?;
        let to = u32::decode(buf)?;
        let seq = u32::decode(buf)?;
        let body = take(buf, buf.len())?.to_vec();
        Ok(Frame {
            kind,
            phase,
            round,
            from,
            to,
            seq,
            body,
        })
    }

    /// Writes the frame to a socket: `u32` length prefix, then the encoding.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(16 + self.body.len());
        self.encode(&mut bytes);
        let len = u32::try_from(bytes.len()).expect("frame fits in u32");
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&bytes)
    }

    /// Reads one length-prefixed frame from a socket. `Ok(None)` is a clean
    /// end-of-stream (EOF before the first prefix byte).
    pub fn read_from(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
        let mut prefix = [0u8; 4];
        match r.read(&mut prefix) {
            Ok(0) => return Ok(None),
            Ok(got) => r.read_exact(&mut prefix[got..])?,
            Err(e) => return Err(e),
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len > MAX_FRAME_LEN {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
            ));
        }
        let mut bytes = vec![0u8; len];
        r.read_exact(&mut bytes)?;
        let mut slice = bytes.as_slice();
        Frame::decode(&mut slice)
            .map(Some)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The TCP listener's handshake reply: everything a joiner needs to become a
/// full mesh participant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Roster {
    /// Total node count of the run.
    pub n: u32,
    /// Number of participating processes.
    pub procs: u32,
    /// The receiving process's assigned rank (`1..procs`; the listener is 0).
    pub your_rank: u32,
    /// Application configuration relayed verbatim from the listener (the
    /// bootstrap example packs its graph seed here so joiners rebuild the
    /// identical knowledge graph without extra flags).
    pub config: u64,
    /// Mesh listen addresses of ranks `1..procs`, as UTF-8, in rank order.
    pub addrs: Vec<Vec<u8>>,
}

impl Wire for Roster {
    fn encode(&self, out: &mut Vec<u8>) {
        self.n.encode(out);
        self.procs.encode(out);
        self.your_rank.encode(out);
        self.config.encode(out);
        self.addrs.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Roster {
            n: u32::decode(buf)?,
            procs: u32::decode(buf)?,
            your_rank: u32::decode(buf)?,
            config: u64::decode(buf)?,
            addrs: Vec::decode(buf)?,
        })
    }
}

/// Body of a [`FrameKind::Summary`] frame: every owned node's encoded digest
/// plus the process's delivered-message count for the phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryBody {
    /// `(node index, encoded summary)` for each node the sender owns.
    pub entries: Vec<(u32, Vec<u8>)>,
    /// Messages delivered to the sender's nodes' inboxes across the phase.
    pub delivered: u64,
}

impl Wire for SummaryBody {
    fn encode(&self, out: &mut Vec<u8>) {
        let len = u32::try_from(self.entries.len()).expect("entry count fits in u32");
        len.encode(out);
        for (node, bytes) in &self.entries {
            node.encode(out);
            bytes.encode(out);
        }
        self.delivered.encode(out);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let len = u32::decode(buf)? as usize;
        if len > buf.len() {
            return Err(WireError::Truncated);
        }
        let mut entries = Vec::with_capacity(len);
        for _ in 0..len {
            entries.push((u32::decode(buf)?, Vec::decode(buf)?));
        }
        Ok(SummaryBody {
            entries,
            delivered: u64::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_the_socket_codec() {
        let frame = Frame::data(1, 7, 3, 9, 2, vec![1, 2, 3]);
        let mut wire = Vec::new();
        frame.write_to(&mut wire).unwrap();
        let mut cursor = wire.as_slice();
        let back = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, frame);
        assert!(Frame::read_from(&mut cursor).unwrap().is_none(), "EOF");
    }

    #[test]
    fn bad_version_is_rejected() {
        let frame = Frame::control(FrameKind::Done, 0, 4, 1, 0);
        let mut bytes = Vec::new();
        frame.encode(&mut bytes);
        bytes[0] = WIRE_VERSION + 1;
        let mut slice = bytes.as_slice();
        assert_eq!(
            Frame::decode(&mut slice),
            Err(WireError::BadVersion(WIRE_VERSION + 1))
        );
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = wire.as_slice();
        assert!(Frame::read_from(&mut cursor).is_err());
    }

    #[test]
    fn roster_and_summary_bodies_round_trip() {
        let roster = Roster {
            n: 64,
            procs: 4,
            your_rank: 2,
            config: 0xFEED,
            addrs: vec![b"127.0.0.1:4001".to_vec(), b"127.0.0.1:4002".to_vec()],
        };
        let mut bytes = Vec::new();
        roster.encode(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(Roster::decode(&mut slice).unwrap(), roster);

        let body = SummaryBody {
            entries: vec![(0, vec![9, 9]), (1, vec![])],
            delivered: 123,
        };
        let mut bytes = Vec::new();
        body.encode(&mut bytes);
        let mut slice = bytes.as_slice();
        assert_eq!(SummaryBody::decode(&mut slice).unwrap(), body);
    }
}
