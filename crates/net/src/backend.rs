//! The [`Backend`] seam: how frames move and rounds synchronize.
//!
//! A backend owns a contiguous slice of the run's `n` nodes and provides three
//! planes to the [`crate::NetRunner`]:
//!
//! * a **data plane** — a clonable [`FrameSender`] every node thread uses to
//!   emit [`crate::FrameKind::Data`] frames, plus one [`mpsc::Receiver`] per
//!   owned node that those frames arrive on;
//! * a **synchronizer plane** — [`Backend::exchange_done`], the α-synchronizer
//!   barrier: it returns only after every participating process has finished
//!   the round (so all the round's data frames are enqueued at their
//!   destinations), and reports whether *all* nodes everywhere are done;
//! * a **gather plane** — [`Backend::exchange_summaries`], the phase-boundary
//!   all-gather of per-node digests from which every process derives the next
//!   phase's hand-off locally and identically.
//!
//! [`ChannelBackend`] is the single-process implementation over
//! [`std::sync::mpsc`]: every node is owned, the synchronizer and gather
//! planes are trivial, and the safety argument for the barrier is the channel
//! itself — `mpsc` sends enqueue synchronously, so when a node thread reports
//! its round complete, everything it sent that round is already in the
//! destination queues. The TCP implementation lives in [`crate::tcp`].

use crate::frame::Frame;
use crate::NetError;
use std::ops::Range;
use std::sync::mpsc;

/// `(node index, encoded summary)` pairs — the currency of the gather plane.
pub type SummaryEntries = Vec<(u32, Vec<u8>)>;

/// Clonable handle node threads send data frames through; the backend routes
/// by [`Frame::to`] (a local queue or a peer process's socket).
pub trait FrameSender: Clone + Send {
    /// Routes one frame toward its destination node.
    fn send(&self, frame: Frame) -> Result<(), NetError>;
}

/// The per-phase data plane a backend hands the runner.
pub struct PhasePlane<S> {
    /// One inbound frame queue per owned node, in owned-range order.
    pub receivers: Vec<mpsc::Receiver<Frame>>,
    /// The shared outbound handle (cloned into every node thread).
    pub sender: S,
}

/// A medium that can run the synchronous protocol rounds; see the module docs
/// for the three planes.
pub trait Backend {
    /// The data-plane sender type node threads clone.
    type Sender: FrameSender + 'static;

    /// Total node count of the run.
    fn n(&self) -> usize;

    /// The contiguous node range this process owns (the whole of `0..n` for
    /// single-process backends).
    fn owned(&self) -> Range<usize>;

    /// Opens the data plane for one phase. Frames for this phase that arrived
    /// before the call (a peer racing ahead through the summary barrier) must
    /// be delivered, not lost.
    fn open_phase(&mut self, phase: u8) -> Result<PhasePlane<Self::Sender>, NetError>;

    /// The α-synchronizer barrier after `round`: blocks until every process
    /// has finished it, then reports whether all nodes everywhere are done.
    /// On return, every data frame sent in `round` (to this process) is
    /// enqueued on its destination node's receiver.
    fn exchange_done(
        &mut self,
        phase: u8,
        round: u32,
        local_all_done: bool,
    ) -> Result<bool, NetError>;

    /// All-gathers phase-end digests: `local` holds `(node index, encoded
    /// summary)` for every owned node and `delivered` this process's
    /// delivered-message count; the result covers all `n` nodes and the
    /// run-wide delivered total.
    fn exchange_summaries(
        &mut self,
        phase: u8,
        local: SummaryEntries,
        delivered: u64,
    ) -> Result<(SummaryEntries, u64), NetError>;

    /// Quiescence handshake: announces this process will send nothing further
    /// and releases the medium's resources.
    fn shutdown(&mut self) -> Result<(), NetError>;
}

/// The node range process `rank` owns out of `n` nodes split across `procs`
/// processes: the standard contiguous block partition.
pub fn partition(n: usize, procs: usize, rank: usize) -> Range<usize> {
    (rank * n / procs)..((rank + 1) * n / procs)
}

/// The rank whose [`partition`] contains `node`.
pub fn rank_of(n: usize, procs: usize, node: usize) -> usize {
    // Inverse of `partition`'s floor arithmetic, found by the direct scan's
    // closed form: candidate ranks differ by at most one from the even split.
    let mut rank = (node * procs) / n;
    while !partition(n, procs, rank).contains(&node) {
        rank += 1;
    }
    rank
}

/// Single-process backend: every node a thread, every link an [`mpsc`]
/// channel.
pub struct ChannelBackend {
    n: usize,
}

impl ChannelBackend {
    /// A backend owning all `n` nodes of the run.
    pub fn new(n: usize) -> ChannelBackend {
        ChannelBackend { n }
    }
}

/// [`ChannelBackend`]'s data-plane handle: direct routing into per-node
/// queues.
#[derive(Clone)]
pub struct ChannelSender {
    txs: std::sync::Arc<Vec<mpsc::Sender<Frame>>>,
}

impl FrameSender for ChannelSender {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        let to = frame.to as usize;
        let tx = self
            .txs
            .get(to)
            .ok_or_else(|| NetError::Protocol(format!("frame addressed to unknown node {to}")))?;
        // A closed receiver means the destination thread already finished the
        // phase: the frame was sent in the final executed round, which the
        // synchronous model discards anyway.
        let _ = tx.send(frame);
        Ok(())
    }
}

impl Backend for ChannelBackend {
    type Sender = ChannelSender;

    fn n(&self) -> usize {
        self.n
    }

    fn owned(&self) -> Range<usize> {
        0..self.n
    }

    fn open_phase(&mut self, _phase: u8) -> Result<PhasePlane<ChannelSender>, NetError> {
        let (txs, receivers): (Vec<_>, Vec<_>) = (0..self.n).map(|_| mpsc::channel()).unzip();
        Ok(PhasePlane {
            receivers,
            sender: ChannelSender {
                txs: std::sync::Arc::new(txs),
            },
        })
    }

    fn exchange_done(
        &mut self,
        _phase: u8,
        _round: u32,
        local_all_done: bool,
    ) -> Result<bool, NetError> {
        // Single process: the local verdict is the global one, and the mpsc
        // enqueue-on-send property already provides the data-before-barrier
        // guarantee.
        Ok(local_all_done)
    }

    fn exchange_summaries(
        &mut self,
        _phase: u8,
        local: SummaryEntries,
        delivered: u64,
    ) -> Result<(SummaryEntries, u64), NetError> {
        Ok((local, delivered))
    }

    fn shutdown(&mut self) -> Result<(), NetError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_nodes_exactly_once() {
        for (n, procs) in [(64, 4), (65, 4), (7, 3), (1, 1), (128, 5)] {
            let mut covered = vec![0usize; n];
            for rank in 0..procs {
                for v in partition(n, procs, rank) {
                    covered[v] += 1;
                    assert_eq!(rank_of(n, procs, v), rank);
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "n={n} procs={procs}");
        }
    }

    #[test]
    fn channel_backend_routes_by_destination() {
        let mut backend = ChannelBackend::new(3);
        let plane = backend.open_phase(0).unwrap();
        plane
            .sender
            .send(Frame::data(0, 0, 0, 2, 0, vec![7]))
            .unwrap();
        assert_eq!(plane.receivers[2].try_recv().unwrap().body, vec![7]);
        assert!(plane.receivers[0].try_recv().is_err());
        assert!(
            plane
                .sender
                .send(Frame::data(0, 0, 0, 99, 0, Vec::new()))
                .is_err(),
            "frames to nodes outside the run are a protocol error"
        );
    }
}
