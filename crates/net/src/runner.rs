//! [`NetRunner`]: the [`PhaseExecutor`] that drives protocol nodes over a
//! [`Backend`], one thread per owned node.
//!
//! The runner replicates the lockstep simulator's observable semantics
//! exactly — that is the whole point of the seam, and the cross-backend
//! equivalence tests pin it:
//!
//! * **Round structure.** Round 0 runs `on_start`; round `r ≥ 1` runs
//!   `on_round` with the messages sent in round `r - 1`. Execution stops when
//!   every node (on every process) is done or the budget is exhausted;
//!   messages sent in the final executed round are discarded, as the
//!   simulator discards them.
//! * **Delivery order.** Each inbox is sorted by `(sender id, send order)`,
//!   matching the simulator's stable sender grouping.
//! * **Send caps.** The per-sender NCC0 global cap admits the first `cap`
//!   global sends of a round in send order; messages to addresses outside
//!   `0..n` are dropped without consuming cap budget. (Receive caps are not
//!   mirrored: on clean runs they never bind, and the net runner is
//!   clean-path only.)
//! * **Randomness.** Node `i` draws from `node_rng(seed, i)` — the simulator's
//!   exact per-node stream — so random choices match decision for decision.
//!
//! The α-synchronizer lives in the coordinator loop: after every owned node
//! reports round `r` complete, [`Backend::exchange_done`] barriers with the
//! peer processes. Its contract (all round-`r` data is enqueued at the
//! destinations before it returns) makes the per-round "go" signal safe.

use crate::backend::{Backend, FrameSender, PhasePlane};
use crate::frame::{Frame, FrameKind};
use crate::NetError;
use overlay_core::{ExecutedPhase, Phase, PhaseExecSpec, PhaseExecutor, Summarize};
use overlay_graph::NodeId;
use overlay_netsim::wire::Wire;
use overlay_netsim::{node_rng, CapacityModel, Channel, Ctx, Envelope, Protocol};
use overlay_transport::Reliable;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Drives [`overlay_core::OverlayBuilder::build_over`] across a [`Backend`].
pub struct NetRunner<B: Backend> {
    backend: B,
}

impl<B: Backend> NetRunner<B> {
    /// Wraps a connected backend.
    pub fn new(backend: B) -> NetRunner<B> {
        NetRunner { backend }
    }

    /// Releases the backend (sends the quiescence handshake on sockets).
    pub fn shutdown(mut self) -> Result<(), NetError> {
        self.backend.shutdown()
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }
}

impl<B: Backend> PhaseExecutor for NetRunner<B> {
    type Error = NetError;

    fn execute<P: Summarize + Send>(
        &mut self,
        phase: Phase<P>,
        spec: PhaseExecSpec,
    ) -> Result<ExecutedPhase<P::Summary>, Self::Error>
    where
        P::Message: Wire + Send,
    {
        let (id, nodes, _clean_rounds, _faults) = phase.into_parts();
        let tag = id.index() as u8;
        match spec.transport {
            None => run_phase_net(&mut self.backend, tag, nodes, spec, bare_summary::<P>),
            Some(cfg) => {
                // `Reliable<P>` cannot itself implement `Summarize` without a
                // blanket impl that would collide with the per-protocol ones,
                // so the summarizer travels as a plain function pointer that
                // reaches through to the inner protocol.
                let wrapped: Vec<Reliable<P>> =
                    nodes.into_iter().map(|p| Reliable::new(p, cfg)).collect();
                run_phase_net(&mut self.backend, tag, wrapped, spec, reliable_summary::<P>)
            }
        }
    }
}

fn bare_summary<P: Summarize>(node: &P) -> P::Summary
where
    P::Message: Wire,
{
    node.summarize()
}

fn reliable_summary<P: Summarize>(node: &Reliable<P>) -> P::Summary
where
    P::Message: Wire,
{
    node.inner().summarize()
}

/// A node thread's end-of-round report to the coordinator.
struct Report {
    round: u32,
    done: bool,
}

/// The coordinator's instruction to a node thread.
enum Go {
    /// Run message round `r` (deliver round `r - 1`'s frames).
    Run(u32),
    /// The phase is over; return the node state.
    Finish,
}

/// Runs one phase of `Q` nodes over the backend; `summarize` digests each
/// owned node's final state (reaching through the reliable wrapper when one
/// is present).
fn run_phase_net<B, Q, S>(
    backend: &mut B,
    phase: u8,
    mut nodes: Vec<Q>,
    spec: PhaseExecSpec,
    summarize: fn(&Q) -> S,
) -> Result<ExecutedPhase<S>, NetError>
where
    B: Backend,
    Q: Protocol + Send,
    Q::Message: Wire + Send,
    S: Wire + Clone + std::fmt::Debug + Send,
{
    let n = backend.n();
    if nodes.len() != n {
        return Err(NetError::Protocol(format!(
            "phase has {} nodes but the backend was set up for {n}",
            nodes.len()
        )));
    }
    let owned = backend.owned();
    let cap = CapacityModel::Ncc0 {
        per_round: spec.ncc0_cap,
    }
    .global_cap();
    let PhasePlane { receivers, sender } = backend.open_phase(phase)?;
    if receivers.len() != owned.len() {
        return Err(NetError::Protocol(format!(
            "backend produced {} receivers for {} owned nodes",
            receivers.len(),
            owned.len()
        )));
    }
    // Only the owned slice runs here; peers run theirs and the phase-end
    // summary exchange reassembles the full picture.
    let owned_nodes: Vec<(usize, Q)> = nodes
        .drain(..)
        .enumerate()
        .filter(|(i, _)| owned.contains(i))
        .collect();

    let (report_tx, report_rx) = mpsc::channel::<Report>();
    let mut go_txs: Vec<mpsc::Sender<Go>> = Vec::with_capacity(owned.len());

    let (finished, rounds, all_done) = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(owned.len());
        for ((i, node), rx) in owned_nodes.into_iter().zip(receivers) {
            let (go_tx, go_rx) = mpsc::channel::<Go>();
            go_txs.push(go_tx);
            let sender = sender.clone();
            let report_tx = report_tx.clone();
            handles.push(scope.spawn(move || {
                node_thread(
                    node, i, n, phase, cap, spec.seed, sender, rx, go_rx, report_tx,
                )
            }));
        }
        drop(report_tx);

        // The coordinator half of the α-synchronizer: collect every owned
        // node's report for the round, barrier with the peer processes, and
        // either advance everyone one round or stop. The stop rule is the
        // simulator's: run round r + 1 iff not everyone was done after round
        // r and the budget allows it.
        let mut coordinate = || -> Result<(usize, bool), NetError> {
            let wait_round = |r: u32| -> Result<bool, NetError> {
                let mut done = true;
                for _ in 0..go_txs.len() {
                    let rep = report_rx
                        .recv()
                        .map_err(|_| NetError::Protocol("a node thread died".into()))?;
                    debug_assert_eq!(rep.round, r);
                    done &= rep.done;
                }
                Ok(done)
            };
            let local_done = wait_round(0)?;
            let mut all_done = backend.exchange_done(phase, 0, local_done)?;
            let mut executed = 0u32;
            while (executed as usize) < spec.budget && !all_done {
                let r = executed + 1;
                for tx in &go_txs {
                    let _ = tx.send(Go::Run(r));
                }
                let local_done = wait_round(r)?;
                all_done = backend.exchange_done(phase, r, local_done)?;
                executed += 1;
            }
            Ok((executed as usize, all_done))
        };
        let verdict = coordinate();
        for tx in &go_txs {
            let _ = tx.send(Go::Finish);
        }
        let mut finished = Vec::with_capacity(handles.len());
        let mut died = false;
        for handle in handles {
            match handle.join() {
                Ok(result) => finished.push(result),
                Err(_) => died = true,
            }
        }
        let (rounds, all_done) = verdict?;
        if died {
            return Err(NetError::Protocol("a node thread panicked".into()));
        }
        Ok::<_, NetError>((finished, rounds, all_done))
    })?;

    // Phase-end all-gather: encode the owned digests, collect everyone's.
    let mut local_delivered = 0u64;
    let mut local = Vec::with_capacity(finished.len());
    for (i, node, delivered) in &finished {
        local_delivered += delivered;
        let mut bytes = Vec::new();
        summarize(node).encode(&mut bytes);
        local.push((*i as u32, bytes));
    }
    let (gathered, delivered) = backend.exchange_summaries(phase, local, local_delivered)?;
    let mut summaries: Vec<Option<S>> = vec![None; n];
    for (node, bytes) in gathered {
        let mut slice = bytes.as_slice();
        let summary = S::decode(&mut slice).map_err(NetError::Codec)?;
        let slot = summaries
            .get_mut(node as usize)
            .ok_or_else(|| NetError::Protocol(format!("summary for unknown node {node}")))?;
        if slot.replace(summary).is_some() {
            return Err(NetError::Protocol(format!(
                "duplicate summary for node {node}"
            )));
        }
    }
    let summaries: Vec<S> = summaries
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.ok_or_else(|| NetError::Protocol(format!("no summary for node {i}"))))
        .collect::<Result<_, _>>()?;

    Ok(ExecutedPhase {
        summaries,
        alive: vec![true; n],
        rounds,
        all_done,
        delivered,
    })
}

/// One node's whole phase: the per-round callback loop against the backend's
/// data plane, gated by the coordinator's go signals.
#[allow(clippy::too_many_arguments)]
fn node_thread<Q, Snd>(
    mut node: Q,
    i: usize,
    n: usize,
    phase: u8,
    cap: Option<usize>,
    seed: u64,
    sender: Snd,
    rx: mpsc::Receiver<Frame>,
    go_rx: mpsc::Receiver<Go>,
    report_tx: mpsc::Sender<Report>,
) -> (usize, Q, u64)
where
    Q: Protocol,
    Q::Message: Wire,
    Snd: FrameSender,
{
    let me = NodeId::from(i);
    let mut rng = node_rng(seed, i);
    let mut outbox: Vec<(NodeId, Channel, Q::Message)> = Vec::new();
    // Frames buffered by the round they were *sent* in; round r's inbox is
    // the (r - 1)-tagged buffer. The synchronizer guarantees completeness by
    // the time Go::Run(r) arrives.
    let mut pending: BTreeMap<u32, Vec<Frame>> = BTreeMap::new();
    let mut delivered = 0u64;

    {
        let mut ctx = Ctx::external(me, 0, n, &mut rng, &mut outbox);
        node.on_start(&mut ctx);
    }
    flush_outbox(&sender, phase, 0, i, n, cap, &mut outbox);
    let _ = report_tx.send(Report {
        round: 0,
        done: node.is_done(),
    });

    while let Ok(Go::Run(r)) = go_rx.recv() {
        while let Ok(frame) = rx.try_recv() {
            pending.entry(frame.round).or_default().push(frame);
        }
        let mut frames = pending.remove(&(r - 1)).unwrap_or_default();
        frames.sort_by_key(|f| (f.from, f.seq));
        let mut inbox = Vec::with_capacity(frames.len());
        for frame in &frames {
            let mut slice = frame.body.as_slice();
            let Ok(channel) = Channel::decode(&mut slice) else {
                continue; // An undecodable frame is dropped, not fatal: the
                          // codec tests make this unreachable for honest peers.
            };
            let Ok(payload) = Q::Message::decode(&mut slice) else {
                continue;
            };
            inbox.push(Envelope {
                from: NodeId::from(frame.from as usize),
                channel,
                payload,
            });
        }
        delivered += inbox.len() as u64;
        {
            let mut ctx = Ctx::external(me, r as usize, n, &mut rng, &mut outbox);
            node.on_round(&mut ctx, &inbox);
        }
        flush_outbox(&sender, phase, r, i, n, cap, &mut outbox);
        let _ = report_tx.send(Report {
            round: r,
            done: node.is_done(),
        });
    }
    (i, node, delivered)
}

/// Encodes and sends the round's outbox, mirroring the simulator's dispatch
/// rules: invalid addresses are dropped without consuming cap budget; the
/// per-sender global cap admits the first `cap` global sends in send order;
/// local-channel sends pass (no local capacity model is configured in NCC0
/// runs, matching `SimConfig::ncc0_capped`).
fn flush_outbox<M: Wire, Snd: FrameSender>(
    sender: &Snd,
    phase: u8,
    round: u32,
    from: usize,
    n: usize,
    cap: Option<usize>,
    outbox: &mut Vec<(NodeId, Channel, M)>,
) {
    let mut global_sent = 0usize;
    let mut seq = 0u32;
    for (to, channel, payload) in outbox.drain(..) {
        if to.index() >= n {
            continue;
        }
        if channel == Channel::Global {
            if matches!(cap, Some(c) if global_sent >= c) {
                continue;
            }
            global_sent += 1;
        }
        let mut body = Vec::new();
        channel.encode(&mut body);
        payload.encode(&mut body);
        let frame = Frame {
            kind: FrameKind::Data,
            phase,
            round,
            from: from as u32,
            to: to.index() as u32,
            seq,
            body,
        };
        seq += 1;
        // A send failure here means the backend is torn (socket gone); the
        // coordinator's next barrier will surface it as the phase error, so
        // the node thread just stops emitting.
        if sender.send(frame).is_err() {
            break;
        }
    }
    outbox.clear();
}
