//! Run the overlay-construction protocols over real byte streams.
//!
//! The simulator in `overlay-netsim` is a *model*: synchronous rounds, typed
//! messages, perfect lockstep. This crate is the deployment side of the same
//! protocol code — the identical [`overlay_core`] node state machines, driven
//! unmodified over:
//!
//! * [`ChannelBackend`] — one OS thread per node inside one process, frames
//!   over [`std::sync::mpsc`];
//! * [`TcpBackend`] — multiple OS processes meshed over TCP with
//!   length-prefixed binary frames (see [`frame`]).
//!
//! The seam is [`overlay_core::PhaseExecutor`]: [`NetRunner`] implements it
//! over any [`Backend`], and
//! [`overlay_core::OverlayBuilder::build_over`] drives the paper's pipeline
//! through it. The runner reproduces the simulator's delivery order, RNG
//! seeding, send caps and stop rule, so **per seed, every backend constructs
//! the same final overlay graph** — the simulator is this crate's CI-checked
//! model, and `tests/backend_equivalence.rs` enforces the claim.
//!
//! No async runtime is involved: the α-synchronizer (per-round `DONE`
//! markers, see [`backend`]) turns blocking threads and sockets into the
//! synchronous round structure the protocols were written against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod frame;
pub mod runner;
pub mod tcp;

pub use backend::{
    partition, rank_of, Backend, ChannelBackend, FrameSender, PhasePlane, SummaryEntries,
};
pub use frame::{Frame, FrameKind, Roster, WIRE_VERSION};
pub use runner::NetRunner;
pub use tcp::{TcpBackend, TcpHost};

use overlay_netsim::wire::WireError;

/// How the networking layer fails below the protocol layer.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io(std::io::Error),
    /// Bytes arrived that do not decode as what the protocol expects.
    Codec(WireError),
    /// A peer process missed a synchronizer deadline: the per-peer receive
    /// timeout fired, which is this layer's failure-detector verdict.
    PeerTimeout {
        /// The rank that went silent.
        rank: usize,
        /// What was being waited for when the timeout fired.
        waiting_for: &'static str,
    },
    /// The frame stream violated the synchronizer or handshake protocol.
    Protocol(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Codec(e) => write!(f, "undecodable frame: {e}"),
            NetError::PeerTimeout { rank, waiting_for } => {
                write!(f, "peer rank {rank} timed out (waiting for {waiting_for})")
            }
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> NetError {
        NetError::Codec(e)
    }
}
