//! [`TcpBackend`]: the multi-process mesh over real sockets.
//!
//! `k` OS processes split the run's `n` nodes into contiguous blocks (see
//! [`crate::backend::partition`]) and connect into a full mesh of TCP
//! streams carrying length-prefixed [`Frame`]s:
//!
//! 1. **Handshake.** Rank 0 listens on a well-known address; each joiner
//!    connects, opens its own ephemeral mesh listener, and sends
//!    [`FrameKind::Hello`] with that listener's address. Once all `k - 1`
//!    joiners are in, rank 0 assigns ranks in join order and answers each
//!    with a [`Roster`] (total `n`, process count, the joiner's rank, an
//!    application config word, and every joiner's mesh address).
//! 2. **Mesh.** Each joiner keeps its rank-0 connection and dials every
//!    *lower* non-zero rank (identifying itself with a `Hello`), while
//!    accepting one connection from every *higher* rank — one stream per
//!    process pair, no dial/accept deadlock.
//! 3. **Rounds.** Node threads write data frames into shared buffered
//!    writers. The coordinator's [`Backend::exchange_done`] flushes them,
//!    appends the process's `DONE` marker and waits for every peer's — TCP's
//!    per-stream FIFO then guarantees all of a peer's round-`r` data was
//!    received (and routed by that stream's reader thread) before its
//!    `DONE(r)` was, which is exactly the α-synchronizer barrier the runner
//!    relies on.
//! 4. **Failure detection.** Every barrier wait carries a deadline; a peer
//!    that stays silent past it is reported as [`NetError::PeerTimeout`] with
//!    its rank — the socket layer's failure-detector verdict.
//! 5. **Quiescence.** [`Backend::shutdown`] exchanges [`FrameKind::Bye`]
//!    markers so no process closes a socket another is still writing to.
//!
//! Each stream has one reader thread that demultiplexes by frame kind: data
//! frames are routed to the destination node's queue (or parked in a backlog
//! when they belong to a phase this process has not opened yet — a peer can
//! legitimately race one phase ahead through the summary barrier), control
//! frames go to the coordinator.

use crate::backend::{partition, rank_of, Backend, FrameSender, PhasePlane, SummaryEntries};
use crate::frame::{Frame, FrameKind, Roster, SummaryBody};
use crate::NetError;
use overlay_netsim::wire::Wire;
use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::ops::Range;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sentinel for "no phase open yet" in the routing table.
const NO_PHASE: u8 = u8::MAX;

/// Where reader threads deliver data frames for the currently open phase.
struct Routing {
    phase: u8,
    /// Smallest owned node index (the partition's start).
    base: usize,
    /// Per-owned-node senders, indexed by `node - base`.
    txs: Vec<mpsc::Sender<Frame>>,
    /// Data frames for phases not yet opened locally.
    backlog: Vec<Frame>,
}

impl Routing {
    /// Routes a current-phase data frame into its owned node's queue;
    /// mis-addressed frames are dropped.
    fn route(&self, frame: Frame) {
        let slot = (frame.to as usize).wrapping_sub(self.base);
        if let Some(tx) = self.txs.get(slot) {
            let _ = tx.send(frame);
        }
    }
}

type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

/// One mesh link to a peer process (the read half lives in a reader thread).
struct Peer {
    writer: SharedWriter,
}

/// The multi-process TCP implementation of [`Backend`].
pub struct TcpBackend {
    rank: usize,
    procs: usize,
    n: usize,
    config: u64,
    timeout: Duration,
    peers: Vec<Option<Peer>>,
    ctrl_rx: mpsc::Receiver<Frame>,
    /// Keeps the control channel open even when no reader threads exist
    /// (single-process runs) and lets reader threads clone from one place.
    _ctrl_tx: mpsc::Sender<Frame>,
    /// Control frames received while waiting for a different one.
    pending_ctrl: Vec<Frame>,
    routing: Arc<Mutex<Routing>>,
}

/// A bound-but-not-yet-meshed rank-0 endpoint, split from
/// [`TcpBackend::listen`] so callers binding an ephemeral port (`:0`) can
/// learn the actual address before the joiners dial in.
pub struct TcpHost {
    listener: TcpListener,
}

impl TcpHost {
    /// Binds the rank-0 handshake listener.
    pub fn bind(bind_addr: &str) -> Result<TcpHost, NetError> {
        Ok(TcpHost {
            listener: TcpListener::bind(bind_addr)?,
        })
    }

    /// The bound address (resolves `:0` to the assigned port).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Waits for `procs - 1` joiners, assigns ranks in join order, broadcasts
    /// the roster and becomes rank 0's backend. `config` is an
    /// application-defined word relayed to every joiner (the bootstrap
    /// example packs its graph seed in it).
    pub fn accept(
        self,
        procs: usize,
        n: usize,
        config: u64,
        timeout: Duration,
    ) -> Result<TcpBackend, NetError> {
        if procs == 0 {
            return Err(NetError::Protocol(
                "a run needs at least one process".into(),
            ));
        }
        let mut backend = TcpBackend::empty(0, procs, n, config, timeout);
        if procs == 1 {
            return Ok(backend);
        }
        let listener = self.listener;
        let mut joins = Vec::with_capacity(procs - 1);
        for _ in 1..procs {
            let (stream, _) = listener.accept()?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(timeout))?;
            let hello = read_handshake_frame(&stream, FrameKind::Hello)?;
            joins.push((stream, hello.body));
        }
        let addrs: Vec<Vec<u8>> = joins.iter().map(|(_, addr)| addr.clone()).collect();
        for (idx, (stream, _)) in joins.into_iter().enumerate() {
            let rank = idx + 1;
            let roster = Roster {
                n: n as u32,
                procs: procs as u32,
                your_rank: rank as u32,
                config,
                addrs: addrs.clone(),
            };
            let mut body = Vec::new();
            roster.encode(&mut body);
            let mut frame = Frame::control(FrameKind::Roster, 0, 0, 0, rank as u32);
            frame.body = body;
            write_handshake_frame(&stream, &frame)?;
            backend.install_peer(rank, stream)?;
        }
        Ok(backend)
    }
}

impl TcpBackend {
    /// Rank 0 in one call: bind `bind_addr` and complete the mesh (see
    /// [`TcpHost`] for the two-step form).
    pub fn listen(
        bind_addr: &str,
        procs: usize,
        n: usize,
        config: u64,
        timeout: Duration,
    ) -> Result<TcpBackend, NetError> {
        TcpHost::bind(bind_addr)?.accept(procs, n, config, timeout)
    }

    /// A joiner: connect to rank 0 at `listener_addr`, receive a rank and the
    /// roster, and complete the mesh. `n`, the process count and the config
    /// word all come from the roster.
    pub fn join(listener_addr: &str, timeout: Duration) -> Result<TcpBackend, NetError> {
        let zero = TcpStream::connect(listener_addr)?;
        zero.set_nodelay(true)?;
        zero.set_read_timeout(Some(timeout))?;
        let mesh_listener = TcpListener::bind("127.0.0.1:0")?;
        let mesh_addr = mesh_listener.local_addr()?.to_string();
        let mut hello = Frame::control(FrameKind::Hello, 0, 0, 0, 0);
        hello.body = mesh_addr.into_bytes();
        write_handshake_frame(&zero, &hello)?;
        let roster_frame = read_handshake_frame(&zero, FrameKind::Roster)?;
        let mut slice = roster_frame.body.as_slice();
        let roster = Roster::decode(&mut slice).map_err(NetError::Codec)?;
        let (n, procs, rank) = (
            roster.n as usize,
            roster.procs as usize,
            roster.your_rank as usize,
        );
        if rank == 0 || rank >= procs {
            return Err(NetError::Protocol(format!(
                "roster assigned invalid rank {rank}"
            )));
        }
        let mut backend = TcpBackend::empty(rank, procs, n, roster.config, timeout);
        backend.install_peer(0, zero)?;
        // Dial every lower non-zero rank, identifying ourselves.
        for lower in 1..rank {
            let addr = String::from_utf8(roster.addrs[lower - 1].clone())
                .map_err(|_| NetError::Protocol("mesh address is not UTF-8".into()))?;
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(timeout))?;
            let ident = Frame::control(FrameKind::Hello, 0, 0, rank as u32, lower as u32);
            write_handshake_frame(&stream, &ident)?;
            backend.install_peer(lower, stream)?;
        }
        // Accept every higher rank's dial.
        for _ in rank + 1..procs {
            let (stream, _) = mesh_listener.accept()?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(timeout))?;
            let ident = read_handshake_frame(&stream, FrameKind::Hello)?;
            let dialer = ident.from as usize;
            if dialer <= rank || dialer >= procs {
                return Err(NetError::Protocol(format!(
                    "mesh dial from unexpected rank {dialer}"
                )));
            }
            backend.install_peer(dialer, stream)?;
        }
        Ok(backend)
    }

    /// Total processes in the mesh.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The application config word from the roster (rank 0: the value it
    /// passed to [`TcpBackend::listen`]).
    pub fn config(&self) -> u64 {
        self.config
    }

    fn empty(rank: usize, procs: usize, n: usize, config: u64, timeout: Duration) -> TcpBackend {
        let (ctrl_tx, ctrl_rx) = mpsc::channel();
        TcpBackend {
            rank,
            procs,
            n,
            config,
            timeout,
            peers: (0..procs).map(|_| None).collect(),
            ctrl_rx,
            _ctrl_tx: ctrl_tx,
            pending_ctrl: Vec::new(),
            routing: Arc::new(Mutex::new(Routing {
                phase: NO_PHASE,
                base: partition(n, procs, rank).start,
                txs: Vec::new(),
                backlog: Vec::new(),
            })),
        }
    }

    /// Registers the mesh stream for `rank`, spawning its reader thread.
    fn install_peer(&mut self, rank: usize, stream: TcpStream) -> Result<(), NetError> {
        if self.peers[rank].is_some() {
            return Err(NetError::Protocol(format!(
                "duplicate mesh link to rank {rank}"
            )));
        }
        // Handshake deadlines no longer apply; barrier waits carry their own.
        stream.set_read_timeout(None)?;
        let read_half = stream.try_clone()?;
        let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
        let routing = Arc::clone(&self.routing);
        let ctrl_tx = self._ctrl_tx.clone();
        std::thread::spawn(move || reader_loop(read_half, routing, ctrl_tx));
        self.peers[rank] = Some(Peer { writer });
        Ok(())
    }

    /// Writes `frame` to every peer and flushes, so everything previously
    /// buffered (the round's data) reaches the wire strictly before it.
    fn broadcast_ctrl(&self, frame: &Frame) -> Result<(), NetError> {
        for peer in self.peers.iter().flatten() {
            let mut w = peer.writer.lock().expect("writer lock");
            frame.write_to(&mut *w)?;
            w.flush()?;
        }
        Ok(())
    }

    /// Retrieves the control frame matching (`kind`, `phase`, `round`, `from
    /// == rank`), consuming buffered candidates first and waiting on the
    /// control channel (bounded by the configured timeout) otherwise.
    fn wait_ctrl(
        &mut self,
        kind: FrameKind,
        phase: u8,
        round: u32,
        rank: usize,
        waiting_for: &'static str,
    ) -> Result<Frame, NetError> {
        let matches = |f: &Frame| {
            f.kind == kind && f.phase == phase && f.round == round && f.from as usize == rank
        };
        if let Some(pos) = self.pending_ctrl.iter().position(matches) {
            return Ok(self.pending_ctrl.remove(pos));
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(NetError::PeerTimeout { rank, waiting_for });
            }
            match self.ctrl_rx.recv_timeout(remaining) {
                Ok(frame) if matches(&frame) => return Ok(frame),
                Ok(frame)
                    if frame.kind == FrameKind::Bye
                        && kind != FrameKind::Bye
                        && frame.from as usize == rank =>
                {
                    // FIFO per stream: a Bye from the awaited rank means the
                    // expected frame can never arrive. Byes from *other* ranks
                    // are normal (they finished the run and are quiescing) and
                    // fall through to the buffer for shutdown() to consume.
                    return Err(NetError::Protocol(format!(
                        "rank {} hung up mid-run",
                        frame.from
                    )));
                }
                Ok(frame) => self.pending_ctrl.push(frame),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    return Err(NetError::PeerTimeout { rank, waiting_for });
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(NetError::Protocol("control plane closed".into()));
                }
            }
        }
    }
}

impl Backend for TcpBackend {
    type Sender = TcpSender;

    fn n(&self) -> usize {
        self.n
    }

    fn owned(&self) -> Range<usize> {
        partition(self.n, self.procs, self.rank)
    }

    fn open_phase(&mut self, phase: u8) -> Result<PhasePlane<TcpSender>, NetError> {
        let owned = self.owned();
        let (txs, receivers): (Vec<_>, Vec<_>) = owned.clone().map(|_| mpsc::channel()).unzip();
        let mut routing = self.routing.lock().expect("routing lock");
        routing.phase = phase;
        routing.base = owned.start;
        routing.txs = txs.clone();
        // A peer that raced ahead through the previous summary barrier may
        // already have sent this phase's round-0 data; release it now. Stale
        // frames from closed phases are dropped with the swap.
        let backlog = std::mem::take(&mut routing.backlog);
        for frame in backlog {
            if frame.phase == phase {
                routing.route(frame);
            }
        }
        drop(routing);
        let writers = self
            .peers
            .iter()
            .map(|p| p.as_ref().map(|p| Arc::clone(&p.writer)))
            .collect();
        Ok(PhasePlane {
            receivers,
            sender: TcpSender {
                n: self.n,
                procs: self.procs,
                rank: self.rank,
                base: owned.start,
                local: Arc::new(txs),
                writers: Arc::new(writers),
            },
        })
    }

    fn exchange_done(
        &mut self,
        phase: u8,
        round: u32,
        local_all_done: bool,
    ) -> Result<bool, NetError> {
        let mut done = Frame::control(FrameKind::Done, phase, round, self.rank as u32, 0);
        done.body = vec![u8::from(local_all_done)];
        self.broadcast_ctrl(&done)?;
        let mut all_done = local_all_done;
        let me = self.rank;
        for rank in (0..self.procs).filter(|&r| r != me) {
            let frame = self.wait_ctrl(FrameKind::Done, phase, round, rank, "DONE")?;
            let mut slice = frame.body.as_slice();
            all_done &= bool::decode(&mut slice).map_err(NetError::Codec)?;
        }
        Ok(all_done)
    }

    fn exchange_summaries(
        &mut self,
        phase: u8,
        local: SummaryEntries,
        delivered: u64,
    ) -> Result<(SummaryEntries, u64), NetError> {
        let body = SummaryBody {
            entries: local.clone(),
            delivered,
        };
        let mut frame = Frame::control(FrameKind::Summary, phase, 0, self.rank as u32, 0);
        body.encode(&mut frame.body);
        self.broadcast_ctrl(&frame)?;
        let mut all = local;
        let mut total = delivered;
        let me = self.rank;
        for rank in (0..self.procs).filter(|&r| r != me) {
            let frame = self.wait_ctrl(FrameKind::Summary, phase, 0, rank, "SUMMARY")?;
            let mut slice = frame.body.as_slice();
            let body = SummaryBody::decode(&mut slice).map_err(NetError::Codec)?;
            all.extend(body.entries);
            total += body.delivered;
        }
        Ok((all, total))
    }

    fn shutdown(&mut self) -> Result<(), NetError> {
        let bye = Frame::control(FrameKind::Bye, 0, 0, self.rank as u32, 0);
        self.broadcast_ctrl(&bye)?;
        // Quiescence: wait for every peer's Bye so no socket is torn down
        // while the other side still writes. A peer that already hung up
        // (its Bye is buffered, or its stream is gone) must not wedge us.
        let me = self.rank;
        for rank in (0..self.procs).filter(|&r| r != me) {
            match self.wait_ctrl(FrameKind::Bye, 0, 0, rank, "BYE") {
                Ok(_) | Err(NetError::Protocol(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// [`TcpBackend`]'s data-plane handle: local queues for owned destinations,
/// the peer's shared buffered writer otherwise.
#[derive(Clone)]
pub struct TcpSender {
    n: usize,
    procs: usize,
    rank: usize,
    base: usize,
    local: Arc<Vec<mpsc::Sender<Frame>>>,
    writers: Arc<Vec<Option<SharedWriter>>>,
}

impl FrameSender for TcpSender {
    fn send(&self, frame: Frame) -> Result<(), NetError> {
        let to = frame.to as usize;
        if to >= self.n {
            return Err(NetError::Protocol(format!(
                "frame addressed to unknown node {to}"
            )));
        }
        let rank = rank_of(self.n, self.procs, to);
        if rank == self.rank {
            // A closed receiver is a node thread that already finished — the
            // frame belongs to the discarded final round.
            let _ = self.local[to - self.base].send(frame);
            return Ok(());
        }
        let writer = self.writers[rank]
            .as_ref()
            .ok_or_else(|| NetError::Protocol(format!("no mesh link to rank {rank}")))?;
        let mut w = writer.lock().expect("writer lock");
        frame.write_to(&mut *w)?;
        Ok(())
    }
}

/// One mesh stream's demultiplexer: data to the routing table, control to the
/// coordinator. Exits on `Bye`, EOF or a torn stream (the coordinator's
/// barrier deadline turns the latter into a [`NetError::PeerTimeout`]).
fn reader_loop(stream: TcpStream, routing: Arc<Mutex<Routing>>, ctrl_tx: mpsc::Sender<Frame>) {
    let mut reader = BufReader::new(stream);
    while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
        match frame.kind {
            FrameKind::Data => {
                let mut routing = routing.lock().expect("routing lock");
                if frame.phase == routing.phase {
                    routing.route(frame);
                } else {
                    routing.backlog.push(frame);
                }
            }
            FrameKind::Bye => {
                let _ = ctrl_tx.send(frame);
                break;
            }
            _ => {
                if ctrl_tx.send(frame).is_err() {
                    break;
                }
            }
        }
    }
}

/// Writes one frame during the handshake, before the shared buffered writer
/// exists.
fn write_handshake_frame(mut stream: &TcpStream, frame: &Frame) -> Result<(), NetError> {
    frame.write_to(&mut stream)?;
    stream.flush()?;
    Ok(())
}

/// Reads one frame during the handshake and checks its kind (the stream's
/// read deadline bounds the wait).
fn read_handshake_frame(mut stream: &TcpStream, want: FrameKind) -> Result<Frame, NetError> {
    let frame = Frame::read_from(&mut stream)?
        .ok_or_else(|| NetError::Protocol("peer hung up during the handshake".into()))?;
    if frame.kind != want {
        return Err(NetError::Protocol(format!(
            "expected a {want:?} frame during the handshake, got {:?}",
            frame.kind
        )));
    }
    Ok(frame)
}
