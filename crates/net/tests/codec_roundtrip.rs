//! Property tests for the wire codec: every message that can cross a socket
//! round-trips byte-exactly, every truncation is rejected, and frames from a
//! different wire version are refused outright.

use overlay_core::bfs::BfsMsg;
use overlay_core::expander::ExpanderMsg;
use overlay_core::wellformed::RelinkMsg;
use overlay_core::{BfsSummary, BinarizeSummary, ExpanderSummary};
use overlay_graph::NodeId;
use overlay_net::frame::SummaryBody;
use overlay_net::{Frame, FrameKind, Roster, WIRE_VERSION};
use overlay_netsim::wire::{Wire, WireError};
use overlay_transport::TransportMsg;
use proptest::prelude::*;

/// Bytes before the variable-length body in [`Frame::encode`]'s layout:
/// version, kind, phase (1 byte each), then round, from, to, seq (4 each).
const FRAME_HEADER_LEN: usize = 3 + 4 * 4;

/// Encode → decode must reproduce the value, consume every byte, and reject
/// every strict prefix of the encoding (each field is mandatory, so a cut
/// anywhere surfaces as [`WireError::Truncated`]).
fn assert_round_trip<T: Wire + PartialEq + std::fmt::Debug>(value: &T) {
    let mut bytes = Vec::new();
    value.encode(&mut bytes);
    let mut buf = bytes.as_slice();
    let decoded = T::decode(&mut buf).unwrap_or_else(|e| panic!("decode of {value:?} failed: {e}"));
    prop_assert_eq!(&decoded, value);
    prop_assert!(buf.is_empty(), "decode left {} bytes unconsumed", buf.len());
    for cut in 0..bytes.len() {
        let mut prefix = &bytes[..cut];
        prop_assert!(
            T::decode(&mut prefix).is_err(),
            "truncation to {} of {} bytes was accepted for {:?}",
            cut,
            bytes.len(),
            value
        );
    }
}

fn node(raw: u64) -> NodeId {
    NodeId::new(raw)
}

fn nodes(raws: Vec<u64>) -> Vec<NodeId> {
    raws.into_iter().map(node).collect()
}

fn option_node(pick: (u8, u64)) -> Option<NodeId> {
    (pick.0 == 1).then(|| node(pick.1))
}

const ID: std::ops::Range<u64> = 0..1 << 48;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn expander_messages_round_trip(tag in 0u8..3, origin in ID, steps_left in 0u32..u32::MAX) {
        let msg = match tag {
            0 => ExpanderMsg::Intro,
            1 => ExpanderMsg::Token { origin: node(origin), steps_left },
            _ => ExpanderMsg::Accept,
        };
        assert_round_trip(&msg);
    }

    #[test]
    fn bfs_messages_round_trip(tag in 0u8..2, root in ID, dist in 0u32..u32::MAX) {
        let msg = match tag {
            0 => BfsMsg::Offer { root: node(root), dist },
            _ => BfsMsg::Child,
        };
        assert_round_trip(&msg);
    }

    #[test]
    fn relink_messages_round_trip(
        parent in ID,
        left in (0u8..2, ID),
        right in (0u8..2, ID),
    ) {
        assert_round_trip(&RelinkMsg {
            parent: node(parent),
            left: option_node(left),
            right: option_node(right),
        });
    }

    #[test]
    fn transport_wrapped_messages_round_trip(
        tag in 0u8..2,
        a in 0u32..u32::MAX,
        b in 0u32..u32::MAX,
        sel in 0u64..u64::MAX,
        origin in ID,
    ) {
        let msg: TransportMsg<ExpanderMsg> = if tag == 0 {
            TransportMsg::Data {
                seq: a,
                floor: b,
                payload: ExpanderMsg::Token { origin: node(origin), steps_left: 7 },
            }
        } else {
            TransportMsg::Ack { cum: a, sel }
        };
        assert_round_trip(&msg);
    }

    #[test]
    fn phase_summaries_round_trip(
        ids in (ID, ID, ID, ID),
        slots in proptest::collection::vec(ID, 0..8),
        children in proptest::collection::vec(ID, 0..8),
    ) {
        let (id, root, parent, new_parent) = ids;
        assert_round_trip(&ExpanderSummary { id: node(id), slots: nodes(slots) });
        assert_round_trip(&BfsSummary {
            id: node(id),
            root: node(root),
            parent: node(parent),
            children: nodes(children),
        });
        assert_round_trip(&BinarizeSummary { id: node(id), new_parent: node(new_parent) });
    }

    #[test]
    fn rosters_and_summary_bodies_round_trip(
        counts in (0u32..u32::MAX, 0u32..u32::MAX, 0u32..u32::MAX),
        config in 0u64..u64::MAX,
        addrs in proptest::collection::vec(proptest::collection::vec(0u8..255, 0..24), 0..6),
        entries in proptest::collection::vec((0u32..u32::MAX, proptest::collection::vec(0u8..255, 0..16)), 0..6),
        delivered in 0u64..u64::MAX,
    ) {
        let (n, procs, your_rank) = counts;
        assert_round_trip(&Roster { n, procs, your_rank, config, addrs });
        assert_round_trip(&SummaryBody { entries, delivered });
    }

    #[test]
    fn frames_round_trip_and_reject_header_truncation(
        kind_tag in 0u8..6,
        phase in 0u8..255,
        words in (0u32..u32::MAX, 0u32..u32::MAX, 0u32..u32::MAX, 0u32..u32::MAX),
        body in proptest::collection::vec(0u8..255, 0..32),
    ) {
        let mut tag_buf: &[u8] = &[kind_tag];
        let kind = FrameKind::decode(&mut tag_buf).unwrap();
        let (round, from, to, seq) = words;
        let frame = Frame { kind, phase, round, from, to, seq, body };
        let mut bytes = Vec::new();
        frame.encode(&mut bytes);
        let mut buf = bytes.as_slice();
        prop_assert_eq!(&Frame::decode(&mut buf).unwrap(), &frame);
        prop_assert!(buf.is_empty());
        // The body is the tail of the buffer, so only header cuts are
        // detectable at this layer; body truncation is caught by the stream
        // framing's length prefix (see `a_truncated_stream_is_an_error…`).
        for cut in 0..FRAME_HEADER_LEN.min(bytes.len()) {
            let mut prefix = &bytes[..cut];
            prop_assert!(Frame::decode(&mut prefix).is_err());
        }
    }

    #[test]
    fn foreign_wire_versions_are_refused(
        version in 0u8..255,
        body in proptest::collection::vec(0u8..255, 0..32),
    ) {
        if version == WIRE_VERSION {
            return;
        }
        let frame = Frame::data(0, 1, 2, 3, 4, body);
        let mut bytes = Vec::new();
        frame.encode(&mut bytes);
        bytes[0] = version;
        let mut buf = bytes.as_slice();
        prop_assert!(matches!(
            Frame::decode(&mut buf),
            Err(WireError::BadVersion(v)) if v == version
        ));
    }
}

#[test]
fn unknown_tags_are_rejected_not_misread() {
    let mut buf: &[u8] = &[3];
    assert!(matches!(
        ExpanderMsg::decode(&mut buf),
        Err(WireError::BadTag(3))
    ));
    let mut buf: &[u8] = &[2];
    assert!(matches!(
        BfsMsg::decode(&mut buf),
        Err(WireError::BadTag(2))
    ));
    let mut buf: &[u8] = &[2, 0, 0, 0, 0];
    assert!(matches!(
        <TransportMsg<ExpanderMsg>>::decode(&mut buf),
        Err(WireError::BadTag(2))
    ));
    let mut buf: &[u8] = &[6];
    assert!(matches!(
        FrameKind::decode(&mut buf),
        Err(WireError::BadTag(6))
    ));
}

#[test]
fn a_truncated_stream_is_an_error_not_a_clean_eof() {
    let frame = Frame::data(1, 2, 3, 4, 0, vec![9; 16]);
    let mut wire = Vec::new();
    frame.write_to(&mut wire).unwrap();
    // Clean EOF before any byte of a frame is the normal end of stream…
    let mut empty: &[u8] = &[];
    assert!(matches!(Frame::read_from(&mut empty), Ok(None)));
    // …but a cut anywhere inside a frame is a hard error.
    for cut in 1..wire.len() {
        let mut truncated: &[u8] = &wire[..cut];
        assert!(
            Frame::read_from(&mut truncated).is_err(),
            "stream cut at byte {cut} of {} read as clean",
            wire.len()
        );
    }
}
