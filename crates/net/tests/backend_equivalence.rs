//! The crate's central claim, enforced: per seed, every backend constructs
//! the same final overlay graph.
//!
//! The lockstep simulator is the model; the channel backend (one thread per
//! node, frames over mpsc) and the TCP backend (processes meshed over
//! loopback sockets — realized as threads sharing nothing but their sockets
//! here) must reproduce its expander edges, BFS parents, binarized tree,
//! round counts and delivered-message totals exactly.

use overlay_core::{ExpanderParams, OverlayBuilder, OverlayResult, SimExecutor};
use overlay_graph::{generators, DiGraph, NodeId};
use overlay_net::{ChannelBackend, NetRunner, TcpBackend, TcpHost};
use std::time::Duration;

fn builder(n: usize, seed: u64) -> OverlayBuilder {
    OverlayBuilder::new(ExpanderParams::for_n(n).with_seed(seed))
}

/// A low-degree connected graph family, varied by seed.
fn knowledge_graph(n: usize, seed: u64) -> DiGraph {
    match seed % 3 {
        0 => generators::line(n),
        1 => generators::cycle(n),
        _ => generators::binary_tree(n),
    }
}

fn assert_same_overlay(context: &str, model: &OverlayResult, subject: &OverlayResult) {
    assert_eq!(
        subject.expander.edge_count(),
        model.expander.edge_count(),
        "{context}: expander edge counts diverged"
    );
    for v in model.expander.nodes() {
        assert_eq!(
            subject.expander.neighbors(v),
            model.expander.neighbors(v),
            "{context}: expander neighborhoods of {v:?} diverged"
        );
    }
    assert_eq!(
        subject.bfs_parents, model.bfs_parents,
        "{context}: BFS parents diverged"
    );
    assert_eq!(subject.tree.node_count(), model.tree.node_count());
    for v in (0..model.tree.node_count()).map(NodeId::from) {
        assert_eq!(
            subject.tree.parent(v),
            model.tree.parent(v),
            "{context}: tree parents of {v:?} diverged"
        );
    }
    assert_eq!(
        (
            subject.rounds.construction,
            subject.rounds.bfs,
            subject.rounds.finalize
        ),
        (
            model.rounds.construction,
            model.rounds.bfs,
            model.rounds.finalize
        ),
        "{context}: round counts diverged"
    );
    assert_eq!(
        subject.messages.total_delivered, model.messages.total_delivered,
        "{context}: delivered totals diverged"
    );
}

#[test]
fn channel_backend_matches_the_simulator_across_seeds() {
    for seed in 0u64..16 {
        let n = 32 + (seed as usize % 4) * 16; // 32, 48, 64, 80
        let g = knowledge_graph(n, seed);
        let b = builder(n, seed);
        let model = b
            .build_over(&g, &mut SimExecutor::default())
            .unwrap_or_else(|e| panic!("seed {seed}: simulator build failed: {e}"));
        let mut runner = NetRunner::new(ChannelBackend::new(n));
        let subject = b
            .build_over(&g, &mut runner)
            .unwrap_or_else(|e| panic!("seed {seed}: channel build failed: {e}"));
        assert_same_overlay(&format!("n={n} seed={seed}"), &model, &subject);
    }
}

#[test]
fn channel_backend_matches_the_classic_build_entry_point() {
    let n = 64;
    let g = generators::line(n);
    let b = builder(n, 5);
    let direct = b.build(&g).expect("build");
    let mut runner = NetRunner::new(ChannelBackend::new(n));
    let subject = b.build_over(&g, &mut runner).expect("channel build");
    assert_same_overlay("build() vs channel", &direct, &subject);
}

/// The traffic half of the contract: the same `Router` nodes, pre-scheduled
/// with the same workload over the simulator-built overlay, must produce
/// identical delivery *sets* — the per-node summaries carry the exact delivery
/// ledgers (request ids, hops, injection and arrival rounds), so equality here
/// is stronger than matching counts.
#[test]
fn router_traffic_over_channel_backend_matches_the_simulator_across_seeds() {
    use overlay_core::{ExecutedPhase, Phase, PhaseExecSpec, PhaseExecutor, PhaseId};
    use overlay_netsim::FaultPlan;
    use overlay_traffic::{next_hops, Router, RouterConfig, RouterSummary, Workload};

    for seed in 0u64..16 {
        let n = 32 + (seed as usize % 4) * 16; // 32, 48, 64, 80
        let g = knowledge_graph(n, seed);
        let overlay = builder(n, seed)
            .build_over(&g, &mut SimExecutor::default())
            .unwrap_or_else(|e| panic!("seed {seed}: simulator build failed: {e}"));

        // Alternate the workload shape with the seed so both the uniform and
        // the congested hotspot traffic patterns cross the real channels.
        let workload = if seed % 2 == 0 {
            Workload::Uniform
        } else {
            Workload::Hotspot
        };
        let config = RouterConfig {
            ttl: 16,
            queue_cap: 32,
            per_round_budget: 4,
        };
        let table = next_hops(&overlay.expander);
        let schedule = workload.schedule(n, 4, 8, seed ^ 0x7AF1);
        let routers = || -> Vec<Router> {
            table
                .iter()
                .zip(&schedule)
                .enumerate()
                .map(|(v, (row, reqs))| Router::new(v as u32, row.clone(), reqs.clone(), config))
                .collect()
        };
        let budget = (8 + 16) * 2 + 16;
        let spec = PhaseExecSpec {
            seed: seed.wrapping_add(PhaseId::Traffic.index() as u64),
            ncc0_cap: 4096, // over-provisioned: congestion stays in the router queues
            budget,
            transport: None,
        };
        let phase = || Phase::from_parts(PhaseId::Traffic, routers(), budget, FaultPlan::default());
        let model: ExecutedPhase<RouterSummary> = SimExecutor::default()
            .execute(phase(), spec)
            .expect("simulator traffic is infallible");
        let mut runner = NetRunner::new(ChannelBackend::new(n));
        let subject = runner
            .execute(phase(), spec)
            .unwrap_or_else(|e| panic!("seed {seed}: channel traffic failed: {e}"));
        assert_eq!(
            model.summaries, subject.summaries,
            "n={n} seed={seed}: delivery ledgers diverged"
        );
        assert_eq!(model.alive, subject.alive, "n={n} seed={seed}");
        assert_eq!(model.rounds, subject.rounds, "n={n} seed={seed}");
        assert_eq!(model.all_done, subject.all_done, "n={n} seed={seed}");
        let delivered: usize = model.summaries.iter().map(|s| s.deliveries.len()).sum();
        assert!(delivered > 0, "n={n} seed={seed}: nothing was delivered");
    }
}

#[test]
fn tcp_loopback_matches_the_simulator() {
    let n = 16;
    let seed = 2;
    let procs = 4;
    let g = knowledge_graph(n, seed);
    let b = builder(n, seed);
    let model = b
        .build_over(&g, &mut SimExecutor::default())
        .expect("simulator build");

    let host = TcpHost::bind("127.0.0.1:0").expect("bind");
    let addr = host.local_addr().expect("local addr").to_string();
    let timeout = Duration::from_secs(30);
    let mut results = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        handles.push(scope.spawn({
            let g = g.clone();
            move || {
                let backend = host.accept(procs, n, seed, timeout).expect("accept");
                let mut runner = NetRunner::new(backend);
                let result = b.build_over(&g, &mut runner).expect("rank 0 build");
                runner.shutdown().expect("rank 0 shutdown");
                result
            }
        }));
        for _ in 1..procs {
            handles.push(scope.spawn({
                let g = g.clone();
                let addr = addr.clone();
                move || {
                    let backend = TcpBackend::join(&addr, timeout).expect("join");
                    let mut runner = NetRunner::new(backend);
                    let result = b.build_over(&g, &mut runner).expect("joiner build");
                    runner.shutdown().expect("joiner shutdown");
                    result
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .collect::<Vec<_>>()
    });

    // Every process derives the identical overlay from the all-gathered
    // summaries, and it matches the simulator's.
    for (rank, subject) in results.drain(..).enumerate() {
        assert_same_overlay(&format!("tcp rank {rank}"), &model, &subject);
    }
}
