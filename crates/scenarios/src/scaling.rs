//! The scaling harness: sweeps `n × family × fault load` through the large-`n`
//! matrix cells and reports wall-clock against the paper's `O(log n)` round
//! bound.
//!
//! The harness runs every size-axis cell of [`crate::full_registry`] (derived
//! via `Scenario::at_n`, so clean and lossy-reliable columns at each size) once
//! per size, twice each: once with within-round parallelism forced off and once
//! with it engaged. The two runs must produce identical records — the
//! simulator's parallel path is bitwise equal to the serial one — so the pair
//! yields a *measured* serial-vs-parallel wall-clock per `n` for free, next to
//! the round counts the paper's analysis predicts.
//!
//! Output is a markdown report ([`render_markdown`]) committed next to the
//! sweep baselines: machine facts first (they are what the wall-clocks mean
//! anything relative to), then a per-cell table, then the round-bound
//! interpretation. The sweep runner's `--scaling` flag drives this end to end.

use crate::scenario::Scenario;
use crate::VariantAxis;
use overlay_netsim::ParallelismConfig;
use std::time::{Duration, Instant};

/// The environment a scaling run measured on. Wall-clocks are meaningless
/// without these facts, so they head the committed report.
#[derive(Clone, Debug)]
pub struct MachineInfo {
    /// Cores the OS reports ([`std::thread::available_parallelism`]).
    pub available_parallelism: usize,
    /// The `RAYON_NUM_THREADS` override, when set.
    pub rayon_env: Option<String>,
    /// Worker threads rayon will actually use.
    pub workers: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
}

impl MachineInfo {
    /// Captures the current machine's facts.
    pub fn capture() -> Self {
        MachineInfo {
            available_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            rayon_env: std::env::var("RAYON_NUM_THREADS").ok(),
            workers: rayon::current_num_threads(),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
        }
    }

    /// Whether the machine has cores beyond the first. A serial-vs-parallel
    /// wall-clock ratio is only a *speedup* when there is a spare core to run
    /// the parallel path on; on a single core it measures sharding overhead,
    /// so the scaling report gates its speedup column behind this.
    pub fn has_spare_cores(&self) -> bool {
        self.available_parallelism > 1
    }
}

/// One measured cell of the scaling sweep: a `(scenario, n)` point with its
/// serial and parallel wall-clocks and the run's headline results.
#[derive(Clone, Debug)]
pub struct ScalingCell {
    /// The cell's registry name (e.g. `full-clean-line-65536`).
    pub name: String,
    /// Graph family label.
    pub family: String,
    /// Fault-load label.
    pub faults: String,
    /// Effective node count.
    pub n: usize,
    /// Total rounds across all pipeline phases.
    pub rounds: usize,
    /// Whether the run succeeded (tree valid over the final survivors).
    pub success: bool,
    /// Messages delivered.
    pub delivered: u64,
    /// Wall-clock with within-round parallelism forced off.
    pub serial_wall: Duration,
    /// Wall-clock with within-round parallelism engaged (same results, bitwise).
    pub parallel_wall: Duration,
    /// Worker threads the parallel run stepped nodes with.
    pub workers: usize,
}

impl ScalingCell {
    /// `serial_wall / parallel_wall`; `None` when too fast to measure.
    pub fn speedup(&self) -> Option<f64> {
        if self.parallel_wall.is_zero() {
            return None;
        }
        Some(self.serial_wall.as_secs_f64() / self.parallel_wall.as_secs_f64())
    }
}

/// The size-axis cells of [`crate::full_registry`] with `n <= max_n`, ordered
/// by `(n, name)` so the report reads smallest to largest.
pub fn scaling_cells(max_n: usize) -> Vec<Scenario> {
    let mut cells: Vec<Scenario> = crate::full_registry()
        .iter()
        .filter(|s| s.axis == Some(VariantAxis::Size) && s.actual_n() <= max_n)
        .cloned()
        .collect();
    cells.sort_by(|a, b| (a.actual_n(), &a.name).cmp(&(b.actual_n(), &b.name)));
    cells
}

/// Measures one cell: runs `seed` once serially and once with parallelism
/// engaged from `min_nodes` up, checks the two records are identical, and
/// returns the timed cell.
///
/// # Panics
///
/// Panics if the serial and parallel runs disagree — that would mean the
/// simulator's parallel path broke its bitwise-identity contract.
pub fn run_cell(scenario: &Scenario, seed: u64, min_nodes: usize) -> ScalingCell {
    let serial = scenario
        .clone()
        .with_parallelism(ParallelismConfig::serial());
    let parallel = scenario.clone().with_parallelism(ParallelismConfig {
        workers: None,
        min_nodes,
    });
    let start = Instant::now();
    let serial_record = serial.run(seed);
    let serial_wall = start.elapsed();
    let start = Instant::now();
    let parallel_record = parallel.run(seed);
    let parallel_wall = start.elapsed();
    assert_eq!(
        serial_record, parallel_record,
        "{}: parallel run must be bitwise identical to serial",
        scenario.name
    );
    ScalingCell {
        name: scenario.name.clone(),
        family: scenario.family.label(),
        faults: scenario.faults.label().to_string(),
        n: scenario.actual_n(),
        rounds: serial_record.rounds,
        success: serial_record.success,
        delivered: serial_record.delivered,
        serial_wall,
        parallel_wall,
        workers: rayon::current_num_threads(),
    }
}

fn log2_ceil(n: usize) -> usize {
    (usize::BITS - n.max(1).saturating_sub(1).leading_zeros()) as usize
}

/// Renders the committed markdown scaling report: machine facts, the per-cell
/// table, and the `O(log n)` interpretation (including, on machines without
/// spare cores, why no wall-clock speedup can appear).
pub fn render_markdown(machine: &MachineInfo, cells: &[ScalingCell]) -> String {
    let mut out = String::new();
    out.push_str("# Scaling report\n\n");
    out.push_str(
        "Generated by `sweep_runner --scaling`: every size-axis cell of the\n\
         `--full` registry runs once per size, serially and with within-round\n\
         parallelism engaged. The two runs are asserted bitwise identical, so\n\
         the wall-clock pair is a measured serial-vs-parallel comparison of the\n\
         same computation.\n\n",
    );
    out.push_str("## Machine\n\n");
    out.push_str(&format!("- os/arch: {}/{}\n", machine.os, machine.arch));
    out.push_str(&format!(
        "- available cores: {}\n",
        machine.available_parallelism
    ));
    out.push_str(&format!(
        "- RAYON_NUM_THREADS: {}\n",
        machine.rayon_env.as_deref().unwrap_or("(unset)")
    ));
    out.push_str(&format!("- rayon workers: {}\n\n", machine.workers));
    out.push_str("## Cells\n\n");
    // The speedup column only appears when a spare core exists to give the
    // ratio its meaning; on a single core the serial/parallel pair still
    // documents the sharded path's overhead, but labeling it "speedup" would
    // misread as a parallelism claim.
    let speedups = machine.has_spare_cores();
    if speedups {
        out.push_str(
            "| scenario | n | rounds | rounds/⌈log₂ n⌉ | success | delivered | serial wall | parallel wall | speedup |\n",
        );
        out.push_str("|---|---:|---:|---:|---|---:|---:|---:|---:|\n");
    } else {
        out.push_str(
            "| scenario | n | rounds | rounds/⌈log₂ n⌉ | success | delivered | serial wall | parallel wall |\n",
        );
        out.push_str("|---|---:|---:|---:|---|---:|---:|---:|\n");
    }
    for cell in cells {
        let log_n = log2_ceil(cell.n).max(1);
        out.push_str(&format!(
            "| {} | {} | {} | {:.1} | {} | {} | {:.2?} | {:.2?} |",
            cell.name,
            cell.n,
            cell.rounds,
            cell.rounds as f64 / log_n as f64,
            if cell.success { "yes" } else { "no" },
            cell.delivered,
            cell.serial_wall,
            cell.parallel_wall,
        ));
        if speedups {
            out.push_str(&format!(
                " {} |",
                cell.speedup()
                    .map_or("-".to_string(), |s| format!("{s:.2}x")),
            ));
        }
        out.push('\n');
    }
    out.push('\n');
    out.push_str("## Interpretation\n\n");
    out.push_str(
        "The paper's pipeline finishes in `O(log n)` rounds; the `rounds/⌈log₂ n⌉`\n\
         column is the measured constant. It should stay flat as `n` grows — the\n\
         wall-clock per cell then scales as `rounds × (work per round)`, and the\n\
         work per round is what within-round parallelism divides across cores.\n\n",
    );
    if !machine.has_spare_cores() {
        out.push_str(
            "**This machine exposes a single core**, so the parallel path cannot\n\
             produce a wall-clock speedup here: rayon sizes its pool to the one\n\
             available core (unless `RAYON_NUM_THREADS` forces more, which only\n\
             adds scheduling overhead on one core). The speedup column is\n\
             therefore omitted — the serial/parallel wall-clock pair measures\n\
             the sharded path's overhead, not its benefit; the bitwise identity\n\
             assertion still exercises that code path end to end. Re-run\n\
             `sweep_runner --scaling` on a multi-core machine for a real\n\
             speedup measurement.\n",
        );
    } else {
        out.push_str(&format!(
            "With {} cores available, cells at or above the parallelism threshold\n\
             should show speedups approaching the worker count as `n` grows and\n\
             per-round work dominates the serial merge/dispatch phases.\n",
            machine.available_parallelism
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_cells_are_size_sorted_and_capped() {
        let cells = scaling_cells(4096);
        assert!(!cells.is_empty());
        assert!(cells.iter().all(|s| s.actual_n() <= 4096));
        let sizes: Vec<usize> = cells.iter().map(|s| s.actual_n()).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
        // Both the clean and the lossy-reliable column are present at each size.
        assert!(cells.iter().any(|s| s.name.starts_with("full-clean-line-")));
        assert!(cells
            .iter()
            .any(|s| s.name.starts_with("full-lossy-ncc0-reliable-")));
    }

    #[test]
    fn run_cell_times_both_paths_and_asserts_identity() {
        // A small hand-rolled cell keeps this test fast; min_nodes = 0 forces
        // the parallel path to actually engage.
        let scenario = crate::find("clean-line").expect("registered");
        let cell = run_cell(&scenario, 0, 0);
        assert_eq!(cell.n, 128);
        assert!(cell.success);
        assert!(cell.rounds > 0);
        assert!(cell.delivered > 0);
    }

    #[test]
    fn markdown_report_names_every_cell_and_the_machine() {
        let machine = MachineInfo::capture();
        let scenario = crate::find("clean-line").expect("registered");
        let cell = run_cell(&scenario, 0, 0);
        let text = render_markdown(&machine, &[cell]);
        assert!(text.contains("# Scaling report"));
        assert!(text.contains("## Machine"));
        assert!(text.contains("clean-line"));
        assert!(text.contains("rounds/⌈log₂ n⌉"));
        assert!(text.contains("## Interpretation"));
    }

    #[test]
    fn speedup_column_is_gated_behind_spare_cores() {
        let scenario = crate::find("clean-line").expect("registered");
        let cell = run_cell(&scenario, 0, 0);
        let single = MachineInfo {
            available_parallelism: 1,
            rayon_env: None,
            workers: 1,
            os: "linux",
            arch: "x86_64",
        };
        let multi = MachineInfo {
            available_parallelism: 8,
            workers: 8,
            ..single.clone()
        };
        assert!(!single.has_spare_cores());
        assert!(multi.has_spare_cores());
        let single_text = render_markdown(&single, std::slice::from_ref(&cell));
        assert!(!single_text.contains("speedup |"), "{single_text}");
        assert!(single_text.contains("single core"), "{single_text}");
        let multi_text = render_markdown(&multi, &[cell]);
        assert!(multi_text.contains("| speedup |"), "{multi_text}");
        assert!(!multi_text.contains("single core"), "{multi_text}");
    }

    #[test]
    fn log2_ceil_matches_the_netsim_definition() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(65536), 16);
    }
}
