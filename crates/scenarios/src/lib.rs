//! Declarative churn & fault scenarios with a parallel multi-seed sweep runner.
//!
//! The paper's Theorem 1.1 is a clean-network statement; this crate measures what the
//! pipeline does when the network is *not* clean. A [`Scenario`] names one experiment:
//! a graph family × size × capacity profile × [`FaultSpec`] (lowered per run into a
//! concrete seeded [`overlay_netsim::FaultPlan`]). A [`Sweep`] executes a scenario
//! across many seeds — in parallel via rayon — and aggregates the per-seed
//! [`RunRecord`]s into a [`SweepReport`] with success rates, coverage, round counts
//! and message-loss accounting, serializable to JSON.
//!
//! # The registry
//!
//! [`registry`] returns the named built-in scenarios (clean baselines, lossy NCC0,
//! delay jitter, mid-build crash wave, join churn, partition/heal, tight capacity);
//! [`find`] looks one up by name. Run them all via the `experiments` binary of
//! `overlay-bench` or sweep a single one with `examples/churn_sweep.rs`.
//!
//! # Adding a scenario
//!
//! 1. If the failure mode is new, add a variant to [`FaultSpec`] and lower it to a
//!    [`overlay_netsim::FaultPlan`] in [`FaultSpec::lower`] — keep every random choice
//!    derived from the `seed` argument so reruns are reproducible.
//! 2. Append a `Scenario { name, description, family, n, capacity, faults,
//!    round_budget, transport, phases }` entry to [`registry`]. Names are
//!    kebab-case and unique; the registry test enforces this. Declare a
//!    [`RoundBudget`] above [`RoundBudget::STANDARD`] only when the fault model
//!    legitimately stretches wall-rounds (delivery jitter, late joins,
//!    reliable-transport retry round-trips). Set `transport:
//!    Some(TransportConfig)` to run the pipeline over the `overlay-transport`
//!    reliability layer — by convention such scenarios are `-reliable` twins of a
//!    bare baseline, so the report pair isolates what reliability costs (acks,
//!    retransmissions, extra rounds) and buys (completed seeds) per fault family.
//!    Use `phases` ([`PhaseOverrides`]) to scope a budget or transport to a
//!    single pipeline phase (e.g. reliable delivery only for the one-round
//!    binarization); non-empty overrides are recorded in the report header.
//! 3. There is no step 3: sweeps, aggregation, JSON reports, persisted
//!    `reports/<name>.json` files and the experiments binary pick the new entry up
//!    automatically.
//!
//! # Persisted reports
//!
//! [`report::write_report`] saves a sweep's deterministic JSON body under
//! `reports/<scenario>.json`; [`report::diff_reports`] compares two such documents
//! structurally for cross-commit regression checks (see the `sweep_runner` binary,
//! which runs the whole registry, persists every report, and optionally `--check`s
//! against the previous ones).
//!
//! # Determinism
//!
//! A scenario run is a pure function of `(scenario, seed)`: graph generation, the
//! fault plan, and every simulator decision derive from the seed. The sweep runner
//! preserves input order regardless of worker scheduling, so a whole [`SweepReport`]
//! is reproducible byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod registry;
pub mod report;
mod scenario;
mod sweep;

pub use json::Json;
pub use overlay_core::{PhaseId, PhaseOverrides, RoundBudget, TransportChoice};
pub use overlay_netsim::TransportConfig;
pub use registry::{find, full_registry, registry};
pub use scenario::{CapacityProfile, FaultSpec, GraphFamily, RunRecord, Scenario};
pub use sweep::{Sweep, SweepReport};
