//! Declarative churn & fault scenarios with a parallel multi-seed sweep runner.
//!
//! The paper's Theorem 1.1 is a clean-network statement; this crate measures what the
//! pipeline does when the network is *not* clean. A [`Scenario`] names one experiment:
//! a graph family × size × capacity profile × [`FaultSpec`] (lowered per run into a
//! concrete seeded [`overlay_netsim::FaultPlan`]). A [`Sweep`] executes a scenario
//! across many seeds — in parallel via rayon — and aggregates the per-seed
//! [`RunRecord`]s into a [`SweepReport`] with success rates, coverage, round counts
//! and message-loss accounting, serializable to JSON.
//!
//! # The registry
//!
//! [`registry`] returns the built-in scenario matrix as a first-class
//! [`Registry`]: validated at construction (unique kebab-case names, every
//! [`Scenario::baseline`] pairing resolves, every derived twin differs from its
//! baseline only along its declared [`VariantAxis`]), with indexed
//! [`Registry::find`], tag/family/fault filtering, and a [`Registry::pairs`]
//! iterator over `(baseline, twin)` couples. Run them all via the `experiments`
//! binary of `overlay-bench`, sweep a single one with `examples/churn_sweep.rs`,
//! or discover the cells with `sweep_runner --list [--tag T]`.
//!
//! # Adding a matrix cell
//!
//! 1. If the failure mode is new, add a variant to [`FaultSpec`] and lower it to a
//!    [`overlay_netsim::FaultPlan`] in [`FaultSpec::lower`] — keep every random choice
//!    derived from the `seed` argument so reruns are reproducible. Then register a
//!    hand-authored baseline with [`Scenario::new`] plus the `with_*` setters.
//!    Declare a [`RoundBudget`] above [`RoundBudget::STANDARD`] only when the
//!    fault model legitimately stretches wall-rounds (delivery jitter, late
//!    joins, reliable-transport retry round-trips).
//! 2. If the cell is a *variant* of an existing experiment, derive it instead of
//!    copying it: [`Scenario::reliable`] adds the `overlay-transport` reliability
//!    layer (plus flat retry slack), [`Scenario::with_capacity`] moves the NCC0
//!    capacity profile, [`Scenario::with_phases`] scopes budget/transport
//!    overrides to single pipeline phases, and [`Scenario::at_n`] derives the
//!    on-demand large-`n` rerun for [`full_registry`]. Each derivation appends a
//!    deterministic name suffix, rewrites the description, and records its
//!    baseline and axis, so [`Registry::pairs`] (and `sweep_runner --compare`'s
//!    delta table) pick the couple up automatically.
//! 3. There is no step 3: sweeps, aggregation, JSON reports, persisted
//!    `reports/<name>.json` files and the experiments binary pick the new entry up
//!    automatically — run `sweep_runner` once without `--check` to commit the
//!    cell's 16-seed baseline.
//!
//! # Persisted reports
//!
//! [`report::write_report`] saves a sweep's deterministic JSON body under
//! `reports/<scenario>.json`; [`report::diff_reports`] compares two such documents
//! structurally for cross-commit regression checks (see the `sweep_runner` binary,
//! which runs the whole registry, persists every report, and optionally `--check`s
//! against the previous ones).
//!
//! # Determinism
//!
//! A scenario run is a pure function of `(scenario, seed)`: graph generation, the
//! fault plan, and every simulator decision derive from the seed. The sweep runner
//! preserves input order regardless of worker scheduling, so a whole [`SweepReport`]
//! is reproducible byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod forensics;
pub mod json;
mod registry;
pub mod report;
pub mod scaling;
mod scenario;
mod sweep;
pub mod trace;

pub use compare::{
    check_thresholds, load_thresholds, write_thresholds, PairDelta, PairThreshold, TrafficDeltas,
};
pub use forensics::{post_mortem, MissingCause, MissingNode, PostMortem};
pub use json::Json;
pub use overlay_core::{PhaseId, PhaseMetrics, PhaseOverrides, RoundBudget, TransportChoice};
pub use overlay_netsim::{ChurnSchedule, CrashBurst};
pub use overlay_netsim::{MetricsMode, ParallelismConfig, TraceEvent, TransportConfig};
pub use overlay_traffic::{RoutingPolicy, TrafficReport, Workload};
pub use registry::{find, full_registry, registry, Registry, RegistryError};
pub use scenario::{
    CapacityProfile, FaultSpec, ForensicRun, GraphFamily, RunRecord, Scenario, ServeRecord,
    ServeSpec, TrafficRecord, TrafficSpec, VariantAxis,
};
pub use sweep::{Sweep, SweepReport};
