//! Runs fault-scenario sweeps and persists their JSON reports under `reports/`.
//!
//! ```text
//! cargo run --release -p overlay-scenarios --bin sweep_runner [OPTIONS] [SCENARIO...]
//!
//!   --seeds N       seeds per scenario (default 16)
//!   --first-seed S  first seed of the range (default 0)
//!   --dir PATH      output directory (default reports)
//!   --check         diff each new report against the existing file before
//!                   overwriting; exit 1 if any deterministic value changed
//!   --full          additionally run the on-demand larger-n sweeps
//!                   (n = 1024 / 4096 / 16384 / 65536); their reports go to
//!                   `<dir>/full/` and are never part of the committed
//!                   `--check` baselines; each is timed against a sequential
//!                   baseline (identical records asserted, speedup in the
//!                   `.meta.json` sidecar and the summary line)
//!   --compare       after the sweeps, print the baseline-vs-twin delta table
//!                   (success, coverage, rounds, delivered, retransmits per
//!                   registered pair) and persist it to `<dir>/compare.md`;
//!                   when `<dir>/thresholds.json` exists, additionally check
//!                   every committed pair floor (a twin's success or coverage
//!                   delta shrinking below its committed value exits 1)
//!   --no-run        with --compare: build the delta table from the *committed*
//!                   reports under `<dir>` without re-sweeping anything
//!   --write-thresholds
//!                   with --compare: instead of checking `<dir>/thresholds.json`,
//!                   (re)write it from the deltas just computed — the workflow
//!                   for establishing or deliberately revising the pair floors
//!   --trace NAME    run scenario NAME once (under --seed) with tracing on,
//!                   write the JSONL event trace to
//!                   `<dir>/traces/<NAME>-seed<S>.jsonl`, print its
//!                   post-mortem, and exit
//!   --seed S        the seed for --trace (default 0)
//!   --explain       after each sweep, print a forensic post-mortem (failing
//!                   phase, missing nodes, dominant drop cause, dead-peer
//!                   burn) for every failed seed
//!   --list          print the registry (name, family, n, faults, tags,
//!                   baseline) and exit without running anything
//!   --tag T         restrict --list and the default sweep selection to
//!                   scenarios whose effective tags contain T
//!   --par-threshold N
//!                   engage within-round parallelism from N nodes up for every
//!                   selected scenario (default: the scenario's own policy,
//!                   4096). `--par-threshold 0` forces the parallel path even
//!                   on the small committed cells — with `--check`, that makes
//!                   the run a serial-vs-parallel equivalence gate, since the
//!                   parallel path must reproduce the committed baselines
//!                   byte-for-byte
//!   --scaling       run the scaling harness instead of sweeps: every
//!                   size-axis cell of the full registry (clean and
//!                   lossy-reliable columns) runs once per size, serially and
//!                   in parallel, asserted bitwise identical; machine info and
//!                   per-n wall-clocks land in `<dir>/scaling.md`
//!   --max-n N       cap the scaling harness at cells with n <= N
//!                   (default 65536)
//!   --net-smoke     run the transport-equivalence smoke instead of sweeps:
//!                   a handful of (n, seed) overlay builds through the real
//!                   `overlay-net` channel backend (a thread per node, frames
//!                   over mpsc), each asserted identical to the lockstep
//!                   simulator's build; per-backend wall-clocks are printed
//!   --traffic-smoke run the traffic-equivalence smoke instead of sweeps: the
//!                   clean and hotspot traffic cells route their workload over
//!                   both the lockstep simulator and the real channel backend,
//!                   and every per-node router summary (the exact delivery
//!                   ledgers included) is asserted identical
//!   SCENARIO...     registry names to run (default: the whole registry)
//! ```
//!
//! Reports are deterministic per `(scenario, seed set)`, so committing `reports/`
//! and running with `--check` turns any behavior change into a named, per-seed,
//! per-counter diff. The `--full` sweeps are deliberately outside that contract:
//! they take minutes and exist to spot-check large-n behavior on demand, so they
//! are written to an untracked `full/` subdirectory and skipped by `--check`.
//!
//! Environment facts (wall-clock, worker count) never enter a report body; each
//! sweep instead writes them to an untracked `<dir>/<name>.meta.json` sidecar.
//! Traces are likewise derived output under the untracked `<dir>/traces/`.

use overlay_scenarios::{
    compare, full_registry, post_mortem, registry, report, scaling, trace, ParallelismConfig,
    Scenario, Sweep, SweepReport,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    seeds: usize,
    first_seed: u64,
    dir: PathBuf,
    check: bool,
    full: bool,
    compare: bool,
    no_run: bool,
    write_thresholds: bool,
    trace: Option<String>,
    seed: u64,
    explain: bool,
    list: bool,
    tag: Option<String>,
    par_threshold: Option<usize>,
    scaling: bool,
    max_n: usize,
    net_smoke: bool,
    traffic_smoke: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: 16,
        first_seed: 0,
        dir: PathBuf::from("reports"),
        check: false,
        full: false,
        compare: false,
        no_run: false,
        write_thresholds: false,
        trace: None,
        seed: 0,
        explain: false,
        list: false,
        tag: None,
        par_threshold: None,
        scaling: false,
        max_n: 65536,
        net_smoke: false,
        traffic_smoke: false,
        names: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--first-seed" => {
                opts.first_seed = value("--first-seed")?
                    .parse()
                    .map_err(|e| format!("--first-seed: {e}"))?
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--check" => opts.check = true,
            "--full" => opts.full = true,
            "--compare" => opts.compare = true,
            "--no-run" => opts.no_run = true,
            "--write-thresholds" => opts.write_thresholds = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--explain" => opts.explain = true,
            "--list" => opts.list = true,
            "--tag" => opts.tag = Some(value("--tag")?),
            "--par-threshold" => {
                opts.par_threshold = Some(
                    value("--par-threshold")?
                        .parse()
                        .map_err(|e| format!("--par-threshold: {e}"))?,
                )
            }
            "--scaling" => opts.scaling = true,
            "--net-smoke" => opts.net_smoke = true,
            "--traffic-smoke" => opts.traffic_smoke = true,
            "--max-n" => {
                opts.max_n = value("--max-n")?
                    .parse()
                    .map_err(|e| format!("--max-n: {e}"))?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: sweep_runner [--seeds N] [--first-seed S] [--dir PATH] \
                            [--check] [--full] [--compare [--no-run] [--write-thresholds]] \
                            [--trace NAME [--seed S]] [--explain] [--list] [--tag T] \
                            [--par-threshold N] [--scaling [--max-n N]] [--net-smoke] \
                            [--traffic-smoke] [SCENARIO...]"
                        .into(),
                )
            }
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if opts.no_run && !opts.compare {
        return Err("--no-run only makes sense with --compare".into());
    }
    if opts.write_thresholds && !opts.compare {
        return Err("--write-thresholds only makes sense with --compare".into());
    }
    Ok(opts)
}

fn selected(opts: &Options) -> Result<Vec<Scenario>, String> {
    let mut scenarios: Vec<Scenario> = if opts.names.is_empty() {
        registry().iter().cloned().collect()
    } else {
        opts.names
            .iter()
            .map(|name| {
                registry()
                    .find(name)
                    .or_else(|| full_registry().find(name))
                    .cloned()
                    .ok_or_else(|| format!("unknown scenario {name:?}; known: {}", known_names()))
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    if opts.full {
        for s in full_registry() {
            if !scenarios.iter().any(|existing| existing.name == s.name) {
                scenarios.push(s.clone());
            }
        }
    }
    // `--tag` narrows the *default* selection; scenarios the user named
    // explicitly always run (naming a cell is already the narrowest filter).
    if let (Some(tag), true) = (&opts.tag, opts.names.is_empty()) {
        scenarios.retain(|s| s.effective_tags().iter().any(|t| t == tag));
        if scenarios.is_empty() {
            return Err(format!("no registered scenario carries tag {tag:?}"));
        }
    }
    Ok(scenarios)
}

fn known_names() -> String {
    registry()
        .names()
        .chain(full_registry().names())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Prints one line per scenario so users can discover matrix cells without
/// reading source: name, family/n, fault label, effective tags, and the
/// baseline the cell was derived from (`-` for hand-authored baselines).
fn print_listing(opts: &Options) {
    let mut scenarios: Vec<&Scenario> = registry().iter().collect();
    if opts.full {
        scenarios.extend(full_registry().iter());
    }
    if let Some(tag) = &opts.tag {
        scenarios.retain(|s| s.effective_tags().iter().any(|t| t == tag));
    }
    println!(
        "{:<30} {:<24} {:<16} {:<44} baseline",
        "name", "family/n", "faults", "tags"
    );
    for s in scenarios {
        println!(
            "{:<30} {:<24} {:<16} {:<44} {}",
            s.name,
            format!("{}/{}", s.family.label(), s.actual_n()),
            s.faults.label(),
            s.effective_tags().join(","),
            s.baseline.as_deref().unwrap_or("-"),
        );
    }
}

/// `--trace NAME`: one traced run of `NAME` under `--seed`, its JSONL event
/// stream written to `<dir>/traces/`, its post-mortem printed. The traced run is
/// behaviorally identical to the untraced one (the sink never draws RNG), so the
/// trace explains exactly the run a sweep would have executed.
fn trace_one(name: &str, opts: &Options) -> ExitCode {
    let mut scenario = match registry().find(name).or_else(|| full_registry().find(name)) {
        Some(s) => s.clone(),
        None => {
            eprintln!("unknown scenario {name:?}; known: {}", known_names());
            return ExitCode::FAILURE;
        }
    };
    if let Some(threshold) = opts.par_threshold {
        scenario = scenario.with_parallelism(ParallelismConfig {
            workers: None,
            min_nodes: threshold,
        });
    }
    let run = scenario.run_traced(opts.seed);
    let dir = opts.dir.join("traces");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let path = dir.join(format!("{}-seed{}.jsonl", scenario.name, opts.seed));
    if let Err(e) = std::fs::write(&path, trace::to_jsonl(&run.events)) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    println!("{} events written to {}", run.events.len(), path.display());
    print!("{}", post_mortem(&scenario, &run).render());
    ExitCode::SUCCESS
}

/// The per-pair regression gate shared by both `--compare` paths. With
/// `--write-thresholds`, (re)writes `<dir>/thresholds.json` from the deltas
/// just computed; otherwise, when that file exists, checks every committed
/// floor and returns `false` (exit 1) on any violation. No file, no gate —
/// the table alone stays informational.
fn threshold_gate(deltas: &[compare::PairDelta], opts: &Options) -> bool {
    if opts.write_thresholds {
        return match compare::write_thresholds(deltas, &opts.dir) {
            Ok(path) => {
                eprintln!(
                    "{} pair floor(s) written to {}",
                    deltas.len(),
                    path.display()
                );
                true
            }
            Err(e) => {
                eprintln!("cannot write thresholds: {e}");
                false
            }
        };
    }
    let path = opts.dir.join("thresholds.json");
    if !path.exists() {
        return true;
    }
    let thresholds = match compare::load_thresholds(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return false;
        }
    };
    let violations = compare::check_thresholds(deltas, &thresholds);
    if violations.is_empty() {
        eprintln!(
            "{} pair floor(s) hold ({})",
            thresholds.len(),
            path.display()
        );
        return true;
    }
    eprintln!("{} pair floor violation(s):", violations.len());
    for v in &violations {
        eprintln!("  {v}");
    }
    false
}

/// `--compare --no-run`: rebuild the delta table from the committed reports
/// under `<dir>` without sweeping anything. Pairs missing either committed
/// report are skipped (e.g. a twin added but not yet baselined); a present but
/// malformed report is an error.
fn compare_committed(opts: &Options) -> ExitCode {
    let mut deltas = Vec::new();
    for (base, twin) in registry().pairs() {
        let load = |s: &Scenario| report::load_report(opts.dir.join(format!("{}.json", s.name)));
        let (base_doc, twin_doc) = match (load(base), load(twin)) {
            (Ok(b), Ok(t)) => (b, t),
            _ => continue,
        };
        let axis = twin.axis.map(|a| a.label().to_string()).unwrap_or_default();
        match compare::PairDelta::from_committed(&base_doc, &twin_doc, &axis) {
            Ok(d) => deltas.push(d),
            Err(e) => {
                eprintln!("--compare --no-run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if deltas.is_empty() {
        eprintln!(
            "--compare --no-run: no (baseline, twin) pair has both reports under {}",
            opts.dir.display()
        );
        return ExitCode::FAILURE;
    }
    print!("{}", compare::render_table(&deltas));
    match compare::write_compare_table(&deltas, opts.seeds, &opts.dir) {
        Ok(path) => eprintln!("delta table persisted to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write delta table: {e}");
            return ExitCode::FAILURE;
        }
    }
    if !threshold_gate(&deltas, opts) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--scaling`: the scaling harness. Every size-axis cell of the full registry
/// up to `--max-n` runs once under `--seed`, serially and with within-round
/// parallelism engaged (from `--par-threshold` nodes up, default 0 so the
/// parallel path always runs). The per-cell results and wall-clocks, plus the
/// machine's facts, are rendered to `<dir>/scaling.md` — committed next to the
/// sweep baselines so scaling claims are pinned to a recorded measurement.
fn run_scaling(opts: &Options) -> ExitCode {
    let machine = scaling::MachineInfo::capture();
    let cells = scaling::scaling_cells(opts.max_n);
    if cells.is_empty() {
        eprintln!("--scaling: no size-axis cell has n <= {}", opts.max_n);
        return ExitCode::FAILURE;
    }
    let min_nodes = opts.par_threshold.unwrap_or(0);
    let mut measured = Vec::with_capacity(cells.len());
    for scenario in &cells {
        let cell = scaling::run_cell(scenario, opts.seed, min_nodes);
        // The speedup figure is only printed when a spare core gives the
        // serial/parallel ratio its meaning; single-core machines get the
        // caveat instead of a number that would misread as a parallelism claim.
        let speedup = if machine.has_spare_cores() {
            cell.speedup()
                .map_or(String::new(), |s| format!(" speedup={s:.2}x"))
        } else {
            " (single core: overhead, not speedup)".to_string()
        };
        println!(
            "{:<36} n={:<6} rounds={:<4} success={} serial={:.2?} parallel={:.2?}{speedup}",
            cell.name, cell.n, cell.rounds, cell.success, cell.serial_wall, cell.parallel_wall,
        );
        measured.push(cell);
    }
    let text = scaling::render_markdown(&machine, &measured);
    let path = opts.dir.join("scaling.md");
    if let Err(e) = std::fs::create_dir_all(&opts.dir) {
        eprintln!("cannot create {}: {e}", opts.dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&path, text) {
        eprintln!("cannot write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("scaling report written to {}", path.display());
    ExitCode::SUCCESS
}

/// `--net-smoke`: the in-gate half of `overlay-net`'s "simulator as model"
/// contract. A few (n, seed) builds run through the real channel backend —
/// node threads, mpsc frames, the wire codec, the α-synchronizer — and every
/// final overlay must be identical to the simulator's. The TCP half (multiple
/// OS processes over loopback sockets) runs as a separate CI step via
/// `examples/p2p_bootstrap.rs --backend tcp --spawn`.
fn run_net_smoke() -> ExitCode {
    use overlay_core::{ExpanderParams, OverlayBuilder, SimExecutor};
    use overlay_graph::generators;
    use overlay_net::{ChannelBackend, NetRunner};

    let cases = [(64usize, 3u64), (96, 8), (128, 21)];
    for (n, seed) in cases {
        let g = match seed % 2 {
            0 => generators::cycle(n),
            _ => generators::binary_tree(n),
        };
        let builder = OverlayBuilder::new(ExpanderParams::for_n(n).with_seed(seed));
        let sim_started = std::time::Instant::now();
        let sim = match builder.build_over(&g, &mut SimExecutor::default()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--net-smoke: simulator build failed for n={n} seed={seed}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let sim_wall = sim_started.elapsed();
        let net_started = std::time::Instant::now();
        let mut runner = NetRunner::new(ChannelBackend::new(n));
        let net = match builder.build_over(&g, &mut runner) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("--net-smoke: channel build failed for n={n} seed={seed}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let net_wall = net_started.elapsed();
        let same_expander = sim.expander.edge_count() == net.expander.edge_count()
            && sim
                .expander
                .nodes()
                .all(|v| sim.expander.neighbors(v) == net.expander.neighbors(v));
        let same_tree = (0..n).all(|v| {
            sim.tree.parent(overlay_graph::NodeId::from(v))
                == net.tree.parent(overlay_graph::NodeId::from(v))
        });
        let same = same_expander
            && same_tree
            && sim.bfs_parents == net.bfs_parents
            && sim.rounds.total() == net.rounds.total()
            && sim.messages.total_delivered == net.messages.total_delivered;
        println!(
            "net-smoke n={n:<4} seed={seed:<3} rounds={:<4} delivered={:<7} sim={sim_wall:.2?} channel={net_wall:.2?} identical={same}",
            sim.rounds.total(),
            sim.messages.total_delivered,
        );
        if !same {
            eprintln!(
                "--net-smoke: channel backend diverged from the simulator (n={n} seed={seed})"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `--traffic-smoke`: the workload half of `overlay-net`'s "simulator as
/// model" contract. The clean and hotspot traffic cells build their overlay
/// under the simulator, then run the same pre-scheduled router workload over
/// both the lockstep simulator and the real channel backend (a thread per
/// router node, frames over mpsc). The per-node summaries carry the exact
/// delivery ledgers — ids, hops, injection and arrival rounds — so asserting
/// them identical pins the delivery *sets*, not just the counts.
fn run_traffic_smoke() -> ExitCode {
    use overlay_core::SimExecutor;
    use overlay_net::{ChannelBackend, NetRunner};

    for (name, seed) in [("traffic-uniform", 3u64), ("traffic-hotspot", 11)] {
        let scenario = registry()
            .find(name)
            .expect("traffic smoke cell registered")
            .clone();
        let sim_started = std::time::Instant::now();
        let sim = match scenario.traffic_summaries(seed, &mut SimExecutor::default()) {
            Some(Ok(phase)) => phase,
            Some(Err(e)) => {
                eprintln!("--traffic-smoke: simulator traffic failed for {name} seed={seed}: {e}");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("--traffic-smoke: construction failed for {name} seed={seed}");
                return ExitCode::FAILURE;
            }
        };
        let sim_wall = sim_started.elapsed();
        let net_started = std::time::Instant::now();
        let mut runner = NetRunner::new(ChannelBackend::new(scenario.actual_n()));
        let net = match scenario.traffic_summaries(seed, &mut runner) {
            Some(Ok(phase)) => phase,
            Some(Err(e)) => {
                eprintln!("--traffic-smoke: channel traffic failed for {name} seed={seed}: {e}");
                return ExitCode::FAILURE;
            }
            None => {
                eprintln!("--traffic-smoke: construction failed for {name} seed={seed}");
                return ExitCode::FAILURE;
            }
        };
        let net_wall = net_started.elapsed();
        let delivered: usize = sim.summaries.iter().map(|s| s.deliveries.len()).sum();
        let injected: u32 = sim.summaries.iter().map(|s| s.injected).sum();
        let same = sim.summaries == net.summaries
            && sim.alive == net.alive
            && sim.rounds == net.rounds
            && sim.all_done == net.all_done;
        println!(
            "traffic-smoke {name:<16} seed={seed:<3} rounds={:<4} injected={injected:<5} delivered={delivered:<5} sim={sim_wall:.2?} channel={net_wall:.2?} identical={same}",
            sim.rounds,
        );
        if !same {
            eprintln!(
                "--traffic-smoke: channel backend diverged from the simulator ({name} seed={seed})"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if opts.list {
        print_listing(&opts);
        return ExitCode::SUCCESS;
    }
    if let Some(name) = &opts.trace {
        return trace_one(name, &opts);
    }
    if opts.scaling {
        return run_scaling(&opts);
    }
    if opts.net_smoke {
        return run_net_smoke();
    }
    if opts.traffic_smoke {
        return run_traffic_smoke();
    }
    if opts.no_run {
        return compare_committed(&opts);
    }
    let scenarios = match selected(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    let mut results: Vec<SweepReport> = Vec::with_capacity(scenarios.len());
    for mut scenario in scenarios {
        // Large-n scenarios selected by name go where `--full` puts them: the
        // untracked `full/` subdirectory, outside the `--check` contract.
        let is_full = scenario.name.starts_with("full-");
        let dir = if is_full {
            opts.dir.join("full")
        } else {
            opts.dir.clone()
        };
        if let Some(threshold) = opts.par_threshold {
            // Parallelism is bitwise-invisible in results, so overriding it
            // never perturbs a `--check` comparison — it only decides which
            // code path produces the (identical) bytes.
            scenario = scenario.with_parallelism(ParallelismConfig {
                workers: None,
                min_nodes: threshold,
            });
        }
        let sweep = Sweep::over_seeds(scenario, opts.first_seed, opts.seeds);
        // Full runs double as the parallelism measurement: the sequential
        // baseline is timed too, the records are asserted identical, and the
        // measured speedup lands in the meta sidecar and the summary line.
        let result = if is_full {
            sweep.run_compared()
        } else {
            sweep.run()
        };
        println!("{}", result.summary());
        if opts.explain {
            // Failed seeds are cheap to replay one at a time: re-run each under a
            // trace sink (bitwise-identical behavior) and print its post-mortem.
            for record in result.records.iter().filter(|r| !r.success) {
                let run = result.scenario.run_traced(record.seed);
                print!("{}", post_mortem(&result.scenario, &run).render());
            }
        }

        let path = dir.join(format!("{}.json", result.scenario.name));
        let mut regressed = false;
        if opts.check && !is_full {
            if !path.exists() {
                // A missing baseline must fail the check: treating it as success
                // would make the regression gate silently inert (e.g. a baseline
                // directory that was never committed, or a renamed scenario).
                regressed = true;
                eprintln!(
                    "  no baseline at {}; run without --check to create it",
                    path.display()
                );
            } else {
                match report::load_report(&path) {
                    Ok(previous) => {
                        let diffs = report::diff_reports(&previous, &result.to_json());
                        if !diffs.is_empty() {
                            regressed = true;
                            eprintln!(
                                "  {} changed vs {} ({} difference(s)):",
                                result.scenario.name,
                                path.display(),
                                diffs.len()
                            );
                            for line in diffs.iter().take(20) {
                                eprintln!("    {line}");
                            }
                            if diffs.len() > 20 {
                                eprintln!("    ... and {} more", diffs.len() - 20);
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("  cannot read previous report: {e}");
                        regressed = true;
                    }
                }
            }
        }
        if regressed {
            // Keep the baseline (or its absence) intact so the failure stays
            // reproducible; the intended-change workflow (rerun without --check,
            // commit) still works.
            regressions += 1;
        } else if let Err(e) = report::write_report(&result, &dir) {
            eprintln!("  cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        } else if let Err(e) = report::write_meta(&result, &dir) {
            eprintln!("  cannot write meta sidecar: {e}");
            return ExitCode::FAILURE;
        }
        results.push(result);
    }

    if opts.compare {
        let by_name = |name: &str| results.iter().find(|r| r.scenario.name == name);
        let deltas: Vec<compare::PairDelta> = registry()
            .pairs()
            .filter_map(|(base, twin)| {
                Some(compare::PairDelta::from_reports(
                    by_name(&base.name)?,
                    by_name(&twin.name)?,
                ))
            })
            .collect();
        if deltas.is_empty() {
            eprintln!("--compare: no (baseline, twin) pair was fully swept in this run");
        } else {
            print!("{}", compare::render_table(&deltas));
            match compare::write_compare_table(&deltas, opts.seeds, &opts.dir) {
                Ok(path) => eprintln!("delta table persisted to {}", path.display()),
                Err(e) => {
                    eprintln!("cannot write delta table: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if !threshold_gate(&deltas, &opts) {
                return ExitCode::FAILURE;
            }
        }
    }

    if regressions > 0 {
        eprintln!("{regressions} scenario(s) changed behavior");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
