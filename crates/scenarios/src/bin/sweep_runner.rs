//! Runs fault-scenario sweeps and persists their JSON reports under `reports/`.
//!
//! ```text
//! cargo run --release -p overlay-scenarios --bin sweep_runner [OPTIONS] [SCENARIO...]
//!
//!   --seeds N       seeds per scenario (default 16)
//!   --first-seed S  first seed of the range (default 0)
//!   --dir PATH      output directory (default reports)
//!   --check         diff each new report against the existing file before
//!                   overwriting; exit 1 if any deterministic value changed
//!   --full          additionally run the on-demand larger-n sweeps
//!                   (n = 1024 / 4096); their reports go to `<dir>/full/` and
//!                   are never part of the committed `--check` baselines
//!   SCENARIO...     registry names to run (default: the whole registry)
//! ```
//!
//! Reports are deterministic per `(scenario, seed set)`, so committing `reports/`
//! and running with `--check` turns any behavior change into a named, per-seed,
//! per-counter diff. The `--full` sweeps are deliberately outside that contract:
//! they take minutes and exist to spot-check large-n behavior on demand, so they
//! are written to an untracked `full/` subdirectory and skipped by `--check`.

use overlay_scenarios::{full_registry, registry, report, Scenario, Sweep};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    seeds: usize,
    first_seed: u64,
    dir: PathBuf,
    check: bool,
    full: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seeds: 16,
        first_seed: 0,
        dir: PathBuf::from("reports"),
        check: false,
        full: false,
        names: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--first-seed" => {
                opts.first_seed = value("--first-seed")?
                    .parse()
                    .map_err(|e| format!("--first-seed: {e}"))?
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--check" => opts.check = true,
            "--full" => opts.full = true,
            "--help" | "-h" => {
                return Err(
                    "usage: sweep_runner [--seeds N] [--first-seed S] [--dir PATH] \
                            [--check] [--full] [SCENARIO...]"
                        .into(),
                )
            }
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn selected(opts: &Options) -> Result<Vec<Scenario>, String> {
    let mut scenarios = if opts.names.is_empty() {
        registry()
    } else {
        opts.names
            .iter()
            .map(|name| {
                overlay_scenarios::find(name)
                    .or_else(|| full_registry().into_iter().find(|s| s.name == *name))
                    .ok_or_else(|| format!("unknown scenario {name:?}; known: {}", known_names()))
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    if opts.full {
        for s in full_registry() {
            if !scenarios.iter().any(|existing| existing.name == s.name) {
                scenarios.push(s);
            }
        }
    }
    Ok(scenarios)
}

fn known_names() -> String {
    registry()
        .iter()
        .chain(full_registry().iter())
        .map(|s| s.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let scenarios = match selected(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut regressions = 0usize;
    for scenario in scenarios {
        // Large-n scenarios selected by name go where `--full` puts them: the
        // untracked `full/` subdirectory, outside the `--check` contract.
        let is_full = scenario.name.starts_with("full-");
        let dir = if is_full {
            opts.dir.join("full")
        } else {
            opts.dir.clone()
        };
        let sweep = Sweep::over_seeds(scenario, opts.first_seed, opts.seeds);
        let result = sweep.run();
        println!("{}", result.summary());

        let path = dir.join(format!("{}.json", result.scenario.name));
        let mut regressed = false;
        if opts.check && !is_full {
            if !path.exists() {
                // A missing baseline must fail the check: treating it as success
                // would make the regression gate silently inert (e.g. a baseline
                // directory that was never committed, or a renamed scenario).
                regressed = true;
                eprintln!(
                    "  no baseline at {}; run without --check to create it",
                    path.display()
                );
            } else {
                match report::load_report(&path) {
                    Ok(previous) => {
                        let diffs = report::diff_reports(&previous, &result.to_json());
                        if !diffs.is_empty() {
                            regressed = true;
                            eprintln!(
                                "  {} changed vs {} ({} difference(s)):",
                                result.scenario.name,
                                path.display(),
                                diffs.len()
                            );
                            for line in diffs.iter().take(20) {
                                eprintln!("    {line}");
                            }
                            if diffs.len() > 20 {
                                eprintln!("    ... and {} more", diffs.len() - 20);
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("  cannot read previous report: {e}");
                        regressed = true;
                    }
                }
            }
        }
        if regressed {
            // Keep the baseline (or its absence) intact so the failure stays
            // reproducible; the intended-change workflow (rerun without --check,
            // commit) still works.
            regressions += 1;
        } else if let Err(e) = report::write_report(&result, &dir) {
            eprintln!("  cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if regressions > 0 {
        eprintln!("{regressions} scenario(s) changed behavior");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
