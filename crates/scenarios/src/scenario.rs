//! The declarative scenario type and its lowering into concrete runs.

use overlay_core::{
    BuildReport, ExecutedPhase, ExpanderNode, ExpanderParams, MaintenanceConfig, MaintenanceRunner,
    OverlayBuilder, OverlayResult, Phase, PhaseExecSpec, PhaseExecutor, PhaseId, PhaseOverrides,
    RoundBudget, SimExecutor, TransportChoice,
};
use overlay_graph::{generators, DiGraph, NodeId, UGraph};
use overlay_netsim::{
    ChurnSchedule, CrashBurst, FaultPlan, MetricsMode, ParallelismConfig, SharedTraceSink,
    TraceBuffer, TraceEvent, TransportConfig,
};
use overlay_traffic::{
    next_hops, Router, RouterConfig, RouterSummary, RoutingPolicy, TrafficReport, TrafficTally,
    Workload,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The initial knowledge graph a scenario starts from. All families have constant
/// degree, as Theorem 1.1 requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFamily {
    /// A path — the paper's worst case (diameter `n - 1`).
    Line,
    /// A cycle.
    Cycle,
    /// A complete binary tree.
    BinaryTree,
    /// A random d-regular graph (already an expander w.h.p.; the easy case).
    RandomRegular {
        /// The degree (constant, small).
        degree: usize,
    },
    /// Two cycles of `n/2` nodes joined by one bridge edge — conductance `Θ(1/n)`
    /// with a single cut edge, the nastiest constant-degree input for partitions.
    TwoCyclesBridged,
}

impl GraphFamily {
    /// Builds the graph on `n` nodes; `seed` only matters for random families.
    pub fn build(&self, n: usize, seed: u64) -> DiGraph {
        match self {
            GraphFamily::Line => generators::line(n),
            GraphFamily::Cycle => generators::cycle(n),
            GraphFamily::BinaryTree => generators::binary_tree(n),
            GraphFamily::RandomRegular { degree } => generators::random_regular(n, *degree, seed),
            GraphFamily::TwoCyclesBridged => {
                let half = (n / 2).max(1);
                let mut g = DiGraph::new(2 * half);
                for i in 0..half {
                    g.add_edge(NodeId::from(i), NodeId::from((i + 1) % half));
                    g.add_edge(NodeId::from(half + i), NodeId::from(half + (i + 1) % half));
                }
                g.add_edge(NodeId::from(0usize), NodeId::from(half));
                g
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            GraphFamily::Line => "line".into(),
            GraphFamily::Cycle => "cycle".into(),
            GraphFamily::BinaryTree => "binary-tree".into(),
            GraphFamily::RandomRegular { degree } => format!("random-{degree}-regular"),
            GraphFamily::TwoCyclesBridged => "two-cycles-bridged".into(),
        }
    }

    /// The node count actually used for `n` (TwoCyclesBridged rounds down to even).
    pub fn actual_n(&self, n: usize) -> usize {
        match self {
            GraphFamily::TwoCyclesBridged => 2 * (n / 2).max(1),
            _ => n,
        }
    }
}

/// How much per-round NCC0 capacity nodes get, relative to the paper-shaped default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacityProfile {
    /// The default `2Δ` cap from [`ExpanderParams::for_n`].
    Standard,
    /// Three quarters of the default — adversarial capacity pressure; the receive
    /// cap starts dropping messages and the run must cope.
    Tight,
    /// Twice the default — headroom to isolate fault effects from capacity effects.
    Generous,
}

impl CapacityProfile {
    fn apply(&self, params: &mut ExpanderParams) {
        match self {
            CapacityProfile::Standard => {}
            CapacityProfile::Tight => params.ncc0_cap = (params.ncc0_cap * 3 / 4).max(1),
            CapacityProfile::Generous => params.ncc0_cap *= 2,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CapacityProfile::Standard => "standard",
            CapacityProfile::Tight => "tight",
            CapacityProfile::Generous => "generous",
        }
    }
}

/// The declarative fault load of a scenario, lowered per run (given `n`, the round
/// schedule and the seed) into a concrete [`FaultPlan`].
///
/// Fractions are of the node count; round positions are fractions of the
/// construction schedule so scenarios stay meaningful across sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// No faults — the paper's setting.
    Clean,
    /// Independent per-message loss.
    Lossy {
        /// Per-message drop probability.
        drop_prob: f64,
    },
    /// Random delivery delays.
    Jitter {
        /// Probability that a message is delayed.
        delay_prob: f64,
        /// Maximum extra rounds a delayed message is held.
        max_delay: usize,
    },
    /// A wave of crash-stop failures partway through construction.
    CrashWave {
        /// Fraction of nodes that crash.
        fraction: f64,
        /// When the wave hits, as a fraction of the construction schedule.
        at: f64,
    },
    /// Nodes joining late with bounded initial knowledge (their constant-degree
    /// graph edges), staggered over the start of construction.
    JoinChurn {
        /// Fraction of nodes that join late.
        fraction: f64,
        /// The join rounds spread over this fraction of the construction schedule.
        spread: f64,
    },
    /// A partition that splits the first half of the ids from the second, then heals.
    PartitionHeal {
        /// Window start, as a fraction of the construction schedule.
        from: f64,
        /// Window end (heal), as a fraction of the construction schedule.
        heal: f64,
    },
    /// A compound stressor: a crash wave hits, and from the same round on the
    /// surviving network also drops messages — the overlay must absorb the
    /// membership loss *while* the network degrades underneath it.
    CrashThenLoss {
        /// Fraction of nodes that crash.
        fraction: f64,
        /// When the wave hits (and loss starts), as a fraction of the schedule.
        at: f64,
        /// Per-message drop probability from the crash round on.
        drop_prob: f64,
    },
}

impl FaultSpec {
    /// Lowers the spec into a concrete plan for `n` nodes under `params`'s round
    /// schedule, with all random choices drawn from `seed`.
    pub fn lower(&self, n: usize, params: &ExpanderParams, seed: u64) -> FaultPlan {
        let schedule = construction_rounds(params);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CE2_A210_F00D_CAFE);
        match *self {
            FaultSpec::Clean => FaultPlan::default(),
            FaultSpec::Lossy { drop_prob } => FaultPlan::default().with_drop_prob(drop_prob),
            FaultSpec::Jitter {
                delay_prob,
                max_delay,
            } => FaultPlan::default().with_delays(delay_prob, max_delay),
            FaultSpec::CrashWave { fraction, at } => {
                let round = fraction_round(schedule, at);
                let mut plan = FaultPlan::default();
                for v in seeded_subset(n, fraction, &mut rng) {
                    plan = plan.with_crash(NodeId::from(v), round);
                }
                plan
            }
            FaultSpec::JoinChurn { fraction, spread } => {
                let last = fraction_round(schedule, spread).max(2);
                let mut plan = FaultPlan::default();
                for v in seeded_subset(n, fraction, &mut rng) {
                    let round = rng.gen_range(1..last);
                    plan = plan.with_join(NodeId::from(v), round);
                }
                plan
            }
            FaultSpec::PartitionHeal { from, heal } => {
                let from_round = fraction_round(schedule, from);
                let heal_round = fraction_round(schedule, heal).max(from_round + 1);
                let side_a: Vec<NodeId> = (0..n / 2).map(NodeId::from).collect();
                FaultPlan::default().with_partition(side_a, from_round, heal_round)
            }
            FaultSpec::CrashThenLoss {
                fraction,
                at,
                drop_prob,
            } => {
                let round = fraction_round(schedule, at);
                let mut plan = FaultPlan::default().with_drop_prob_from(drop_prob, round);
                for v in seeded_subset(n, fraction, &mut rng) {
                    plan = plan.with_crash(NodeId::from(v), round);
                }
                plan
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::Clean => "clean",
            FaultSpec::Lossy { .. } => "lossy",
            FaultSpec::Jitter { .. } => "jitter",
            FaultSpec::CrashWave { .. } => "crash-wave",
            FaultSpec::JoinChurn { .. } => "join-churn",
            FaultSpec::PartitionHeal { .. } => "partition-heal",
            FaultSpec::CrashThenLoss { .. } => "crash-then-loss",
        }
    }
}

/// The continuous-maintenance phase of a `serve-*` scenario: after construction
/// finishes, the overlay is kept alive for `epochs * epoch_rounds` further
/// rounds under a continuous churn process (see
/// [`overlay_core::MaintenanceRunner`]). The service-level outcome — sustained
/// coverage, well-formedness violations, rounds-to-repair — lands in the run's
/// [`ServeRecord`], and the headline [`RunRecord::coverage`] of a serving
/// scenario *is* its sustained coverage, so the existing aggregate and compare
/// machinery reads serve cells without special cases.
///
/// Churn rates are absolute expected events per round (the schedule's rate
/// accumulator makes counts seed-independent); victim and contact choices are
/// drawn from per-run seeded RNGs, so a serve run stays a pure function of
/// `(scenario, seed)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeSpec {
    /// Number of maintenance epochs to serve.
    pub epochs: usize,
    /// Rounds per epoch (churn accumulates between boundaries).
    pub epoch_rounds: usize,
    /// Whether epoch boundaries re-invite stragglers into the overlay. The
    /// `false` setting is the baseline that documents the failure mode the
    /// join-churn reports exposed: without protocol-level re-invitation,
    /// arrivals pile up outside the overlay forever.
    pub reinvite: bool,
    /// Expected arrivals per round.
    pub join_rate: f64,
    /// Expected graceful departures per round.
    pub leave_rate: f64,
    /// Expected crash-stop failures per round.
    pub crash_rate: f64,
    /// Optional periodic correlated crash bursts.
    pub burst: Option<CrashBurst>,
}

impl ServeSpec {
    /// A serve phase with the given horizon and join pressure, no departures,
    /// no crashes, re-invitation off (the documenting baseline).
    pub fn joins(epochs: usize, epoch_rounds: usize, join_rate: f64) -> Self {
        ServeSpec {
            epochs,
            epoch_rounds,
            reinvite: false,
            join_rate,
            leave_rate: 0.0,
            crash_rate: 0.0,
            burst: None,
        }
    }

    /// Total service rounds after construction.
    pub fn horizon(&self) -> usize {
        self.epochs * self.epoch_rounds
    }
}

/// XOR salt separating the traffic workload's RNG stream from every other
/// per-run stream (graph build, fault lowering, maintenance, churn).
const TRAFFIC_WORKLOAD_SALT: u64 = 0x7AF1_C5EE_D5EE_D700;

/// The traffic phase of a `traffic-*` scenario: after construction succeeds
/// (and, on serving cells, after every maintenance epoch), a seeded request
/// [`Workload`] is routed over the finished overlay's edges by
/// [`overlay_traffic::Router`] nodes, and the latency/congestion outcome lands
/// in the run's [`TrafficRecord`].
///
/// The workload is fully pre-scheduled harness-side and the router draws no
/// mid-round randomness, so a traffic run stays a pure function of
/// `(scenario, seed)` — and bitwise identical across the simulator and the
/// `overlay-net` thread backends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficSpec {
    /// Who talks to whom, and when.
    pub workload: Workload,
    /// Which edge set requests ride over: the expander (greedy shortest-path)
    /// or the binarized tree (the compare policy).
    pub policy: RoutingPolicy,
    /// Requests each source schedules over the injection horizon.
    pub requests_per_node: u32,
    /// Injection horizon in rounds (requests land in `1..=horizon`).
    pub horizon: u32,
    /// Rounds a packet may age before the holding router expires it.
    pub ttl: u32,
    /// Per-node forward-queue capacity; overflow is shed as dropped.
    pub queue_cap: u32,
    /// Forwards per node per round — the router's own send discipline. The
    /// phase's NCC0 cap is provisioned *above* the worst-case receive load
    /// this budget implies, so congestion always manifests in the router's
    /// deterministic queue, never in the capacity model's seeded eviction.
    pub per_round_budget: u32,
    /// Per-message drop probability applied to the traffic phase only (the
    /// construction keeps the scenario's own fault load). A `-reliable`
    /// transport twin recovers these losses with retransmissions.
    pub loss: f64,
}

impl TrafficSpec {
    /// A traffic phase with the given workload and the default pressure knobs:
    /// greedy routing, 4 requests per node over a 16-round horizon, TTL 32,
    /// queue capacity 64, 4 forwards per round, no loss.
    pub fn new(workload: Workload) -> Self {
        TrafficSpec {
            workload,
            policy: RoutingPolicy::Greedy,
            requests_per_node: 4,
            horizon: 16,
            ttl: 32,
            queue_cap: 64,
            per_round_budget: 4,
            loss: 0.0,
        }
    }

    /// The router tunables this spec lowers to.
    fn router_config(&self) -> RouterConfig {
        RouterConfig {
            ttl: self.ttl,
            queue_cap: self.queue_cap,
            per_round_budget: self.per_round_budget,
        }
    }

    /// Round budget for one traffic wave: every packet dies (delivered or
    /// expired) by `horizon + ttl`, doubled plus slack for transport-layer
    /// retransmission chains under loss.
    fn round_budget(&self) -> usize {
        (self.horizon as usize + self.ttl as usize) * 2 + 16
    }
}

/// Rounds of the construction phase (the schedule faults are positioned against).
fn construction_rounds(params: &ExpanderParams) -> usize {
    ExpanderNode::total_rounds(params)
}

fn fraction_round(schedule: usize, fraction: f64) -> usize {
    ((schedule as f64 * fraction).round() as usize).min(schedule)
}

/// The deterministic name suffix of a phase-override twin: per overridden phase
/// (in pipeline order), the phase name plus what moved — the transport kind when
/// a transport override is present, `budget` when only the budget is pinned.
fn phase_suffix(overrides: &PhaseOverrides) -> String {
    let mut suffix = String::new();
    for id in PhaseId::ALL {
        let budget = overrides.budget(id).is_some();
        let transport = overrides.transport(id);
        if !budget && transport.is_none() {
            continue;
        }
        suffix.push('-');
        suffix.push_str(id.name());
        match transport {
            Some(TransportChoice::Reliable(_)) => suffix.push_str("-reliable"),
            Some(TransportChoice::Bare) => suffix.push_str("-bare"),
            None => suffix.push_str("-budget"),
        }
    }
    suffix
}

/// The seed one traffic wave's workload schedule is drawn from: the run seed
/// behind its own salt, stepped per wave so every maintenance epoch of a
/// serving traffic cell sees fresh (but reproducible) request pairs.
fn traffic_workload_seed(seed: u64, salt: u64) -> u64 {
    (seed ^ TRAFFIC_WORKLOAD_SALT).wrapping_add(salt)
}

/// The edge set a traffic policy routes over: the constructed expander for
/// greedy routing, the binarized tree for the compare policy.
fn routing_graph(policy: RoutingPolicy, result: &OverlayResult) -> UGraph {
    match policy {
        RoutingPolicy::Greedy => result.expander.clone(),
        RoutingPolicy::Tree => result.tree.to_ugraph(),
    }
}

/// Emits one traffic wave's structured events: the injections from the
/// (recomputed, deterministic) schedule, then each node's deliveries and a
/// per-node drop/expiry rollup. Emission happens after the wave executes, so
/// tracing cannot perturb the run.
fn emit_traffic_trace(
    sink: &SharedTraceSink,
    spec: &TrafficSpec,
    n: usize,
    workload_seed: u64,
    run: &ExecutedPhase<RouterSummary>,
) {
    let mut sink = sink.borrow_mut();
    sink.record(TraceEvent::PhaseStart {
        phase: PhaseId::Traffic.name(),
    });
    if n >= 2 {
        let schedule =
            spec.workload
                .schedule(n, spec.requests_per_node, spec.horizon, workload_seed);
        for (src, reqs) in schedule.iter().enumerate() {
            for r in reqs {
                sink.record(TraceEvent::RequestInjected {
                    round: r.round as usize,
                    src: NodeId::from(src),
                    dst: NodeId::from(r.dst as usize),
                });
            }
        }
    }
    for (node, s) in run.summaries.iter().enumerate() {
        for d in &s.deliveries {
            sink.record(TraceEvent::RequestDelivered {
                round: d.delivered as usize,
                dst: NodeId::from(node),
                hops: d.hops as usize,
                latency: (d.delivered - d.injected) as usize,
            });
        }
        if !s.dropped.is_empty() || !s.expired.is_empty() {
            sink.record(TraceEvent::RequestDropped {
                node: NodeId::from(node),
                dropped: s.dropped.len(),
                expired: s.expired.len(),
            });
        }
    }
    sink.record(TraceEvent::PhaseEnd {
        phase: PhaseId::Traffic.name(),
        rounds: run.rounds,
        completed: run.all_done,
    });
}

/// A seeded random subset of `⌊fraction · n⌋` nodes, excluding node 0 (keeping at
/// least one stable resident keeps the scenarios comparable across seeds).
fn seeded_subset(n: usize, fraction: f64, rng: &mut StdRng) -> Vec<usize> {
    let k = ((n as f64 * fraction) as usize).min(n.saturating_sub(1));
    let mut ids: Vec<usize> = (1..n).collect();
    ids.shuffle(rng);
    ids.truncate(k);
    ids.sort_unstable();
    ids
}

/// The axis along which a derived scenario differs from its baseline.
///
/// Every scenario produced by one of the variant constructors
/// ([`Scenario::reliable`], [`Scenario::at_n`], [`Scenario::with_capacity`],
/// [`Scenario::with_phases`]) records its axis next to its
/// [`baseline`](Scenario::baseline) name, so twin↔baseline pairing is scenario
/// *data* that a [`crate::Registry`] can validate — a twin must differ from its
/// baseline along its declared axis and nothing else.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VariantAxis {
    /// The twin adds the reliable-delivery transport layer (plus retry slack).
    Transport,
    /// The twin reruns the baseline at a different (on-demand, large) `n`.
    Size,
    /// The twin changes only the NCC0 capacity profile.
    Capacity,
    /// The twin scopes budget/transport overrides to individual phases.
    Phases,
    /// The twin switches epoch-boundary re-invitation on in the maintenance
    /// phase of a serving baseline (everything else, including the churn
    /// process, identical).
    Maintenance,
    /// The twin changes only the traffic spec of a traffic-carrying baseline
    /// (workload shape, routing policy, or pressure knobs — everything else,
    /// including the constructed overlay, identical).
    Traffic,
}

impl VariantAxis {
    /// A short kebab-case label, used as a derived tag (`axis:<label>`).
    pub fn label(&self) -> &'static str {
        match self {
            VariantAxis::Transport => "transport",
            VariantAxis::Size => "size",
            VariantAxis::Capacity => "capacity",
            VariantAxis::Phases => "phases",
            VariantAxis::Maintenance => "maintenance",
            VariantAxis::Traffic => "traffic",
        }
    }
}

/// One named experiment: everything needed to run the pipeline under a fault load.
///
/// Hand-authored baselines are built with [`Scenario::new`] plus the `with_*`
/// setters; derived matrix cells come from the variant axis constructors
/// ([`Scenario::reliable`], [`Scenario::at_n`], [`Scenario::with_capacity`],
/// [`Scenario::with_phases`]), which append a deterministic name suffix, rewrite
/// the description, and record the baseline they were derived from.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique kebab-case name (registry key).
    pub name: String,
    /// One-line description for reports.
    pub description: String,
    /// The initial knowledge graph family.
    pub family: GraphFamily,
    /// Node count (a family may round it; see [`GraphFamily::actual_n`]).
    pub n: usize,
    /// The NCC0 capacity profile.
    pub capacity: CapacityProfile,
    /// The fault load.
    pub faults: FaultSpec,
    /// When set, the scenario is a `serve-*` cell: after construction the
    /// overlay enters the continuous-maintenance loop for
    /// [`ServeSpec::horizon`] further rounds, and the run's headline coverage
    /// becomes the *sustained* service coverage. `None` is the classic
    /// build-once setting; committed pre-serve reports are untouched because
    /// every serve field is serialized conditionally.
    pub serve: Option<ServeSpec>,
    /// When set, the scenario is a `traffic-*` cell: after construction (and,
    /// when combined with [`serve`](Scenario::serve), after every maintenance
    /// epoch) the finished overlay carries the spec's request workload, and
    /// the run's [`RunRecord`] gains a [`TrafficRecord`]. `None` is the
    /// build-only setting; committed pre-traffic reports are untouched because
    /// every traffic field is serialized conditionally.
    pub traffic: Option<TrafficSpec>,
    /// The per-phase round-budget multiplier the pipeline runs under. Faulty
    /// scenarios whose fault model legitimately stretches wall-rounds (delivery
    /// jitter, late joins) declare extra allowance here instead of being judged
    /// against the clean schedule; [`RoundBudget::STANDARD`] is the paper's budget.
    pub round_budget: RoundBudget,
    /// When set, the pipeline's protocols run behind the reliable-delivery
    /// transport layer (acks, retransmission, duplicate suppression — see
    /// `overlay-transport`) with this configuration; `None` is the paper's
    /// bare-sends setting. Reliable twins of a fault scenario keep every other
    /// field identical so their reports read as a direct paper-vs-fault-tolerant
    /// comparison.
    pub transport: Option<TransportConfig>,
    /// Per-phase overrides of `round_budget` and `transport`
    /// ([`PhaseOverrides::none`] inherits the scenario-wide settings for every
    /// phase). This is how a scenario spends reliability or budget headroom on
    /// just the phase that needs it — e.g. reliable transport only for the
    /// one-round binarize phase. Recorded in the report header when non-empty.
    pub phases: PhaseOverrides,
    /// Explicit annotation tags. Serialized into the report JSON header when
    /// non-empty; pre-matrix scenarios carry none, which keeps their committed
    /// report headers byte-identical. Structural facets (family, fault, capacity,
    /// transport, axis) need no explicit tag — [`Scenario::effective_tags`]
    /// derives them for filtering and listing.
    pub tags: Vec<String>,
    /// The name of the scenario this one was derived from, when it came out of a
    /// variant axis constructor. Twin↔baseline pairing is data, not a test
    /// table: a [`crate::Registry`] resolves and validates it, and
    /// [`crate::Registry::pairs`] iterates the couples for delta reporting.
    pub baseline: Option<String>,
    /// Which axis the derivation moved along (set iff `baseline` is set).
    pub axis: Option<VariantAxis>,
    /// Within-round parallelism policy for every phase's simulator. **Never part
    /// of the experiment**: runs are bitwise identical at any worker count, so
    /// this is not an axis, carries no tag, and is not serialized into reports —
    /// it only decides how many threads step nodes (see [`ParallelismConfig`]).
    pub parallelism: ParallelismConfig,
    /// Metrics-retention mode for every phase's simulator. Large-`n` twins run
    /// with [`MetricsMode::Rollup`] so long horizons don't buffer a
    /// [`overlay_netsim::RoundMetrics`] per round; every figure a [`RunRecord`]
    /// reports is mode-independent, so this too is not an axis.
    pub metrics_mode: MetricsMode,
}

/// The outcome of one `(scenario, seed)` run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// The seed this run used.
    pub seed: u64,
    /// The round-budget multiplier (percent of the clean schedule) this run was
    /// granted; `100` is the clean budget.
    pub round_budget_percent: u32,
    /// Flat extra rounds granted to every phase on top of the percent scaling
    /// (declared by reliable-transport scenarios for retry round-trips).
    pub round_budget_slack: u32,
    /// Pipeline completed *and* the tree is valid over the nodes alive at the end.
    pub success: bool,
    /// Pipeline produced a tree at all (may be invalid over the survivors).
    pub completed: bool,
    /// Fraction of the initial nodes covered by the final alive tree.
    pub coverage: f64,
    /// Total rounds across all phases that ran.
    pub rounds: usize,
    /// Size of the surviving core the pipeline continued with.
    pub core_size: usize,
    /// Tree height (0 when no tree formed).
    pub tree_height: usize,
    /// Tree degree (0 when no tree formed).
    pub tree_degree: usize,
    /// Messages delivered across all phases.
    pub delivered: u64,
    /// Messages lost to injected faults (loss + partitions).
    pub dropped_fault: u64,
    /// Messages to crashed/dormant nodes.
    pub dropped_offline: u64,
    /// Messages dropped by the NCC0 receive cap.
    pub dropped_receive: u64,
    /// Messages that suffered injected delays.
    pub delayed: u64,
    /// Transport-layer retransmissions (zero for bare scenarios).
    pub retransmits: u64,
    /// Transport-layer acknowledgment messages (zero for bare scenarios).
    pub acks: u64,
    /// Duplicate payloads the transport layer suppressed (zero for bare
    /// scenarios).
    pub dupes_dropped: u64,
    /// Crash events executed.
    pub crashed: usize,
    /// Join events executed.
    pub joined: usize,
    /// Name of the first stalled phase, empty when none stalled.
    pub stalled_phase: &'static str,
    /// The maintenance-phase outcome of a serving scenario (`None` for classic
    /// build-once cells). Present on every seed of a serve cell — a run whose
    /// construction failed carries the zeroed record (nothing was served).
    pub serve: Option<ServeRecord>,
    /// The traffic-phase outcome of a traffic-carrying scenario (`None` for
    /// build-only cells). Present on every seed of a traffic cell — a run
    /// whose construction failed carries the zeroed record (nothing was
    /// routed).
    pub traffic: Option<TrafficRecord>,
}

/// The per-seed service-level outcome of a serve scenario's maintenance phase —
/// a flattening of [`overlay_core::ServeOutcome`] into the sweep row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeRecord {
    /// Whether the maintenance loop ran at all (construction must produce an
    /// overlay to serve; a failed build leaves everything below zeroed).
    pub served: bool,
    /// Steady-state coverage: mean over the final half of the epoch boundaries.
    pub sustained_coverage: f64,
    /// Mean coverage across all epoch boundaries.
    pub coverage_mean: f64,
    /// Minimum coverage observed at any boundary.
    pub coverage_floor: f64,
    /// Epoch boundaries whose tree failed well-formedness validation.
    pub wf_violations: usize,
    /// Re-invitations issued across the run.
    pub reinvites_sent: usize,
    /// Re-invitations that survived loss and admitted their straggler.
    pub reinvites_delivered: usize,
    /// Repair evolutions executed.
    pub repairs: usize,
    /// Members re-attached by repair across the run.
    pub healed: usize,
    /// Worst rounds-to-repair after a correlated crash burst (0 without bursts).
    pub rounds_to_repair_max: usize,
    /// Arrivals over the service horizon.
    pub joined: usize,
    /// Graceful departures over the service horizon.
    pub left: usize,
    /// Crash-stop failures over the service horizon.
    pub crashed: usize,
    /// Members alive when the horizon ended.
    pub final_alive: usize,
}

impl ServeRecord {
    /// The zeroed record of a serve cell whose construction failed: nothing was
    /// served, so service coverage is 0 — the honest reading of "the overlay
    /// was never available".
    fn unserved() -> Self {
        ServeRecord {
            served: false,
            sustained_coverage: 0.0,
            coverage_mean: 0.0,
            coverage_floor: 0.0,
            wf_violations: 0,
            reinvites_sent: 0,
            reinvites_delivered: 0,
            repairs: 0,
            healed: 0,
            rounds_to_repair_max: 0,
            joined: 0,
            left: 0,
            crashed: 0,
            final_alive: 0,
        }
    }

    fn from_outcome(outcome: &overlay_core::ServeOutcome) -> Self {
        ServeRecord {
            served: true,
            sustained_coverage: outcome.sustained_coverage,
            coverage_mean: outcome.coverage_mean,
            coverage_floor: outcome.coverage_floor,
            wf_violations: outcome.wf_violations,
            reinvites_sent: outcome.reinvites_sent,
            reinvites_delivered: outcome.reinvites_delivered,
            repairs: outcome.repairs,
            healed: outcome.healed,
            rounds_to_repair_max: outcome.rounds_to_repair_max,
            joined: outcome.joined,
            left: outcome.left,
            crashed: outcome.crashed,
            final_alive: outcome.final_alive,
        }
    }
}

/// The per-seed outcome of a traffic scenario's routing phase — a flattening
/// of [`overlay_traffic::TrafficReport`] into the sweep row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficRecord {
    /// Whether any traffic was routed at all (construction must produce an
    /// overlay to route over; a failed build leaves everything below zeroed).
    pub routed: bool,
    /// Requests injected across all sources (and, on serving cells, across
    /// all per-epoch waves).
    pub injected: u64,
    /// Requests that reached their destination.
    pub delivered: u64,
    /// Requests shed by queue overflow or lack of a route.
    pub dropped: u64,
    /// Requests aged out past their TTL while queued.
    pub expired: u64,
    /// Requests that vanished in flight (message loss under the spec's fault
    /// load).
    pub lost: u64,
    /// Median hop count over delivered requests.
    pub hops_p50: u32,
    /// 99th-percentile hop count — the figure the `O(log n)` diameter bounds.
    pub hops_p99: u32,
    /// Worst hop count observed.
    pub hops_max: u32,
    /// Median rounds-to-delivery.
    pub latency_p50: u32,
    /// 99th-percentile rounds-to-delivery.
    pub latency_p99: u32,
    /// Worst rounds-to-delivery observed.
    pub latency_max: u32,
    /// Most messages any single directed edge carried.
    pub max_edge_load: u32,
    /// Most messages any single node forwarded.
    pub max_node_forwards: u64,
    /// Message rounds the traffic phase(s) executed.
    pub rounds: usize,
}

impl TrafficRecord {
    /// The zeroed record of a traffic cell whose construction failed: nothing
    /// was routed, so nothing was delivered.
    pub fn unrouted() -> Self {
        TrafficRecord {
            routed: false,
            injected: 0,
            delivered: 0,
            dropped: 0,
            expired: 0,
            lost: 0,
            hops_p50: 0,
            hops_p99: 0,
            hops_max: 0,
            latency_p50: 0,
            latency_p99: 0,
            latency_max: 0,
            max_edge_load: 0,
            max_node_forwards: 0,
            rounds: 0,
        }
    }

    fn from_report(report: &TrafficReport) -> Self {
        TrafficRecord {
            routed: true,
            injected: report.injected,
            delivered: report.delivered,
            dropped: report.dropped,
            expired: report.expired,
            lost: report.lost,
            hops_p50: report.hops_p50,
            hops_p99: report.hops_p99,
            hops_max: report.hops_max,
            latency_p50: report.latency_p50,
            latency_p99: report.latency_p99,
            latency_max: report.latency_max,
            max_edge_load: report.max_edge_load,
            max_node_forwards: report.max_node_forwards,
            rounds: report.rounds,
        }
    }

    /// Delivered fraction in `[0, 1]` (1 when nothing was injected).
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }
}

/// Everything a traced run reveals, produced by [`Scenario::run_traced`]: the
/// sweep row, the full pipeline report (per-phase metrics included), and the
/// structured event stream — the inputs the forensics analyzer works from.
#[derive(Clone, Debug)]
pub struct ForensicRun {
    /// The same record [`Scenario::run`] would have produced for this seed.
    pub record: RunRecord,
    /// The full pipeline report, including [`BuildReport::phase_metrics`].
    pub report: BuildReport,
    /// The run's structured events, in emission order.
    pub events: Vec<TraceEvent>,
}

impl Scenario {
    /// A hand-authored baseline: clean faults, standard capacity, the paper's
    /// round budget, bare sends, no per-phase overrides, no tags, no baseline.
    pub fn new(
        name: impl Into<String>,
        description: impl Into<String>,
        family: GraphFamily,
        n: usize,
    ) -> Self {
        Scenario {
            name: name.into(),
            description: description.into(),
            family,
            n,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            serve: None,
            traffic: None,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
            tags: Vec::new(),
            baseline: None,
            axis: None,
            parallelism: ParallelismConfig::default(),
            metrics_mode: MetricsMode::Full,
        }
    }

    /// Sets the fault load (builder-style).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Declares the scenario a `serve-*` cell: after construction the overlay
    /// enters the continuous-maintenance loop described by `spec`
    /// (builder-style). The re-invitation *axis* is
    /// [`Scenario::with_reinvitation`].
    pub fn with_serve(mut self, spec: ServeSpec) -> Self {
        self.serve = Some(spec);
        self
    }

    /// Declares the scenario a `traffic-*` cell: after construction the
    /// finished overlay carries `spec`'s request workload (builder-style).
    /// The traffic *axis* is [`Scenario::with_traffic_axis`].
    pub fn with_traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic = Some(spec);
        self
    }

    /// Sets the within-round parallelism policy (builder-style). Purely a
    /// wall-clock knob — see [`Scenario::parallelism`].
    pub fn with_parallelism(mut self, parallelism: ParallelismConfig) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the metrics-retention mode (builder-style) — see
    /// [`Scenario::metrics_mode`].
    pub fn with_metrics_mode(mut self, mode: MetricsMode) -> Self {
        self.metrics_mode = mode;
        self
    }

    /// Sets the NCC0 capacity profile *without* deriving a variant — for
    /// hand-authored baselines like `tight-caps`. The capacity *axis* is
    /// [`Scenario::with_capacity`].
    pub fn with_capacity_profile(mut self, capacity: CapacityProfile) -> Self {
        self.capacity = capacity;
        self
    }

    /// Sets the scenario-wide round budget (builder-style).
    pub fn with_budget(mut self, budget: RoundBudget) -> Self {
        self.round_budget = budget;
        self
    }

    /// Appends an explicit annotation tag (recorded in the report header).
    /// Idempotent: a tag the scenario already carries — e.g. inherited from the
    /// baseline of a derivation — is not duplicated.
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        let tag = tag.into();
        if !self.tags.contains(&tag) {
            self.tags.push(tag);
        }
        self
    }

    /// Replaces the auto-generated description of a derived variant (or the
    /// description of a baseline) with bespoke prose. Pairing metadata, name and
    /// axis are untouched — the committed reliable twins use this to keep their
    /// historical report headers byte-identical while being *derived* rather
    /// than hand-copied.
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Replaces the mechanically derived name. The only sanctioned uses are
    /// preserving a historical name that predates the derivation scheme (e.g.
    /// `crash-ncc0-reliable`, whose mechanical name would be
    /// `mid-build-crash-wave-reliable`) and aligning a new twin with such a
    /// historical sibling (`crash-ncc0-detector` sits next to
    /// `crash-ncc0-reliable`); other matrix cells should keep their derived
    /// names so the naming scheme stays predictable.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    // ---- Variant axis constructors ------------------------------------

    /// Derives the reliable-transport twin: same experiment, plus the
    /// `overlay-transport` reliability layer and `slack` flat extra rounds per
    /// phase for its retry round-trips (a retry chain costs a *constant* number
    /// of rounds, which a percent budget cannot express for one-round phases).
    ///
    /// Name: `<base>-reliable`. Axis: [`VariantAxis::Transport`].
    pub fn reliable(&self, transport: TransportConfig, slack: u32) -> Scenario {
        let mut twin = self.clone();
        twin.name = format!("{}-reliable", self.name);
        twin.description = format!("Twin of {} over the reliable transport", self.name);
        twin.round_budget = self.round_budget.with_slack(slack);
        twin.transport = Some(transport);
        twin.baseline = Some(self.name.clone());
        twin.axis = Some(VariantAxis::Transport);
        twin
    }

    /// Derives the on-demand large-`n` rerun of this scenario.
    ///
    /// Name: `full-<base>-<n>` — the `full-` namespace keeps these out of the
    /// committed `reports/` baselines (the sweep runner routes them to the
    /// untracked `full/` subdirectory, outside the `--check` contract), and the
    /// size suffix is derived from the argument, so a third or fourth size can
    /// never be mislabeled. Axis: [`VariantAxis::Size`].
    ///
    /// Large-`n` twins switch to [`MetricsMode::Rollup`] so a long horizon keeps
    /// aggregate totals plus a bounded ring of recent rounds instead of one
    /// [`overlay_netsim::RoundMetrics`] per round; every reported figure is
    /// mode-independent.
    pub fn at_n(&self, n: usize) -> Scenario {
        let mut twin = self.clone();
        twin.name = format!("full-{}-{n}", self.name);
        twin.description = format!("Large-n twin of {} at n = {n}", self.name);
        twin.n = n;
        twin.baseline = Some(self.name.clone());
        twin.axis = Some(VariantAxis::Size);
        twin.metrics_mode = MetricsMode::Rollup { window: 64 };
        twin
    }

    /// Derives the capacity-profile twin: same experiment under a different
    /// per-round NCC0 cap — e.g. generous headroom isolating a fault's effect
    /// from capacity pressure, or tight caps compounding it.
    ///
    /// Name: `<base>-<profile>`. Axis: [`VariantAxis::Capacity`].
    pub fn with_capacity(&self, capacity: CapacityProfile) -> Scenario {
        let mut twin = self.clone();
        twin.name = format!("{}-{}", self.name, capacity.label());
        twin.description = format!(
            "Twin of {} with {} NCC0 capacity",
            self.name,
            capacity.label()
        );
        twin.capacity = capacity;
        twin.baseline = Some(self.name.clone());
        twin.axis = Some(VariantAxis::Capacity);
        twin
    }

    /// Derives the phase-scoped twin: same experiment, with budget and/or
    /// transport overridden for individual pipeline phases only (how a scenario
    /// spends reliability on just the phase that needs it).
    ///
    /// Name: `<base>` plus, per overridden phase, `-<phase>` and a marker for
    /// what changed (`-reliable`/`-bare` for a transport override, `-budget`
    /// when only the budget moved) — e.g. `lossy-ncc0-binarize-reliable`.
    /// Axis: [`VariantAxis::Phases`].
    ///
    /// # Panics
    ///
    /// Panics when `overrides` is empty: an empty override set is bit-for-bit
    /// the baseline, so deriving a "twin" from it could only produce a
    /// duplicate experiment under a new name.
    pub fn with_phases(&self, overrides: PhaseOverrides) -> Scenario {
        assert!(
            !overrides.is_empty(),
            "a phase-override twin needs at least one override"
        );
        let mut twin = self.clone();
        twin.name = format!("{}{}", self.name, phase_suffix(&overrides));
        twin.description = format!(
            "Twin of {} with overrides scoped to single phases",
            self.name
        );
        twin.phases = overrides;
        twin.baseline = Some(self.name.clone());
        twin.axis = Some(VariantAxis::Phases);
        twin
    }

    /// Derives the re-invitation twin of a serving baseline: the identical
    /// service (same horizon, same churn process) with epoch-boundary
    /// re-invitation switched on — the protocol-level primitive that pulls
    /// stragglers into the current evolution. The pair is the maintenance
    /// subsystem's headline comparison: sustained coverage with vs without
    /// re-invitation under the same continuous join pressure.
    ///
    /// Name: `<base>-reinvite`. Axis: [`VariantAxis::Maintenance`].
    ///
    /// # Panics
    ///
    /// Panics when the baseline is not a serve scenario, or already
    /// re-invites (the twin would be bit-for-bit the baseline).
    pub fn with_reinvitation(&self) -> Scenario {
        let spec = self
            .serve
            .expect("a re-invitation twin needs a serving baseline");
        assert!(
            !spec.reinvite,
            "baseline already re-invites; the twin would duplicate it"
        );
        let mut twin = self.clone();
        twin.name = format!("{}-reinvite", self.name);
        twin.description = format!(
            "Twin of {} with epoch-boundary re-invitation switched on",
            self.name
        );
        twin.serve = Some(ServeSpec {
            reinvite: true,
            ..spec
        });
        twin.baseline = Some(self.name.clone());
        twin.axis = Some(VariantAxis::Maintenance);
        twin
    }

    /// Derives a traffic-axis twin of a traffic-carrying baseline: the
    /// identical experiment (same construction, same faults) with a different
    /// traffic spec — another workload shape, the tree routing policy, or
    /// different pressure knobs. The suffix names what moved (e.g. `tree`,
    /// `hotspot`); workload twins that should sit in the flat `traffic-*`
    /// namespace follow with [`Scenario::renamed`].
    ///
    /// Name: `<base>-<suffix>`. Axis: [`VariantAxis::Traffic`].
    ///
    /// # Panics
    ///
    /// Panics when the baseline carries no traffic, or when `spec` equals the
    /// baseline's (the twin would be bit-for-bit the baseline).
    pub fn with_traffic_axis(&self, suffix: &str, spec: TrafficSpec) -> Scenario {
        let base = self
            .traffic
            .expect("a traffic-axis twin needs a traffic-carrying baseline");
        assert!(
            base != spec,
            "baseline already runs this traffic spec; the twin would duplicate it"
        );
        let mut twin = self.clone();
        twin.name = format!("{}-{suffix}", self.name);
        twin.description = format!("Twin of {} with the {suffix} traffic spec", self.name);
        twin.traffic = Some(spec);
        twin.baseline = Some(self.name.clone());
        twin.axis = Some(VariantAxis::Traffic);
        twin
    }

    /// `true` when any part of the run uses the reliable transport — the
    /// scenario-wide layer or a phase-scoped [`TransportChoice::Reliable`]
    /// override.
    pub fn uses_reliable_transport(&self) -> bool {
        self.transport.is_some()
            || PhaseId::ALL.iter().any(|&id| {
                matches!(
                    self.phases.transport(id),
                    Some(TransportChoice::Reliable(_))
                )
            })
    }

    /// The scenario's discoverable tag set: the explicit [`tags`](Scenario::tags)
    /// plus derived structural facets — family, fault and capacity labels,
    /// `reliable`/`bare` for the transport (a phase-scoped reliable override
    /// counts as `reliable`, with `phase-reliable` marking the scoping),
    /// `axis:<label>` and `derived` for variants. [`crate::Registry`] filtering
    /// and the sweep runner's `--list` match against these.
    pub fn effective_tags(&self) -> Vec<String> {
        let mut tags = self.tags.clone();
        let mut add = |tag: String| {
            if !tags.contains(&tag) {
                tags.push(tag);
            }
        };
        add(self.family.label());
        add(self.faults.label().to_string());
        add(self.capacity.label().to_string());
        add(if self.uses_reliable_transport() {
            "reliable"
        } else {
            "bare"
        }
        .to_string());
        if self.transport.is_none() && self.uses_reliable_transport() {
            add("phase-reliable".to_string());
        }
        if self.serve.is_some() {
            add("serve".to_string());
        }
        if let Some(traffic) = self.traffic {
            add("traffic".to_string());
            add(traffic.workload.label().to_string());
            add(format!("route:{}", traffic.policy.label()));
        }
        if let Some(axis) = self.axis {
            add(format!("axis:{}", axis.label()));
            add("derived".to_string());
        }
        tags
    }

    /// The effective node count after family rounding.
    pub fn actual_n(&self) -> usize {
        self.family.actual_n(self.n)
    }

    /// Lowers the scenario into one seed's concrete inputs: the graph, the fault
    /// plan, and the configured builder.
    fn prepare(&self, seed: u64) -> (usize, DiGraph, FaultPlan, OverlayBuilder) {
        let n = self.actual_n();
        let mut params = ExpanderParams::for_n(n).with_seed(seed);
        self.capacity.apply(&mut params);
        let g = self.family.build(n, seed ^ 0x6EED_5EED);
        let plan = self.faults.lower(n, &params, seed);
        let mut builder = OverlayBuilder::new(params)
            .with_round_budget(self.round_budget)
            .with_phase_overrides(self.phases)
            .with_parallelism(self.parallelism)
            .with_metrics_mode(self.metrics_mode);
        if let Some(transport) = self.transport {
            builder = builder.with_reliable_transport(transport);
        }
        (n, g, plan, builder)
    }

    /// The per-attempt invitation loss probability of the maintenance phase:
    /// invitations cross the same network the construction did, so a lossy
    /// fault load loses invitations at its message-drop rate.
    fn invite_loss(&self) -> f64 {
        match self.faults {
            FaultSpec::Lossy { drop_prob } => drop_prob,
            FaultSpec::CrashThenLoss { drop_prob, .. } => drop_prob,
            _ => 0.0,
        }
    }

    /// Builds the configured maintenance runner of a serving scenario over the
    /// expander a finished construction produced.
    fn maintenance_runner(&self, seed: u64, result: &OverlayResult) -> MaintenanceRunner {
        let spec = self.serve.expect("a maintenance runner needs a serve spec");
        let mut params = ExpanderParams::for_n(self.actual_n()).with_seed(seed);
        self.capacity.apply(&mut params);
        let config = MaintenanceConfig {
            epoch_rounds: spec.epoch_rounds,
            epochs: spec.epochs,
            reinvite: spec.reinvite,
            repair: true,
            invite_loss: self.invite_loss(),
            // The reliable transport retries invitations the way it retries
            // data; a bare cell gets one attempt per boundary.
            invite_retries: self.transport.map(|t| t.max_retransmits).unwrap_or(0),
            seed: seed ^ 0x5E12_EC0D_E5E2_7E5E,
        };
        let schedule = ChurnSchedule {
            seed: seed ^ 0xC0A1_E5CE_D01E_5EED,
            join_rate: spec.join_rate,
            leave_rate: spec.leave_rate,
            crash_rate: spec.crash_rate,
            burst: spec.burst,
        };
        MaintenanceRunner::new(result.expander.clone(), params, config, schedule)
    }

    /// Runs the maintenance phase of a serving scenario against the expander a
    /// finished construction produced. Returns `None` for non-serve scenarios
    /// and the zeroed [`ServeRecord::unserved`] when construction failed
    /// (there is no overlay to serve). The optional trace sink receives the
    /// epoch/re-invite/repair events.
    fn serve_record(
        &self,
        seed: u64,
        report: &BuildReport,
        trace: Option<SharedTraceSink>,
    ) -> Option<ServeRecord> {
        self.serve?;
        let Some(result) = report.result.as_ref() else {
            return Some(ServeRecord::unserved());
        };
        let mut runner = self.maintenance_runner(seed, result);
        if let Some(sink) = trace {
            runner.set_trace_sink(sink);
        }
        Some(ServeRecord::from_outcome(&runner.run()))
    }

    /// Executes one traffic wave over `graph` on `exec`: builds the next-hop
    /// table, pre-schedules the workload, and runs one [`Router`] per node.
    /// `salt` differentiates repeated waves (0 for the single wave of a
    /// build-then-route cell; the per-epoch reruns of a serving cell salt by
    /// epoch) — same salt, same wave, on any executor.
    pub fn run_traffic_over<E: PhaseExecutor>(
        &self,
        spec: &TrafficSpec,
        graph: &UGraph,
        seed: u64,
        salt: u64,
        exec: &mut E,
    ) -> Result<ExecutedPhase<RouterSummary>, E::Error> {
        let n = graph.node_count();
        if n < 2 {
            // A one-node overlay has nobody to talk to; an honest empty wave.
            return Ok(ExecutedPhase {
                summaries: Vec::new(),
                alive: Vec::new(),
                rounds: 0,
                all_done: true,
                delivered: 0,
            });
        }
        let table = next_hops(graph);
        let schedule = spec.workload.schedule(
            n,
            spec.requests_per_node,
            spec.horizon,
            traffic_workload_seed(seed, salt),
        );
        let config = spec.router_config();
        let nodes: Vec<Router> = table
            .into_iter()
            .zip(schedule)
            .enumerate()
            .map(|(v, (row, reqs))| Router::new(v as u32, row, reqs, config))
            .collect();
        let faults = if spec.loss > 0.0 {
            FaultPlan::default().with_drop_prob(spec.loss)
        } else {
            FaultPlan::default()
        };
        let max_degree = (0..n)
            .map(|v| graph.distinct_neighbors(NodeId::from(v)).len())
            .max()
            .unwrap_or(0);
        let exec_spec = PhaseExecSpec {
            seed: seed
                .wrapping_add(PhaseId::Traffic.index() as u64)
                .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            // Provisioned above the worst-case receive load (every neighbor
            // spending its whole forward budget on one target), with headroom
            // for transport-layer acks and retransmissions, so the capacity
            // model's seeded eviction never fires and congestion manifests
            // only in the router's deterministic queue — identically on every
            // backend.
            ncc0_cap: (max_degree * spec.per_round_budget as usize * 4).max(64),
            budget: spec.round_budget(),
            transport: self.transport,
        };
        exec.execute(
            Phase::from_parts(PhaseId::Traffic, nodes, spec.round_budget(), faults),
            exec_spec,
        )
    }

    /// Builds the overlay exactly as [`Scenario::run`] does (on the lockstep
    /// simulator), then executes the scenario's traffic phase on `exec` — the
    /// hook the backend-identity smoke uses to route the same workload over
    /// the simulator and a thread-backed executor and compare delivery sets.
    /// `None` when the scenario carries no traffic or construction failed.
    pub fn traffic_summaries<E: PhaseExecutor>(
        &self,
        seed: u64,
        exec: &mut E,
    ) -> Option<Result<ExecutedPhase<RouterSummary>, E::Error>> {
        let spec = self.traffic?;
        let (_, g, plan, builder) = self.prepare(seed);
        let report = builder
            .build_under_faults(&g, &plan)
            .expect("registry scenarios produce valid inputs");
        let result = report.result?;
        let graph = routing_graph(spec.policy, &result);
        Some(self.run_traffic_over(&spec, &graph, seed, 0, exec))
    }

    /// Runs the traffic phase of a build-then-route cell over the finished
    /// overlay. Returns `None` for non-traffic scenarios and the zeroed
    /// [`TrafficRecord::unrouted`] when construction failed (there is no
    /// overlay to route over).
    fn traffic_record(
        &self,
        seed: u64,
        report: &BuildReport,
        trace: Option<&SharedTraceSink>,
    ) -> Option<TrafficRecord> {
        let spec = self.traffic?;
        let Some(result) = report.result.as_ref() else {
            return Some(TrafficRecord::unrouted());
        };
        let graph = routing_graph(spec.policy, result);
        let mut exec = SimExecutor {
            parallelism: self.parallelism,
            metrics_mode: self.metrics_mode,
        };
        let run = self
            .run_traffic_over(&spec, &graph, seed, 0, &mut exec)
            .expect("the simulator cannot fail");
        if let Some(sink) = trace {
            emit_traffic_trace(
                sink,
                &spec,
                graph.node_count(),
                traffic_workload_seed(seed, 0),
                &run,
            );
        }
        let mut tally = TrafficTally::new();
        tally.absorb(&run.summaries, run.rounds);
        Some(TrafficRecord::from_report(&tally.report()))
    }

    /// Runs everything that follows construction: the maintenance phase, the
    /// traffic phase, or — for a serving traffic cell — the interleaving of
    /// both, where one traffic wave rides the *current* core overlay after
    /// every maintenance epoch (churn degrades it, repair heals it, and the
    /// delivered fraction measures what the service sustained in between).
    fn post_build(
        &self,
        seed: u64,
        report: &BuildReport,
        trace: Option<SharedTraceSink>,
    ) -> (Option<ServeRecord>, Option<TrafficRecord>) {
        let (Some(spec), Some(tspec)) = (self.serve, self.traffic) else {
            let serve = self.serve_record(seed, report, trace.clone());
            let traffic = self.traffic_record(seed, report, trace.as_ref());
            return (serve, traffic);
        };
        let Some(result) = report.result.as_ref() else {
            return (
                Some(ServeRecord::unserved()),
                Some(TrafficRecord::unrouted()),
            );
        };
        let mut runner = self.maintenance_runner(seed, result);
        if let Some(sink) = trace.clone() {
            runner.set_trace_sink(sink);
        }
        let mut exec = SimExecutor {
            parallelism: self.parallelism,
            metrics_mode: self.metrics_mode,
        };
        let mut tally = TrafficTally::new();
        for epoch in 0..spec.epochs {
            runner.step_epoch();
            let graph = match tspec.policy {
                RoutingPolicy::Greedy => runner.core_graph().clone(),
                RoutingPolicy::Tree => match runner.tree() {
                    Some(tree) => tree.to_ugraph(),
                    None => continue,
                },
            };
            let salt = epoch as u64 + 1;
            let run = self
                .run_traffic_over(&tspec, &graph, seed, salt, &mut exec)
                .expect("the simulator cannot fail");
            if let Some(sink) = trace.as_ref() {
                emit_traffic_trace(
                    sink,
                    &tspec,
                    graph.node_count(),
                    traffic_workload_seed(seed, salt),
                    &run,
                );
            }
            tally.absorb(&run.summaries, run.rounds);
        }
        let outcome = runner.into_outcome();
        (
            Some(ServeRecord::from_outcome(&outcome)),
            Some(TrafficRecord::from_report(&tally.report())),
        )
    }

    /// Flattens a finished pipeline report (plus the maintenance phase of a
    /// serving scenario) into the sweep's record row. For serve cells the
    /// headline coverage is the *sustained* service coverage, success
    /// additionally requires a violation-free tree at every epoch boundary,
    /// and the service horizon counts toward the round total.
    fn record_from(
        &self,
        seed: u64,
        n: usize,
        report: &BuildReport,
        serve: Option<ServeRecord>,
        traffic: Option<TrafficRecord>,
    ) -> RunRecord {
        let (tree_height, tree_degree) = report
            .result
            .as_ref()
            .map(|r| (r.tree.height(), r.tree.max_degree()))
            .unwrap_or((0, 0));
        let mut record = RunRecord {
            seed,
            round_budget_percent: self.round_budget.as_percent(),
            round_budget_slack: self.round_budget.slack(),
            success: report.is_success(),
            completed: report.result.is_some(),
            coverage: report.coverage(n),
            rounds: report.rounds.total(),
            core_size: report.survivor_ids.len(),
            tree_height,
            tree_degree,
            delivered: report.messages.total_delivered,
            dropped_fault: report.messages.dropped_fault,
            dropped_offline: report.messages.dropped_offline,
            dropped_receive: report.messages.dropped_receive,
            delayed: report.messages.delayed,
            retransmits: report.messages.retransmits,
            acks: report.messages.acks,
            dupes_dropped: report.messages.dupes_dropped,
            crashed: report.crashed,
            joined: report.joined,
            stalled_phase: report.stalled_phase().unwrap_or(""),
            serve: None,
            traffic: None,
        };
        if let Some(serve) = serve {
            record.coverage = serve.sustained_coverage;
            record.success = record.success && serve.wf_violations == 0;
            if serve.served {
                record.rounds += self.serve.expect("serve record implies spec").horizon();
            }
            record.serve = Some(serve);
        }
        if let Some(traffic) = traffic {
            // Routing rounds count toward the run's horizon the way service
            // rounds do.
            record.rounds += traffic.rounds;
            record.traffic = Some(traffic);
        }
        record
    }

    /// Runs the scenario once under `seed`, deterministically.
    pub fn run(&self, seed: u64) -> RunRecord {
        let (n, g, plan, builder) = self.prepare(seed);
        let report = builder
            .build_under_faults(&g, &plan)
            .expect("registry scenarios produce valid inputs");
        let (serve, traffic) = self.post_build(seed, &report, None);
        self.record_from(seed, n, &report, serve, traffic)
    }

    /// Runs the scenario once under `seed` with full observability: the same
    /// deterministic run as [`Scenario::run`] (the record is identical), plus the
    /// complete [`BuildReport`] and the structured event trace for forensics.
    /// For serve scenarios the trace continues through the maintenance phase
    /// (epoch, re-invitation and repair events follow the construction events).
    pub fn run_traced(&self, seed: u64) -> ForensicRun {
        let (n, g, plan, builder) = self.prepare(seed);
        let buf = TraceBuffer::shared();
        let report = builder
            .build_under_faults_traced(&g, &plan, buf.clone())
            .expect("registry scenarios produce valid inputs");
        let (serve, traffic) = self.post_build(seed, &report, Some(buf.clone()));
        let events = std::mem::take(&mut buf.borrow_mut().events);
        ForensicRun {
            record: self.record_from(seed, n, &report, serve, traffic),
            report,
            events,
        }
    }

    /// A full label like `join-churn(cycle/128, standard caps)`.
    pub fn label(&self) -> String {
        format!(
            "{}({}/{}, {} caps)",
            self.name,
            self.family.label(),
            self.actual_n(),
            self.capacity.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_families_build_connected_graphs() {
        for family in [
            GraphFamily::Line,
            GraphFamily::Cycle,
            GraphFamily::BinaryTree,
            GraphFamily::RandomRegular { degree: 4 },
            GraphFamily::TwoCyclesBridged,
        ] {
            let n = family.actual_n(48);
            let g = family.build(48, 7);
            assert_eq!(g.node_count(), n, "{}", family.label());
            assert!(
                overlay_graph::analysis::is_connected(&g.to_undirected()),
                "{} must be connected",
                family.label()
            );
        }
    }

    #[test]
    fn fault_specs_lower_deterministically() {
        let params = ExpanderParams::for_n(64);
        for spec in [
            FaultSpec::Clean,
            FaultSpec::Lossy { drop_prob: 0.1 },
            FaultSpec::Jitter {
                delay_prob: 0.3,
                max_delay: 3,
            },
            FaultSpec::CrashWave {
                fraction: 0.1,
                at: 0.3,
            },
            FaultSpec::JoinChurn {
                fraction: 0.2,
                spread: 0.4,
            },
            FaultSpec::PartitionHeal {
                from: 0.2,
                heal: 0.5,
            },
            FaultSpec::CrashThenLoss {
                fraction: 0.1,
                at: 0.4,
                drop_prob: 0.01,
            },
        ] {
            assert_eq!(
                spec.lower(64, &params, 9),
                spec.lower(64, &params, 9),
                "{}",
                spec.label()
            );
            assert!(
                spec.lower(64, &params, 9).validate(64).is_ok(),
                "{}",
                spec.label()
            );
        }
        // Different seeds give different crash sets.
        let a = FaultSpec::CrashWave {
            fraction: 0.2,
            at: 0.3,
        }
        .lower(64, &params, 1);
        let b = FaultSpec::CrashWave {
            fraction: 0.2,
            at: 0.3,
        }
        .lower(64, &params, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn crash_wave_never_touches_node_zero() {
        let params = ExpanderParams::for_n(64);
        for seed in 0..20 {
            let plan = FaultSpec::CrashWave {
                fraction: 0.5,
                at: 0.5,
            }
            .lower(64, &params, seed);
            assert!(plan.crashes.iter().all(|c| c.node.index() != 0));
        }
    }

    #[test]
    fn builder_defaults_are_the_clean_paper_setting() {
        let s = Scenario::new("test-clean", "clean line", GraphFamily::Line, 48);
        assert_eq!(s.capacity, CapacityProfile::Standard);
        assert_eq!(s.faults, FaultSpec::Clean);
        assert_eq!(s.round_budget, RoundBudget::STANDARD);
        assert!(s.transport.is_none());
        assert!(s.phases.is_empty());
        assert!(s.tags.is_empty());
        assert!(s.baseline.is_none() && s.axis.is_none());
    }

    #[test]
    fn clean_scenario_run_succeeds_fully() {
        let s = Scenario::new("test-clean", "clean line", GraphFamily::Line, 48);
        let r = s.run(3);
        assert!(r.success && r.completed);
        assert!((r.coverage - 1.0).abs() < 1e-12);
        assert_eq!(r.core_size, 48);
        assert_eq!(r.dropped_fault, 0);
        assert_eq!(r.stalled_phase, "");
    }

    #[test]
    fn runs_are_reproducible() {
        let s = Scenario::new("test-lossy", "lossy cycle", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::Lossy { drop_prob: 0.05 })
            .with_budget(RoundBudget::percent(125));
        assert_eq!(s.run(11), s.run(11));
    }

    #[test]
    fn reliable_twin_runs_and_reports_overhead() {
        let bare = Scenario::new("test-lossy", "lossy cycle", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::Lossy { drop_prob: 0.02 });
        let reliable = bare.reliable(TransportConfig::default(), 12);
        let r_bare = bare.run(2);
        let r_rel = reliable.run(2);
        assert_eq!(r_bare.retransmits, 0);
        assert_eq!(r_bare.acks, 0);
        assert!(
            r_rel.retransmits > 0,
            "2% loss must trigger retransmissions"
        );
        assert!(r_rel.acks > 0);
        assert!(
            r_rel.coverage >= r_bare.coverage,
            "reliability must not reduce coverage ({} < {})",
            r_rel.coverage,
            r_bare.coverage
        );
    }

    #[test]
    fn reliable_variant_derives_name_pairing_and_slack() {
        let base = Scenario::new("lossy-x", "x under loss", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::Lossy { drop_prob: 0.01 })
            .with_budget(RoundBudget::percent(150));
        let twin = base.reliable(TransportConfig::default(), 12);
        assert_eq!(twin.name, "lossy-x-reliable");
        assert_eq!(twin.baseline.as_deref(), Some("lossy-x"));
        assert_eq!(twin.axis, Some(VariantAxis::Transport));
        assert!(twin.transport.is_some());
        assert_eq!(twin.round_budget.as_percent(), 150);
        assert_eq!(twin.round_budget.slack(), 12);
        assert_eq!(twin.family, base.family);
        assert_eq!(twin.faults, base.faults);
        assert!(twin.description.contains("Twin of lossy-x"));
    }

    #[test]
    fn size_variant_derives_full_names_for_any_size() {
        let base = Scenario::new("clean-line", "base", GraphFamily::Line, 128);
        for n in [512usize, 1024, 4096] {
            let big = base.at_n(n);
            assert_eq!(big.name, format!("full-clean-line-{n}"));
            assert_eq!(big.n, n);
            assert_eq!(big.baseline.as_deref(), Some("clean-line"));
            assert_eq!(big.axis, Some(VariantAxis::Size));
        }
    }

    #[test]
    fn capacity_variant_appends_the_profile_label() {
        let base = Scenario::new("lossy-x", "x", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::Lossy { drop_prob: 0.01 });
        let twin = base.with_capacity(CapacityProfile::Generous);
        assert_eq!(twin.name, "lossy-x-generous");
        assert_eq!(twin.capacity, CapacityProfile::Generous);
        assert_eq!(twin.baseline.as_deref(), Some("lossy-x"));
        assert_eq!(twin.axis, Some(VariantAxis::Capacity));
        assert_eq!(twin.faults, base.faults);
    }

    #[test]
    fn phase_variant_names_the_overridden_phase_and_kind() {
        let base = Scenario::new("lossy-x", "x", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::Lossy { drop_prob: 0.01 });
        let twin = base.with_phases(
            PhaseOverrides::none()
                .with_budget(PhaseId::Binarize, RoundBudget::STANDARD.with_slack(12))
                .with_transport(
                    PhaseId::Binarize,
                    TransportChoice::Reliable(TransportConfig::default()),
                ),
        );
        assert_eq!(twin.name, "lossy-x-binarize-reliable");
        assert_eq!(twin.axis, Some(VariantAxis::Phases));
        assert!(!twin.phases.is_empty());
        let budget_only = base.with_phases(
            PhaseOverrides::none().with_budget(PhaseId::Bfs, RoundBudget::percent(200)),
        );
        assert_eq!(budget_only.name, "lossy-x-bfs-budget");
    }

    #[test]
    #[should_panic(expected = "at least one override")]
    fn empty_phase_override_twin_is_rejected() {
        let base = Scenario::new("x", "x", GraphFamily::Cycle, 48);
        let _ = base.with_phases(PhaseOverrides::none());
    }

    #[test]
    fn effective_tags_expose_facets_and_axis() {
        let base = Scenario::new("lossy-x", "x", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::Lossy { drop_prob: 0.01 })
            .with_tag("matrix");
        let tags = base.effective_tags();
        for expected in ["matrix", "cycle", "lossy", "standard", "bare"] {
            assert!(
                tags.iter().any(|t| t == expected),
                "missing {expected}: {tags:?}"
            );
        }
        let twin = base.reliable(TransportConfig::default(), 12);
        let tags = twin.effective_tags();
        for expected in ["reliable", "axis:transport", "derived"] {
            assert!(
                tags.iter().any(|t| t == expected),
                "missing {expected}: {tags:?}"
            );
        }
    }

    #[test]
    fn crash_then_loss_lowers_to_windowed_loss_and_crashes() {
        let params = ExpanderParams::for_n(64);
        let plan = FaultSpec::CrashThenLoss {
            fraction: 0.1,
            at: 0.5,
            drop_prob: 0.02,
        }
        .lower(64, &params, 3);
        assert!(!plan.crashes.is_empty());
        let crash_round = plan.crashes[0].round;
        assert!(crash_round > 0);
        assert_eq!(plan.loss_from, crash_round, "loss starts with the wave");
        assert_eq!(plan.drop_prob, 0.02);
        assert!(plan.crashes.iter().all(|c| c.round == crash_round));
    }

    #[test]
    fn traced_runs_match_untraced_runs_exactly() {
        // Tracing must not perturb the run: the forensic record is the record.
        let scenario = Scenario::new("trace-x", "x", GraphFamily::Cycle, 48)
            .with_faults(FaultSpec::CrashWave {
                fraction: 0.15,
                at: 0.4,
            })
            .with_budget(RoundBudget::percent(150));
        for seed in [0u64, 1, 2] {
            let plain = scenario.run(seed);
            let forensic = scenario.run_traced(seed);
            assert_eq!(plain, forensic.record, "seed {seed}");
            assert!(!forensic.events.is_empty());
            assert!(!forensic.report.phase_metrics.is_empty());
        }
    }
}
