//! The declarative scenario type and its lowering into concrete runs.

use overlay_core::{ExpanderNode, ExpanderParams, OverlayBuilder, PhaseOverrides, RoundBudget};
use overlay_graph::{generators, DiGraph, NodeId};
use overlay_netsim::{FaultPlan, TransportConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The initial knowledge graph a scenario starts from. All families have constant
/// degree, as Theorem 1.1 requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFamily {
    /// A path — the paper's worst case (diameter `n - 1`).
    Line,
    /// A cycle.
    Cycle,
    /// A complete binary tree.
    BinaryTree,
    /// A random d-regular graph (already an expander w.h.p.; the easy case).
    RandomRegular {
        /// The degree (constant, small).
        degree: usize,
    },
    /// Two cycles of `n/2` nodes joined by one bridge edge — conductance `Θ(1/n)`
    /// with a single cut edge, the nastiest constant-degree input for partitions.
    TwoCyclesBridged,
}

impl GraphFamily {
    /// Builds the graph on `n` nodes; `seed` only matters for random families.
    pub fn build(&self, n: usize, seed: u64) -> DiGraph {
        match self {
            GraphFamily::Line => generators::line(n),
            GraphFamily::Cycle => generators::cycle(n),
            GraphFamily::BinaryTree => generators::binary_tree(n),
            GraphFamily::RandomRegular { degree } => generators::random_regular(n, *degree, seed),
            GraphFamily::TwoCyclesBridged => {
                let half = (n / 2).max(1);
                let mut g = DiGraph::new(2 * half);
                for i in 0..half {
                    g.add_edge(NodeId::from(i), NodeId::from((i + 1) % half));
                    g.add_edge(NodeId::from(half + i), NodeId::from(half + (i + 1) % half));
                }
                g.add_edge(NodeId::from(0usize), NodeId::from(half));
                g
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> String {
        match self {
            GraphFamily::Line => "line".into(),
            GraphFamily::Cycle => "cycle".into(),
            GraphFamily::BinaryTree => "binary-tree".into(),
            GraphFamily::RandomRegular { degree } => format!("random-{degree}-regular"),
            GraphFamily::TwoCyclesBridged => "two-cycles-bridged".into(),
        }
    }

    /// The node count actually used for `n` (TwoCyclesBridged rounds down to even).
    pub fn actual_n(&self, n: usize) -> usize {
        match self {
            GraphFamily::TwoCyclesBridged => 2 * (n / 2).max(1),
            _ => n,
        }
    }
}

/// How much per-round NCC0 capacity nodes get, relative to the paper-shaped default.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapacityProfile {
    /// The default `2Δ` cap from [`ExpanderParams::for_n`].
    Standard,
    /// Three quarters of the default — adversarial capacity pressure; the receive
    /// cap starts dropping messages and the run must cope.
    Tight,
    /// Twice the default — headroom to isolate fault effects from capacity effects.
    Generous,
}

impl CapacityProfile {
    fn apply(&self, params: &mut ExpanderParams) {
        match self {
            CapacityProfile::Standard => {}
            CapacityProfile::Tight => params.ncc0_cap = (params.ncc0_cap * 3 / 4).max(1),
            CapacityProfile::Generous => params.ncc0_cap *= 2,
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CapacityProfile::Standard => "standard",
            CapacityProfile::Tight => "tight",
            CapacityProfile::Generous => "generous",
        }
    }
}

/// The declarative fault load of a scenario, lowered per run (given `n`, the round
/// schedule and the seed) into a concrete [`FaultPlan`].
///
/// Fractions are of the node count; round positions are fractions of the
/// construction schedule so scenarios stay meaningful across sizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultSpec {
    /// No faults — the paper's setting.
    Clean,
    /// Independent per-message loss.
    Lossy {
        /// Per-message drop probability.
        drop_prob: f64,
    },
    /// Random delivery delays.
    Jitter {
        /// Probability that a message is delayed.
        delay_prob: f64,
        /// Maximum extra rounds a delayed message is held.
        max_delay: usize,
    },
    /// A wave of crash-stop failures partway through construction.
    CrashWave {
        /// Fraction of nodes that crash.
        fraction: f64,
        /// When the wave hits, as a fraction of the construction schedule.
        at: f64,
    },
    /// Nodes joining late with bounded initial knowledge (their constant-degree
    /// graph edges), staggered over the start of construction.
    JoinChurn {
        /// Fraction of nodes that join late.
        fraction: f64,
        /// The join rounds spread over this fraction of the construction schedule.
        spread: f64,
    },
    /// A partition that splits the first half of the ids from the second, then heals.
    PartitionHeal {
        /// Window start, as a fraction of the construction schedule.
        from: f64,
        /// Window end (heal), as a fraction of the construction schedule.
        heal: f64,
    },
}

impl FaultSpec {
    /// Lowers the spec into a concrete plan for `n` nodes under `params`'s round
    /// schedule, with all random choices drawn from `seed`.
    pub fn lower(&self, n: usize, params: &ExpanderParams, seed: u64) -> FaultPlan {
        let schedule = construction_rounds(params);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CE2_A210_F00D_CAFE);
        match *self {
            FaultSpec::Clean => FaultPlan::default(),
            FaultSpec::Lossy { drop_prob } => FaultPlan::default().with_drop_prob(drop_prob),
            FaultSpec::Jitter {
                delay_prob,
                max_delay,
            } => FaultPlan::default().with_delays(delay_prob, max_delay),
            FaultSpec::CrashWave { fraction, at } => {
                let round = fraction_round(schedule, at);
                let mut plan = FaultPlan::default();
                for v in seeded_subset(n, fraction, &mut rng) {
                    plan = plan.with_crash(NodeId::from(v), round);
                }
                plan
            }
            FaultSpec::JoinChurn { fraction, spread } => {
                let last = fraction_round(schedule, spread).max(2);
                let mut plan = FaultPlan::default();
                for v in seeded_subset(n, fraction, &mut rng) {
                    let round = rng.gen_range(1..last);
                    plan = plan.with_join(NodeId::from(v), round);
                }
                plan
            }
            FaultSpec::PartitionHeal { from, heal } => {
                let from_round = fraction_round(schedule, from);
                let heal_round = fraction_round(schedule, heal).max(from_round + 1);
                let side_a: Vec<NodeId> = (0..n / 2).map(NodeId::from).collect();
                FaultPlan::default().with_partition(side_a, from_round, heal_round)
            }
        }
    }

    /// A short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultSpec::Clean => "clean",
            FaultSpec::Lossy { .. } => "lossy",
            FaultSpec::Jitter { .. } => "jitter",
            FaultSpec::CrashWave { .. } => "crash-wave",
            FaultSpec::JoinChurn { .. } => "join-churn",
            FaultSpec::PartitionHeal { .. } => "partition-heal",
        }
    }
}

/// Rounds of the construction phase (the schedule faults are positioned against).
fn construction_rounds(params: &ExpanderParams) -> usize {
    ExpanderNode::total_rounds(params)
}

fn fraction_round(schedule: usize, fraction: f64) -> usize {
    ((schedule as f64 * fraction).round() as usize).min(schedule)
}

/// A seeded random subset of `⌊fraction · n⌋` nodes, excluding node 0 (keeping at
/// least one stable resident keeps the scenarios comparable across seeds).
fn seeded_subset(n: usize, fraction: f64, rng: &mut StdRng) -> Vec<usize> {
    let k = ((n as f64 * fraction) as usize).min(n.saturating_sub(1));
    let mut ids: Vec<usize> = (1..n).collect();
    ids.shuffle(rng);
    ids.truncate(k);
    ids.sort_unstable();
    ids
}

/// One named experiment: everything needed to run the pipeline under a fault load.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Unique kebab-case name (registry key).
    pub name: &'static str,
    /// One-line description for reports.
    pub description: &'static str,
    /// The initial knowledge graph family.
    pub family: GraphFamily,
    /// Node count (a family may round it; see [`GraphFamily::actual_n`]).
    pub n: usize,
    /// The NCC0 capacity profile.
    pub capacity: CapacityProfile,
    /// The fault load.
    pub faults: FaultSpec,
    /// The per-phase round-budget multiplier the pipeline runs under. Faulty
    /// scenarios whose fault model legitimately stretches wall-rounds (delivery
    /// jitter, late joins) declare extra allowance here instead of being judged
    /// against the clean schedule; [`RoundBudget::STANDARD`] is the paper's budget.
    pub round_budget: RoundBudget,
    /// When set, the pipeline's protocols run behind the reliable-delivery
    /// transport layer (acks, retransmission, duplicate suppression — see
    /// `overlay-transport`) with this configuration; `None` is the paper's
    /// bare-sends setting. Reliable twins of a fault scenario keep every other
    /// field identical so their reports read as a direct paper-vs-fault-tolerant
    /// comparison.
    pub transport: Option<TransportConfig>,
    /// Per-phase overrides of `round_budget` and `transport`
    /// ([`PhaseOverrides::none`] inherits the scenario-wide settings for every
    /// phase). This is how a scenario spends reliability or budget headroom on
    /// just the phase that needs it — e.g. reliable transport only for the
    /// one-round binarize phase. Recorded in the report header when non-empty.
    pub phases: PhaseOverrides,
}

/// The outcome of one `(scenario, seed)` run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// The seed this run used.
    pub seed: u64,
    /// The round-budget multiplier (percent of the clean schedule) this run was
    /// granted; `100` is the clean budget.
    pub round_budget_percent: u32,
    /// Flat extra rounds granted to every phase on top of the percent scaling
    /// (declared by reliable-transport scenarios for retry round-trips).
    pub round_budget_slack: u32,
    /// Pipeline completed *and* the tree is valid over the nodes alive at the end.
    pub success: bool,
    /// Pipeline produced a tree at all (may be invalid over the survivors).
    pub completed: bool,
    /// Fraction of the initial nodes covered by the final alive tree.
    pub coverage: f64,
    /// Total rounds across all phases that ran.
    pub rounds: usize,
    /// Size of the surviving core the pipeline continued with.
    pub core_size: usize,
    /// Tree height (0 when no tree formed).
    pub tree_height: usize,
    /// Tree degree (0 when no tree formed).
    pub tree_degree: usize,
    /// Messages delivered across all phases.
    pub delivered: u64,
    /// Messages lost to injected faults (loss + partitions).
    pub dropped_fault: u64,
    /// Messages to crashed/dormant nodes.
    pub dropped_offline: u64,
    /// Messages dropped by the NCC0 receive cap.
    pub dropped_receive: u64,
    /// Messages that suffered injected delays.
    pub delayed: u64,
    /// Transport-layer retransmissions (zero for bare scenarios).
    pub retransmits: u64,
    /// Transport-layer acknowledgment messages (zero for bare scenarios).
    pub acks: u64,
    /// Duplicate payloads the transport layer suppressed (zero for bare
    /// scenarios).
    pub dupes_dropped: u64,
    /// Crash events executed.
    pub crashed: usize,
    /// Join events executed.
    pub joined: usize,
    /// Name of the first stalled phase, empty when none stalled.
    pub stalled_phase: &'static str,
}

impl Scenario {
    /// The effective node count after family rounding.
    pub fn actual_n(&self) -> usize {
        self.family.actual_n(self.n)
    }

    /// Runs the scenario once under `seed`, deterministically.
    pub fn run(&self, seed: u64) -> RunRecord {
        let n = self.actual_n();
        let mut params = ExpanderParams::for_n(n).with_seed(seed);
        self.capacity.apply(&mut params);
        let g = self.family.build(n, seed ^ 0x6EED_5EED);
        let plan = self.faults.lower(n, &params, seed);
        let mut builder = OverlayBuilder::new(params)
            .with_round_budget(self.round_budget)
            .with_phase_overrides(self.phases);
        if let Some(transport) = self.transport {
            builder = builder.with_reliable_transport(transport);
        }
        let report = builder
            .build_under_faults(&g, &plan)
            .expect("registry scenarios produce valid inputs");
        let (tree_height, tree_degree) = report
            .result
            .as_ref()
            .map(|r| (r.tree.height(), r.tree.max_degree()))
            .unwrap_or((0, 0));
        RunRecord {
            seed,
            round_budget_percent: self.round_budget.as_percent(),
            round_budget_slack: self.round_budget.slack(),
            success: report.is_success(),
            completed: report.result.is_some(),
            coverage: report.coverage(n),
            rounds: report.rounds.total(),
            core_size: report.survivor_ids.len(),
            tree_height,
            tree_degree,
            delivered: report.messages.total_delivered,
            dropped_fault: report.messages.dropped_fault,
            dropped_offline: report.messages.dropped_offline,
            dropped_receive: report.messages.dropped_receive,
            delayed: report.messages.delayed,
            retransmits: report.messages.retransmits,
            acks: report.messages.acks,
            dupes_dropped: report.messages.dupes_dropped,
            crashed: report.crashed,
            joined: report.joined,
            stalled_phase: report.stalled_phase().unwrap_or(""),
        }
    }

    /// A full label like `join-churn(cycle/128, standard caps)`.
    pub fn label(&self) -> String {
        format!(
            "{}({}/{}, {} caps)",
            self.name,
            self.family.label(),
            self.actual_n(),
            self.capacity.label()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_families_build_connected_graphs() {
        for family in [
            GraphFamily::Line,
            GraphFamily::Cycle,
            GraphFamily::BinaryTree,
            GraphFamily::RandomRegular { degree: 4 },
            GraphFamily::TwoCyclesBridged,
        ] {
            let n = family.actual_n(48);
            let g = family.build(48, 7);
            assert_eq!(g.node_count(), n, "{}", family.label());
            assert!(
                overlay_graph::analysis::is_connected(&g.to_undirected()),
                "{} must be connected",
                family.label()
            );
        }
    }

    #[test]
    fn fault_specs_lower_deterministically() {
        let params = ExpanderParams::for_n(64);
        for spec in [
            FaultSpec::Clean,
            FaultSpec::Lossy { drop_prob: 0.1 },
            FaultSpec::Jitter {
                delay_prob: 0.3,
                max_delay: 3,
            },
            FaultSpec::CrashWave {
                fraction: 0.1,
                at: 0.3,
            },
            FaultSpec::JoinChurn {
                fraction: 0.2,
                spread: 0.4,
            },
            FaultSpec::PartitionHeal {
                from: 0.2,
                heal: 0.5,
            },
        ] {
            assert_eq!(
                spec.lower(64, &params, 9),
                spec.lower(64, &params, 9),
                "{}",
                spec.label()
            );
            assert!(
                spec.lower(64, &params, 9).validate(64).is_ok(),
                "{}",
                spec.label()
            );
        }
        // Different seeds give different crash sets.
        let a = FaultSpec::CrashWave {
            fraction: 0.2,
            at: 0.3,
        }
        .lower(64, &params, 1);
        let b = FaultSpec::CrashWave {
            fraction: 0.2,
            at: 0.3,
        }
        .lower(64, &params, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn crash_wave_never_touches_node_zero() {
        let params = ExpanderParams::for_n(64);
        for seed in 0..20 {
            let plan = FaultSpec::CrashWave {
                fraction: 0.5,
                at: 0.5,
            }
            .lower(64, &params, seed);
            assert!(plan.crashes.iter().all(|c| c.node.index() != 0));
        }
    }

    #[test]
    fn clean_scenario_run_succeeds_fully() {
        let s = Scenario {
            name: "test-clean",
            description: "clean line",
            family: GraphFamily::Line,
            n: 48,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        };
        let r = s.run(3);
        assert!(r.success && r.completed);
        assert!((r.coverage - 1.0).abs() < 1e-12);
        assert_eq!(r.core_size, 48);
        assert_eq!(r.dropped_fault, 0);
        assert_eq!(r.stalled_phase, "");
    }

    #[test]
    fn runs_are_reproducible() {
        let s = Scenario {
            name: "test-lossy",
            description: "lossy cycle",
            family: GraphFamily::Cycle,
            n: 48,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.05 },
            round_budget: RoundBudget::percent(125),
            transport: None,
            phases: PhaseOverrides::none(),
        };
        assert_eq!(s.run(11), s.run(11));
    }

    #[test]
    fn reliable_twin_runs_and_reports_overhead() {
        let bare = Scenario {
            name: "test-lossy",
            description: "lossy cycle",
            family: GraphFamily::Cycle,
            n: 48,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.02 },
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        };
        let reliable = Scenario {
            round_budget: RoundBudget::percent(200),
            transport: Some(TransportConfig::default()),
            ..bare.clone()
        };
        let r_bare = bare.run(2);
        let r_rel = reliable.run(2);
        assert_eq!(r_bare.retransmits, 0);
        assert_eq!(r_bare.acks, 0);
        assert!(
            r_rel.retransmits > 0,
            "2% loss must trigger retransmissions"
        );
        assert!(r_rel.acks > 0);
        assert!(
            r_rel.coverage >= r_bare.coverage,
            "reliability must not reduce coverage ({} < {})",
            r_rel.coverage,
            r_bare.coverage
        );
    }
}
