//! Multi-seed sweeps: run one scenario across many seeds, in parallel, and
//! aggregate the results.

use crate::json::Json;
use crate::scenario::{RunRecord, Scenario};
use overlay_core::{PhaseId, PhaseOverrides, TransportChoice};
use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::Duration;

/// A scenario × seed-set execution plan.
#[derive(Clone, Debug)]
pub struct Sweep {
    /// The scenario to run.
    pub scenario: Scenario,
    /// The seeds to run it under (one [`RunRecord`] each).
    pub seeds: Vec<u64>,
}

impl Sweep {
    /// A sweep over `count` consecutive seeds starting at `first_seed`.
    ///
    /// Seeds wrap around `u64::MAX` deliberately (`wrapping_add`), so the seed set
    /// is always exactly `count` *distinct* seeds for any `first_seed`: the old
    /// unchecked `first_seed + i` panicked in debug builds and silently depended on
    /// release-mode wrapping near the top of the range.
    pub fn over_seeds(scenario: Scenario, first_seed: u64, count: usize) -> Self {
        Sweep {
            scenario,
            seeds: (0..count as u64)
                .map(|i| first_seed.wrapping_add(i))
                .collect(),
        }
    }

    /// Runs every seed in parallel (rayon) and aggregates. Results are ordered by
    /// seed position, so the report is identical to [`Sweep::run_sequential`]'s.
    ///
    /// The report's [`SweepReport::observed_workers`] counts the *distinct
    /// threads that actually executed seeds* — measured, not configured — so a
    /// sweep pinned to one core (or shorter than the worker count) reports the
    /// parallelism it really got.
    pub fn run(&self) -> SweepReport {
        let start = std::time::Instant::now();
        let seen = Mutex::new(HashSet::new());
        let records: Vec<RunRecord> = self
            .seeds
            .par_iter()
            .map(|&seed| {
                seen.lock().unwrap().insert(std::thread::current().id());
                self.scenario.run(seed)
            })
            .collect();
        let observed = seen.into_inner().unwrap().len();
        self.assemble(
            records,
            start.elapsed(),
            rayon::current_num_threads(),
            observed,
        )
    }

    /// Runs every seed on the calling thread (the comparison baseline for the
    /// parallel path).
    pub fn run_sequential(&self) -> SweepReport {
        let start = std::time::Instant::now();
        let records: Vec<RunRecord> = self.seeds.iter().map(|&s| self.scenario.run(s)).collect();
        self.assemble(records, start.elapsed(), 1, 1)
    }

    /// Runs the parallel sweep *and* the sequential baseline, records both
    /// wall-clocks in one report, and asserts the two paths produced identical
    /// records (the determinism contract, enforced on every compared run).
    ///
    /// This doubles the work, so it is opt-in — the sweep runner uses it for
    /// `--full` runs, where the measured serial-vs-parallel speedup lands in the
    /// `.meta.json` sidecar.
    ///
    /// # Panics
    ///
    /// Panics if the parallel and sequential paths disagree on any record —
    /// that would mean seed-level determinism is broken.
    pub fn run_compared(&self) -> SweepReport {
        let mut report = self.run();
        let start = std::time::Instant::now();
        let serial: Vec<RunRecord> = self.seeds.iter().map(|&s| self.scenario.run(s)).collect();
        assert_eq!(
            report.records, serial,
            "parallel and sequential sweeps must produce identical records"
        );
        report.serial_wall = Some(start.elapsed());
        report
    }

    fn assemble(
        &self,
        records: Vec<RunRecord>,
        wall: Duration,
        workers: usize,
        observed_workers: usize,
    ) -> SweepReport {
        SweepReport {
            scenario: self.scenario.clone(),
            records,
            wall,
            workers,
            observed_workers,
            serial_wall: None,
        }
    }
}

/// The aggregated outcome of a [`Sweep`].
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-seed outcomes, in seed order.
    pub records: Vec<RunRecord>,
    /// Wall-clock time of the sweep (the only non-deterministic field; excluded from
    /// [`SweepReport::to_json`]'s deterministic section).
    pub wall: Duration,
    /// Worker threads the sweep was configured with ([`rayon::current_num_threads`]).
    pub workers: usize,
    /// Distinct threads that actually executed seeds — the parallelism the sweep
    /// *measured*, which can be less than `workers` on a loaded or small machine
    /// (and is 1 for [`Sweep::run_sequential`]).
    pub observed_workers: usize,
    /// Wall-clock of the sequential baseline, when this report came from
    /// [`Sweep::run_compared`]; `None` for ordinary runs.
    pub serial_wall: Option<Duration>,
}

impl SweepReport {
    /// Parallel speedup (`serial_wall / wall`) when the sweep ran compared
    /// ([`Sweep::run_compared`]); `None` otherwise or when the wall-clock was
    /// too short to measure.
    pub fn speedup(&self) -> Option<f64> {
        let serial = self.serial_wall?;
        if self.wall.is_zero() {
            return None;
        }
        Some(serial.as_secs_f64() / self.wall.as_secs_f64())
    }

    /// Fraction of runs that completed with a tree valid over the final survivors.
    pub fn success_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().filter(|r| r.success).count() as f64 / self.records.len() as f64
    }

    /// Mean coverage (alive tree nodes / initial nodes) across runs.
    pub fn mean_coverage(&self) -> f64 {
        mean(self.records.iter().map(|r| r.coverage))
    }

    /// Mean total round count across runs.
    pub fn mean_rounds(&self) -> f64 {
        mean(self.records.iter().map(|r| r.rounds as f64))
    }

    /// Smallest and largest round counts observed.
    pub fn round_range(&self) -> (usize, usize) {
        let min = self.records.iter().map(|r| r.rounds).min().unwrap_or(0);
        let max = self.records.iter().map(|r| r.rounds).max().unwrap_or(0);
        (min, max)
    }

    /// Mean messages delivered per run.
    pub fn mean_delivered(&self) -> f64 {
        mean(self.records.iter().map(|r| r.delivered as f64))
    }

    /// Total messages lost to injected faults across all runs.
    pub fn total_dropped_fault(&self) -> u64 {
        self.records.iter().map(|r| r.dropped_fault).sum()
    }

    /// Total transport-layer retransmissions across all runs (zero for bare
    /// scenarios).
    pub fn total_retransmits(&self) -> u64 {
        self.records.iter().map(|r| r.retransmits).sum()
    }

    /// Total transport-layer acknowledgment messages across all runs.
    pub fn total_acks(&self) -> u64 {
        self.records.iter().map(|r| r.acks).sum()
    }

    /// Total duplicate payloads suppressed by the transport across all runs.
    pub fn total_dupes_dropped(&self) -> u64 {
        self.records.iter().map(|r| r.dupes_dropped).sum()
    }

    /// Lowest per-boundary coverage floor any seed observed (1.0 when the
    /// scenario has no maintenance phase; 0.0 when any seed failed to serve).
    pub fn min_coverage_floor(&self) -> f64 {
        self.records
            .iter()
            .filter_map(|r| r.serve.map(|s| s.coverage_floor))
            .fold(1.0, f64::min)
    }

    /// Total well-formedness violations across every seed's epoch boundaries.
    pub fn total_wf_violations(&self) -> u64 {
        self.serve_sum(|s| s.wf_violations)
    }

    /// Total re-invitations issued across all runs.
    pub fn total_reinvites(&self) -> u64 {
        self.serve_sum(|s| s.reinvites_sent)
    }

    /// Total re-invitations that admitted their straggler across all runs.
    pub fn total_reinvites_delivered(&self) -> u64 {
        self.serve_sum(|s| s.reinvites_delivered)
    }

    /// Worst rounds-to-repair after a crash burst across all runs.
    pub fn max_rounds_to_repair(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| r.serve.map(|s| s.rounds_to_repair_max as u64))
            .max()
            .unwrap_or(0)
    }

    fn serve_sum(&self, f: impl Fn(&crate::scenario::ServeRecord) -> usize) -> u64 {
        self.records
            .iter()
            .filter_map(|r| r.serve.as_ref().map(&f))
            .map(|v| v as u64)
            .sum()
    }

    /// Mean delivered fraction of the traffic phase across seeds (1.0 when
    /// the scenario carries no traffic).
    pub fn mean_delivered_fraction(&self) -> f64 {
        let fractions: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.traffic.map(|t| t.delivered_fraction()))
            .collect();
        if fractions.is_empty() {
            1.0
        } else {
            mean(fractions.into_iter())
        }
    }

    /// Mean per-seed median rounds-to-delivery (0 without traffic).
    pub fn mean_latency_p50(&self) -> f64 {
        mean(self.traffic_records().map(|t| t.latency_p50 as f64))
    }

    /// Mean per-seed 99th-percentile rounds-to-delivery (0 without traffic).
    pub fn mean_latency_p99(&self) -> f64 {
        mean(self.traffic_records().map(|t| t.latency_p99 as f64))
    }

    /// Worst per-seed 99th-percentile hop count — the figure the overlay's
    /// `O(log n)` diameter bounds (0 without traffic).
    pub fn hops_p99_max(&self) -> u32 {
        self.traffic_records()
            .map(|t| t.hops_p99)
            .max()
            .unwrap_or(0)
    }

    /// Most messages any single directed edge carried in any seed.
    pub fn max_edge_load(&self) -> u32 {
        self.traffic_records()
            .map(|t| t.max_edge_load)
            .max()
            .unwrap_or(0)
    }

    /// Total requests injected across all runs.
    pub fn total_injected(&self) -> u64 {
        self.traffic_records().map(|t| t.injected).sum()
    }

    /// Total requests delivered across all runs.
    pub fn total_traffic_delivered(&self) -> u64 {
        self.traffic_records().map(|t| t.delivered).sum()
    }

    /// Total requests shed (overflow/unroutable), expired, or lost in flight
    /// across all runs.
    pub fn total_traffic_shed(&self) -> u64 {
        self.traffic_records()
            .map(|t| t.dropped + t.expired + t.lost)
            .sum()
    }

    fn traffic_records(&self) -> impl Iterator<Item = crate::scenario::TrafficRecord> + '_ {
        self.records.iter().filter_map(|r| r.traffic)
    }

    /// The deterministic aggregate + per-seed report as a JSON value.
    ///
    /// Wall-clock time and worker count are environment facts, not results, and are
    /// reported next to — not inside — the deterministic body, so diffing two sweep
    /// reports answers "did behavior change?".
    pub fn to_json(&self) -> Json {
        let (rounds_min, rounds_max) = self.round_range();
        let mut fields = vec![
            ("scenario", Json::Str(self.scenario.name.clone())),
            ("description", Json::Str(self.scenario.description.clone())),
            ("family", Json::Str(self.scenario.family.label())),
            ("n", Json::Int(self.scenario.actual_n() as i64)),
            (
                "capacity",
                Json::Str(self.scenario.capacity.label().to_string()),
            ),
            (
                "faults",
                Json::Str(self.scenario.faults.label().to_string()),
            ),
            (
                "round_budget_percent",
                Json::Int(self.scenario.round_budget.as_percent() as i64),
            ),
            (
                "round_budget_slack",
                Json::Int(self.scenario.round_budget.slack() as i64),
            ),
            (
                "transport",
                Json::Str(
                    if self.scenario.transport.is_some() {
                        "reliable"
                    } else {
                        "none"
                    }
                    .to_string(),
                ),
            ),
        ];
        // Explicit annotation tags and per-phase overrides are recorded only when
        // the scenario declares any: pre-matrix reports (and every scenario that
        // carries no tags and inherits the scenario-wide settings everywhere)
        // keep their exact historical header, so the committed baselines stay
        // byte-identical.
        if !self.scenario.tags.is_empty() {
            fields.push((
                "tags",
                Json::Arr(
                    self.scenario
                        .tags
                        .iter()
                        .map(|t| Json::Str(t.clone()))
                        .collect(),
                ),
            ));
        }
        if !self.scenario.phases.is_empty() {
            fields.push((
                "phase_overrides",
                phase_overrides_json(&self.scenario.phases),
            ));
        }
        // The maintenance phase of a serve cell: spec echo plus service-level
        // aggregates. Conditional like tags/phase_overrides, so every classic
        // build-once report keeps its exact historical header.
        if let Some(spec) = self.scenario.serve {
            fields.push((
                "serve",
                Json::obj(vec![
                    ("epochs", Json::Int(spec.epochs as i64)),
                    ("epoch_rounds", Json::Int(spec.epoch_rounds as i64)),
                    ("reinvite", Json::Bool(spec.reinvite)),
                    ("join_rate", Json::Num(spec.join_rate)),
                    ("leave_rate", Json::Num(spec.leave_rate)),
                    ("crash_rate", Json::Num(spec.crash_rate)),
                    (
                        "burst_every_rounds",
                        Json::Int(spec.burst.map_or(0, |b| b.every_rounds) as i64),
                    ),
                    (
                        "burst_fraction",
                        Json::Num(spec.burst.map_or(0.0, |b| b.fraction)),
                    ),
                    ("min_coverage_floor", Json::Num(self.min_coverage_floor())),
                    (
                        "total_wf_violations",
                        Json::Int(self.total_wf_violations() as i64),
                    ),
                    ("total_reinvites", Json::Int(self.total_reinvites() as i64)),
                    (
                        "total_reinvites_delivered",
                        Json::Int(self.total_reinvites_delivered() as i64),
                    ),
                    (
                        "max_rounds_to_repair",
                        Json::Int(self.max_rounds_to_repair() as i64),
                    ),
                ]),
            ));
        }
        // The traffic phase of a traffic cell: spec echo plus workload-level
        // aggregates. Conditional like serve, so every pre-traffic report
        // keeps its exact historical header.
        if let Some(spec) = self.scenario.traffic {
            fields.push((
                "traffic",
                Json::obj(vec![
                    ("workload", Json::Str(spec.workload.label().to_string())),
                    ("policy", Json::Str(spec.policy.label().to_string())),
                    (
                        "requests_per_node",
                        Json::Int(spec.requests_per_node as i64),
                    ),
                    ("horizon", Json::Int(spec.horizon as i64)),
                    ("ttl", Json::Int(spec.ttl as i64)),
                    ("queue_cap", Json::Int(spec.queue_cap as i64)),
                    ("per_round_budget", Json::Int(spec.per_round_budget as i64)),
                    ("loss", Json::Num(spec.loss)),
                    (
                        "mean_delivered_fraction",
                        Json::Num(self.mean_delivered_fraction()),
                    ),
                    ("mean_latency_p50", Json::Num(self.mean_latency_p50())),
                    ("mean_latency_p99", Json::Num(self.mean_latency_p99())),
                    ("hops_p99_max", Json::Int(self.hops_p99_max() as i64)),
                    ("max_edge_load", Json::Int(self.max_edge_load() as i64)),
                    ("total_injected", Json::Int(self.total_injected() as i64)),
                    (
                        "total_delivered",
                        Json::Int(self.total_traffic_delivered() as i64),
                    ),
                    ("total_shed", Json::Int(self.total_traffic_shed() as i64)),
                ]),
            ));
        }
        fields.extend(vec![
            ("seeds", Json::Int(self.records.len() as i64)),
            ("success_rate", Json::Num(self.success_rate())),
            ("mean_coverage", Json::Num(self.mean_coverage())),
            ("mean_rounds", Json::Num(self.mean_rounds())),
            ("rounds_min", Json::Int(rounds_min as i64)),
            ("rounds_max", Json::Int(rounds_max as i64)),
            ("mean_delivered", Json::Num(self.mean_delivered())),
            (
                "total_dropped_fault",
                Json::Int(self.total_dropped_fault() as i64),
            ),
            (
                "total_retransmits",
                Json::Int(self.total_retransmits() as i64),
            ),
            ("total_acks", Json::Int(self.total_acks() as i64)),
            (
                "total_dupes_dropped",
                Json::Int(self.total_dupes_dropped() as i64),
            ),
            (
                "runs",
                Json::Arr(self.records.iter().map(record_json).collect()),
            ),
        ]);
        Json::obj(fields)
    }

    /// Renders the deterministic JSON report as a pretty string.
    pub fn to_json_string(&self) -> String {
        self.to_json().render_pretty()
    }

    /// A one-line human summary. Workers are shown as `observed/configured`;
    /// compared runs ([`Sweep::run_compared`]) append the serial wall-clock and
    /// the measured speedup.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{:<44} seeds={:<3} success={:>5.1}% coverage={:>5.1}% rounds={:.0} ({}..{}) wall={:?} workers={}/{}",
            self.scenario.label(),
            self.records.len(),
            100.0 * self.success_rate(),
            100.0 * self.mean_coverage(),
            self.mean_rounds(),
            self.round_range().0,
            self.round_range().1,
            self.wall,
            self.observed_workers,
            self.workers,
        );
        if let Some(serial) = self.serial_wall {
            line.push_str(&format!(" serial={serial:?}"));
            if let Some(speedup) = self.speedup() {
                line.push_str(&format!(" speedup={speedup:.2}x"));
            }
        }
        line
    }
}

/// The header entry for a scenario's per-phase overrides: one object per phase
/// that overrides anything, with only the overridden knobs present.
fn phase_overrides_json(overrides: &PhaseOverrides) -> Json {
    let mut phases = Vec::new();
    for id in PhaseId::ALL {
        let mut fields = Vec::new();
        if let Some(budget) = overrides.budget(id) {
            fields.push((
                "round_budget_percent",
                Json::Int(budget.as_percent() as i64),
            ));
            fields.push(("round_budget_slack", Json::Int(budget.slack() as i64)));
        }
        match overrides.transport(id) {
            None => {}
            Some(TransportChoice::Bare) => fields.push(("transport", Json::Str("none".into()))),
            Some(TransportChoice::Reliable(_)) => {
                fields.push(("transport", Json::Str("reliable".into())))
            }
        }
        if !fields.is_empty() {
            phases.push((id.name(), Json::obj(fields)));
        }
    }
    Json::obj(phases)
}

fn record_json(r: &RunRecord) -> Json {
    let mut fields = vec![
        // Seeds span the full u64 range (`Sweep::over_seeds` wraps deliberately),
        // so they must not be squeezed through i64.
        ("seed", Json::UInt(r.seed)),
        (
            "round_budget_percent",
            Json::Int(r.round_budget_percent as i64),
        ),
        ("round_budget_slack", Json::Int(r.round_budget_slack as i64)),
        ("success", Json::Bool(r.success)),
        ("completed", Json::Bool(r.completed)),
        ("coverage", Json::Num(r.coverage)),
        ("rounds", Json::Int(r.rounds as i64)),
        ("core_size", Json::Int(r.core_size as i64)),
        ("tree_height", Json::Int(r.tree_height as i64)),
        ("tree_degree", Json::Int(r.tree_degree as i64)),
        ("delivered", Json::Int(r.delivered as i64)),
        ("dropped_fault", Json::Int(r.dropped_fault as i64)),
        ("dropped_offline", Json::Int(r.dropped_offline as i64)),
        ("dropped_receive", Json::Int(r.dropped_receive as i64)),
        ("delayed", Json::Int(r.delayed as i64)),
        ("retransmits", Json::Int(r.retransmits as i64)),
        ("acks", Json::Int(r.acks as i64)),
        ("dupes_dropped", Json::Int(r.dupes_dropped as i64)),
        ("crashed", Json::Int(r.crashed as i64)),
        ("joined", Json::Int(r.joined as i64)),
        ("stalled_phase", Json::Str(r.stalled_phase.to_string())),
    ];
    // Serve cells carry their maintenance-phase outcome; classic rows keep the
    // exact historical shape.
    if let Some(s) = &r.serve {
        fields.push((
            "serve",
            Json::obj(vec![
                ("served", Json::Bool(s.served)),
                ("sustained_coverage", Json::Num(s.sustained_coverage)),
                ("coverage_mean", Json::Num(s.coverage_mean)),
                ("coverage_floor", Json::Num(s.coverage_floor)),
                ("wf_violations", Json::Int(s.wf_violations as i64)),
                ("reinvites_sent", Json::Int(s.reinvites_sent as i64)),
                (
                    "reinvites_delivered",
                    Json::Int(s.reinvites_delivered as i64),
                ),
                ("repairs", Json::Int(s.repairs as i64)),
                ("healed", Json::Int(s.healed as i64)),
                (
                    "rounds_to_repair_max",
                    Json::Int(s.rounds_to_repair_max as i64),
                ),
                ("joined", Json::Int(s.joined as i64)),
                ("left", Json::Int(s.left as i64)),
                ("crashed", Json::Int(s.crashed as i64)),
                ("final_alive", Json::Int(s.final_alive as i64)),
            ]),
        ));
    }
    // Traffic cells carry their workload outcome; classic rows keep the exact
    // historical shape.
    if let Some(t) = &r.traffic {
        fields.push((
            "traffic",
            Json::obj(vec![
                ("routed", Json::Bool(t.routed)),
                ("injected", Json::Int(t.injected as i64)),
                ("delivered", Json::Int(t.delivered as i64)),
                ("dropped", Json::Int(t.dropped as i64)),
                ("expired", Json::Int(t.expired as i64)),
                ("lost", Json::Int(t.lost as i64)),
                ("hops_p50", Json::Int(t.hops_p50 as i64)),
                ("hops_p99", Json::Int(t.hops_p99 as i64)),
                ("hops_max", Json::Int(t.hops_max as i64)),
                ("latency_p50", Json::Int(t.latency_p50 as i64)),
                ("latency_p99", Json::Int(t.latency_p99 as i64)),
                ("latency_max", Json::Int(t.latency_max as i64)),
                ("max_edge_load", Json::Int(t.max_edge_load as i64)),
                ("max_node_forwards", Json::Int(t.max_node_forwards as i64)),
                ("rounds", Json::Int(t.rounds as i64)),
            ]),
        ));
    }
    Json::obj(fields)
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;
    use overlay_core::RoundBudget;

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let sweep = Sweep::over_seeds(find("lossy-ncc0").unwrap(), 0, 6);
        let par = sweep.run();
        let seq = sweep.run_sequential();
        assert_eq!(par.records, seq.records);
        assert_eq!(par.to_json().render(), seq.to_json().render());
    }

    #[test]
    fn rerunning_a_sweep_is_byte_identical() {
        let sweep = Sweep::over_seeds(find("mid-build-crash-wave").unwrap(), 40, 4);
        assert_eq!(sweep.run().to_json_string(), sweep.run().to_json_string());
    }

    #[test]
    fn clean_baseline_always_succeeds() {
        let report = Sweep::over_seeds(find("clean-line").unwrap(), 0, 4).run();
        assert!((report.success_rate() - 1.0).abs() < 1e-12);
        assert!((report.mean_coverage() - 1.0).abs() < 1e-12);
        assert_eq!(report.total_dropped_fault(), 0);
    }

    #[test]
    fn json_report_carries_every_seed() {
        let sweep = Sweep::over_seeds(find("join-churn").unwrap(), 7, 3);
        let rendered = sweep.run().to_json_string();
        for seed in 7..10 {
            assert!(
                rendered.contains(&format!("\"seed\": {seed}")),
                "{rendered}"
            );
        }
        assert!(rendered.contains("\"success_rate\""));
        assert!(rendered.contains("\"round_budget_percent\": 150"));
    }

    #[test]
    fn over_seeds_wraps_instead_of_overflowing() {
        // Regression: `first_seed + i` panicked in debug builds near u64::MAX and
        // relied on silent release-mode wrapping. The wrap is now deliberate and
        // the seeds stay distinct.
        let sweep = Sweep::over_seeds(find("clean-line").unwrap(), u64::MAX - 1, 4);
        assert_eq!(sweep.seeds, vec![u64::MAX - 1, u64::MAX, 0, 1]);
        let mut unique = sweep.seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4, "wrapped seed ranges must stay distinct");
    }

    #[test]
    fn phase_overrides_appear_in_the_header_only_when_declared() {
        let bare = find("lossy-ncc0").unwrap();
        let rendered = Sweep::over_seeds(bare.clone(), 0, 2).run().to_json_string();
        assert!(
            !rendered.contains("phase_overrides"),
            "override-free scenarios must keep the historical header: {rendered}"
        );
        let mut scoped = bare;
        scoped.phases = PhaseOverrides::none()
            .with_budget(PhaseId::Binarize, RoundBudget::STANDARD.with_slack(12))
            .with_transport(
                PhaseId::Binarize,
                TransportChoice::Reliable(crate::TransportConfig::default()),
            );
        let rendered = Sweep::over_seeds(scoped, 0, 2).run().to_json_string();
        assert!(rendered.contains("\"phase_overrides\""), "{rendered}");
        assert!(rendered.contains("\"binarize\""), "{rendered}");
        assert!(
            rendered.contains("\"round_budget_slack\": 12"),
            "{rendered}"
        );
        assert!(
            !rendered.contains("\"create-expander\""),
            "phases without overrides must not be listed: {rendered}"
        );
        let parsed = Json::parse(&rendered).expect("report with overrides parses");
        assert!(parsed.render().contains("phase_overrides"));
    }

    #[test]
    fn traffic_fields_appear_in_the_report_only_for_traffic_cells() {
        let rendered = Sweep::over_seeds(find("clean-line").unwrap(), 0, 2)
            .run()
            .to_json_string();
        assert!(
            !rendered.contains("\"traffic\""),
            "traffic-free scenarios must keep the historical shape: {rendered}"
        );
        let report = Sweep::over_seeds(find("traffic-uniform").unwrap(), 0, 2).run();
        let rendered = report.to_json_string();
        assert!(rendered.contains("\"traffic\""), "{rendered}");
        assert!(rendered.contains("\"workload\": \"uniform\""), "{rendered}");
        assert!(rendered.contains("\"hops_p99\""), "{rendered}");
        assert!(rendered.contains("\"latency_p50\""), "{rendered}");
        // The clean expander delivers everything it injects.
        assert!((report.mean_delivered_fraction() - 1.0).abs() < 1e-12);
        assert!(report.total_injected() > 0);
        let parsed = Json::parse(&rendered).expect("traffic report parses");
        assert_eq!(parsed.render(), report.to_json().render());
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let report = Sweep::over_seeds(find("lossy-ncc0").unwrap(), 3, 3).run();
        for rendered in [report.to_json().render(), report.to_json_string()] {
            let parsed = Json::parse(&rendered).expect("report JSON parses");
            // Integral floats reparse as ints; rendered form is the identity.
            assert_eq!(parsed.render(), report.to_json().render());
        }
    }
}
