//! The built-in named scenarios.

use crate::scenario::{CapacityProfile, FaultSpec, GraphFamily, Scenario};
use overlay_core::RoundBudget;

/// Returns the built-in scenarios, clean baselines first.
///
/// Sizes are laptop-friendly so the whole registry sweeps in seconds; the specs are
/// fractions of `n` and of the round schedule, so scaling a scenario up is just a
/// bigger `n`.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean-line",
            description: "Baseline: the paper's worst-case input (a line), no faults",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "clean-expander",
            description: "Baseline: an already-good random 4-regular graph, no faults",
            family: GraphFamily::RandomRegular { degree: 4 },
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "lossy-ncc0",
            description: "0.2% independent message loss on a cycle — enough to kill \
                          some seeds (the one-round finalize phase has no redundancy)",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.002 },
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "lossy-ncc0-heavy",
            description: "5% independent message loss on a cycle: the protocol has no \
                          retransmissions, so this documents the collapse mode",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.05 },
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "delay-jitter",
            description: "25% of messages delayed up to 3 rounds on a line",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Jitter {
                delay_prob: 0.25,
                max_delay: 3,
            },
            // Deliberately the clean budget: a jitter stall is *protocol*-terminated
            // (nodes flag done on schedule and the run stops, stranding delayed
            // messages), so no round-budget multiplier can buy the lost messages
            // back — this scenario documents that collapse mode. Budgets help where
            // completion is *pending* (late joiners keeping `all_done` false), as in
            // `join-churn` below.
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "mid-build-crash-wave",
            description: "10% of nodes crash a third of the way into construction",
            family: GraphFamily::RandomRegular { degree: 4 },
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::CrashWave {
                fraction: 0.10,
                at: 0.33,
            },
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "join-churn",
            description: "15% of nodes join late (bounded knowledge), staggered over \
                          the first 40% of construction",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::JoinChurn {
                fraction: 0.15,
                spread: 0.40,
            },
            round_budget: RoundBudget::percent(150),
        },
        Scenario {
            name: "partition-heal",
            description: "The id halves are partitioned from 20% to 50% of \
                          construction, then heal",
            family: GraphFamily::TwoCyclesBridged,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::PartitionHeal {
                from: 0.20,
                heal: 0.50,
            },
            round_budget: RoundBudget::STANDARD,
        },
        Scenario {
            name: "tight-caps",
            description: "Clean network but only 3/4 of the standard NCC0 capacity",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Tight,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
        },
    ]
}

/// Looks a scenario up by its registry name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_six_unique_named_scenarios() {
        let scenarios = registry();
        assert!(scenarios.len() >= 6, "only {} scenarios", scenarios.len());
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "names must be unique");
        for s in &scenarios {
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{} is not kebab-case",
                s.name
            );
            assert!(!s.description.is_empty());
        }
    }

    #[test]
    fn find_round_trips() {
        assert_eq!(find("join-churn").unwrap().name, "join-churn");
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn every_registered_scenario_runs() {
        for s in registry() {
            let r = s.run(1);
            assert!(r.rounds > 0, "{} executed no rounds", s.name);
            assert!(r.delivered > 0, "{} delivered nothing", s.name);
        }
    }
}
