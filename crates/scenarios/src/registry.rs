//! The built-in named scenarios.

use crate::scenario::{CapacityProfile, FaultSpec, GraphFamily, Scenario};
use overlay_core::{PhaseOverrides, RoundBudget};
use overlay_netsim::TransportConfig;

/// Returns the built-in scenarios, clean baselines first.
///
/// Sizes are laptop-friendly so the whole registry sweeps in seconds; the specs are
/// fractions of `n` and of the round schedule, so scaling a scenario up is just a
/// bigger `n`.
pub fn registry() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "clean-line",
            description: "Baseline: the paper's worst-case input (a line), no faults",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "clean-expander",
            description: "Baseline: an already-good random 4-regular graph, no faults",
            family: GraphFamily::RandomRegular { degree: 4 },
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "lossy-ncc0",
            description: "0.2% independent message loss on a cycle — enough to kill \
                          some seeds (the one-round finalize phase has no redundancy)",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.002 },
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "lossy-ncc0-heavy",
            description: "5% independent message loss on a cycle: the protocol has no \
                          retransmissions, so this documents the collapse mode",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.05 },
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "delay-jitter",
            description: "25% of messages delayed up to 3 rounds on a line",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Jitter {
                delay_prob: 0.25,
                max_delay: 3,
            },
            // Deliberately the clean budget: a jitter stall is *protocol*-terminated
            // (nodes flag done on schedule and the run stops, stranding delayed
            // messages), so no round-budget multiplier can buy the lost messages
            // back — this scenario documents that collapse mode. Budgets help where
            // completion is *pending* (late joiners keeping `all_done` false), as in
            // `join-churn` below.
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "mid-build-crash-wave",
            description: "10% of nodes crash a third of the way into construction",
            family: GraphFamily::RandomRegular { degree: 4 },
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::CrashWave {
                fraction: 0.10,
                at: 0.33,
            },
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "join-churn",
            description: "15% of nodes join late (bounded knowledge), staggered over \
                          the first 40% of construction",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::JoinChurn {
                fraction: 0.15,
                spread: 0.40,
            },
            round_budget: RoundBudget::percent(150),
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "partition-heal",
            description: "The id halves are partitioned from 20% to 50% of \
                          construction, then heal",
            family: GraphFamily::TwoCyclesBridged,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::PartitionHeal {
                from: 0.20,
                heal: 0.50,
            },
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "tight-caps",
            description: "Clean network but only 3/4 of the standard NCC0 capacity",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Tight,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        },
        // ---- Reliable-transport twins -------------------------------------
        // Each twin keeps its baseline's graph, size, capacity and fault load and
        // adds only the `overlay-transport` reliability layer (plus the round
        // budget the retry round-trips legitimately need), so the report pair
        // reads as paper-vs-fault-tolerant-variant: the rounds, acks and
        // retransmissions in the twin are the price of the reliability that the
        // baseline's failures show is missing.
        Scenario {
            name: "lossy-ncc0-reliable",
            description: "Twin of lossy-ncc0 (0.2% loss) over the reliable \
                          transport: retransmission heals the binarization seeds \
                          the baseline loses",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.002 },
            // Retry chains cost a constant number of rounds per phase (each
            // retransmit+ack round-trip is a fixed-length exchange), so the twins
            // declare flat slack rather than a multiplier — a percent budget can
            // never give the 1-round binarize phase meaningful retry headroom.
            round_budget: RoundBudget::STANDARD.with_slack(12),
            transport: Some(TransportConfig::default()),
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "lossy-ncc0-heavy-reliable",
            description: "Twin of lossy-ncc0-heavy (5% loss) over the reliable \
                          transport: the baseline collapses on every seed",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.05 },
            round_budget: RoundBudget::STANDARD.with_slack(12),
            transport: Some(TransportConfig::default()),
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "delay-jitter-reliable",
            description: "Twin of delay-jitter over the reliable transport: \
                          unacknowledged sends keep the run alive until delayed \
                          messages land, at the cost of spurious retransmissions",
            family: GraphFamily::Line,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Jitter {
                delay_prob: 0.25,
                max_delay: 3,
            },
            round_budget: RoundBudget::STANDARD.with_slack(12),
            transport: Some(TransportConfig::default()),
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "partition-heal-reliable",
            description: "Twin of partition-heal over the reliable transport: \
                          cross-cut messages are retried until the partition \
                          heals instead of being lost",
            family: GraphFamily::TwoCyclesBridged,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::PartitionHeal {
                from: 0.20,
                heal: 0.50,
            },
            round_budget: RoundBudget::STANDARD.with_slack(12),
            transport: Some(TransportConfig::default()),
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "crash-ncc0-reliable",
            description: "Twin of mid-build-crash-wave over the reliable \
                          transport with a small give-up budget \
                          (max_retransmits = 4): messages to crashed peers are \
                          abandoned after a few retries instead of burning the \
                          full retransmission budget — this documents the cost \
                          of reliability against faults it cannot heal",
            family: GraphFamily::RandomRegular { degree: 4 },
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::CrashWave {
                fraction: 0.10,
                at: 0.33,
            },
            round_budget: RoundBudget::STANDARD.with_slack(12),
            transport: Some(TransportConfig::default().with_max_retransmits(4)),
            phases: PhaseOverrides::none(),
        },
        Scenario {
            name: "join-churn-reliable",
            description: "Twin of join-churn over the reliable transport: \
                          messages to dormant joiners are retried until they \
                          activate, but the schedule-driven evolutions have \
                          moved on by then, so late deliveries are stale — \
                          coverage barely improves and the twin documents that \
                          retransmission alone cannot rescue join churn",
            family: GraphFamily::Cycle,
            n: 128,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::JoinChurn {
                fraction: 0.15,
                spread: 0.40,
            },
            round_budget: RoundBudget::percent(150).with_slack(12),
            transport: Some(TransportConfig::default()),
            phases: PhaseOverrides::none(),
        },
    ]
}

/// On-demand larger-`n` scenarios for the sweep runner's `--full` flag.
///
/// These sweeps take minutes, not seconds, so they are *excluded* from the
/// committed `reports/` baselines and from `--check` (the runner writes them to
/// a `full/` subdirectory that stays untracked); they exist to confirm that the
/// `O(log n)` behavior — and the transport's overhead ratio — holds at sizes the
/// laptop-friendly registry cannot witness.
pub fn full_registry() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for &n in &[1024usize, 4096] {
        scenarios.push(Scenario {
            name: match n {
                1024 => "full-clean-line-1024",
                _ => "full-clean-line-4096",
            },
            description: "Large-n clean baseline (the paper's worst-case input)",
            family: GraphFamily::Line,
            n,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Clean,
            round_budget: RoundBudget::STANDARD,
            transport: None,
            phases: PhaseOverrides::none(),
        });
        scenarios.push(Scenario {
            name: match n {
                1024 => "full-lossy-reliable-1024",
                _ => "full-lossy-reliable-4096",
            },
            description: "Large-n 0.2% loss over the reliable transport",
            family: GraphFamily::Cycle,
            n,
            capacity: CapacityProfile::Standard,
            faults: FaultSpec::Lossy { drop_prob: 0.002 },
            round_budget: RoundBudget::STANDARD.with_slack(12),
            transport: Some(TransportConfig::default()),
            phases: PhaseOverrides::none(),
        });
    }
    scenarios
}

/// Looks a scenario up by its registry name.
pub fn find(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_at_least_six_unique_named_scenarios() {
        let scenarios = registry();
        assert!(scenarios.len() >= 6, "only {} scenarios", scenarios.len());
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "names must be unique");
        for s in &scenarios {
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{} is not kebab-case",
                s.name
            );
            assert!(!s.description.is_empty());
        }
    }

    #[test]
    fn find_round_trips() {
        assert_eq!(find("join-churn").unwrap().name, "join-churn");
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn reliable_twins_mirror_their_baselines() {
        for (twin, baseline) in [
            ("lossy-ncc0-reliable", "lossy-ncc0"),
            ("lossy-ncc0-heavy-reliable", "lossy-ncc0-heavy"),
            ("delay-jitter-reliable", "delay-jitter"),
            ("partition-heal-reliable", "partition-heal"),
            ("crash-ncc0-reliable", "mid-build-crash-wave"),
            ("join-churn-reliable", "join-churn"),
        ] {
            let twin = find(twin).expect("twin registered");
            let baseline = find(baseline).expect("baseline registered");
            // Same experiment, only the transport (and its round allowance) added:
            // the report pair isolates the cost and benefit of reliability.
            assert!(twin.transport.is_some() && baseline.transport.is_none());
            assert_eq!(twin.family, baseline.family);
            assert_eq!(twin.n, baseline.n);
            assert_eq!(twin.capacity, baseline.capacity);
            assert_eq!(twin.faults, baseline.faults);
        }
    }

    #[test]
    fn full_registry_is_large_n_and_does_not_collide() {
        let base: Vec<&str> = registry().iter().map(|s| s.name).collect();
        let full = full_registry();
        assert!(!full.is_empty());
        for s in &full {
            assert!(s.n >= 1024, "{} is not a large-n sweep", s.name);
            assert!(
                s.name.starts_with("full-"),
                "{} must be namespaced away from the committed baselines",
                s.name
            );
            assert!(!base.contains(&s.name));
        }
        let mut names: Vec<&str> = full.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len(), "full names must be unique");
    }

    #[test]
    fn every_registered_scenario_runs() {
        for s in registry() {
            let r = s.run(1);
            assert!(r.rounds > 0, "{} executed no rounds", s.name);
            assert!(r.delivered > 0, "{} delivered nothing", s.name);
        }
    }
}
