//! The first-class scenario registry: validated construction, indexed lookup,
//! tag/family/fault filtering, and the baseline↔twin pairing iterator.
//!
//! The built-in matrix ([`registry`]) holds the hand-authored baselines plus
//! every *derived* cell: the reliable-transport twins, the capacity and
//! phase-override variants, and (via [`full_registry`]) the on-demand large-`n`
//! reruns — all constructed through the variant axis API
//! ([`Scenario::reliable`], [`Scenario::at_n`], [`Scenario::with_capacity`],
//! [`Scenario::with_phases`]), so adding a matrix cell is one derivation line,
//! not a copy-pasted struct.

use crate::scenario::{
    CapacityProfile, FaultSpec, GraphFamily, Scenario, ServeSpec, TrafficSpec, VariantAxis,
};
use overlay_core::{PhaseId, PhaseOverrides, RoundBudget, TransportChoice};
use overlay_netsim::{CrashBurst, TransportConfig};
use overlay_traffic::{RoutingPolicy, Workload};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::OnceLock;

/// Why a [`Registry`] refused a scenario set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// A scenario name is empty, not kebab-case, or dash-delimited incorrectly.
    InvalidName(String),
    /// Two scenarios (or a scenario and an external baseline) share a name.
    DuplicateName(String),
    /// A scenario's `baseline` field names no scenario in this registry (or its
    /// external context).
    UnresolvedBaseline {
        /// The twin whose pairing is dangling.
        scenario: String,
        /// The baseline name that did not resolve.
        baseline: String,
    },
    /// `baseline` and `axis` must be set together: a pairing without a declared
    /// axis cannot be validated, and an axis without a baseline is meaningless.
    MissingAxis(String),
    /// A twin differs from its baseline somewhere other than its declared axis
    /// (or does not differ along the axis at all).
    AxisViolation {
        /// The offending twin.
        scenario: String,
        /// What the per-axis check found.
        problem: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::InvalidName(name) => {
                write!(f, "scenario name {name:?} is not kebab-case")
            }
            RegistryError::DuplicateName(name) => {
                write!(f, "duplicate scenario name {name:?}")
            }
            RegistryError::UnresolvedBaseline { scenario, baseline } => {
                write!(f, "{scenario}: baseline {baseline:?} is not registered")
            }
            RegistryError::MissingAxis(name) => {
                write!(f, "{name}: baseline and axis must be declared together")
            }
            RegistryError::AxisViolation { scenario, problem } => {
                write!(f, "{scenario}: {problem}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A validated, indexed set of scenarios.
///
/// Construction ([`Registry::new`]) checks that every name is unique kebab-case,
/// that every [`Scenario::baseline`] reference resolves, and that every twin
/// differs from its baseline *only along its declared axis* — so a registry that
/// builds at all is guaranteed internally consistent, and lookups
/// ([`Registry::find`]) are indexed instead of rescanning (the old free
/// function rebuilt the whole scenario list per lookup).
#[derive(Clone, Debug)]
pub struct Registry {
    scenarios: Vec<Scenario>,
    index: HashMap<String, usize>,
}

impl Registry {
    /// Builds and validates a registry whose baseline references must all
    /// resolve within `scenarios` itself.
    ///
    /// # Errors
    ///
    /// Returns the first [`RegistryError`] found, in scenario order.
    pub fn new(scenarios: Vec<Scenario>) -> Result<Self, RegistryError> {
        Self::build(scenarios, None)
    }

    /// Builds a registry whose baseline references may also resolve in
    /// `external` — how [`full_registry`]'s large-`n` derivations point back at
    /// the committed laptop-sized cells without duplicating them.
    ///
    /// # Errors
    ///
    /// Returns the first [`RegistryError`] found; names must be unique across
    /// `scenarios` *and* `external` combined.
    pub fn with_external_baselines(
        scenarios: Vec<Scenario>,
        external: &Registry,
    ) -> Result<Self, RegistryError> {
        Self::build(scenarios, Some(external))
    }

    fn build(scenarios: Vec<Scenario>, external: Option<&Registry>) -> Result<Self, RegistryError> {
        let mut index = HashMap::with_capacity(scenarios.len());
        for (i, s) in scenarios.iter().enumerate() {
            if !is_kebab_case(&s.name) {
                return Err(RegistryError::InvalidName(s.name.clone()));
            }
            if index.insert(s.name.clone(), i).is_some()
                || external.is_some_and(|e| e.index.contains_key(&s.name))
            {
                return Err(RegistryError::DuplicateName(s.name.clone()));
            }
        }
        let registry = Registry { scenarios, index };
        for twin in &registry.scenarios {
            let (baseline, axis) = match (&twin.baseline, twin.axis) {
                (None, None) => continue,
                (Some(b), Some(axis)) => (b, axis),
                _ => return Err(RegistryError::MissingAxis(twin.name.clone())),
            };
            let base = registry
                .find(baseline)
                .or_else(|| external.and_then(|e| e.find(baseline)))
                .ok_or_else(|| RegistryError::UnresolvedBaseline {
                    scenario: twin.name.clone(),
                    baseline: baseline.clone(),
                })?;
            if let Err(problem) = validate_axis(base, twin, axis) {
                return Err(RegistryError::AxisViolation {
                    scenario: twin.name.clone(),
                    problem,
                });
            }
        }
        Ok(registry)
    }

    /// Indexed lookup by registry name.
    pub fn find(&self, name: &str) -> Option<&Scenario> {
        self.index.get(name).map(|&i| &self.scenarios[i])
    }

    /// The scenarios, in registration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Iterates the scenarios in registration order.
    pub fn iter(&self) -> std::slice::Iter<'_, Scenario> {
        self.scenarios.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when no scenario is registered.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.scenarios.iter().map(|s| s.name.as_str())
    }

    /// Scenarios whose [`Scenario::effective_tags`] contain `tag` — explicit
    /// annotations and derived facets (family/fault/capacity labels,
    /// `reliable`/`bare`, `axis:<label>`, `derived`) all match.
    pub fn filter_by_tag(&self, tag: &str) -> Vec<&Scenario> {
        self.scenarios
            .iter()
            .filter(|s| s.effective_tags().iter().any(|t| t == tag))
            .collect()
    }

    /// Scenarios on the given graph family.
    pub fn filter_by_family(&self, family: GraphFamily) -> Vec<&Scenario> {
        self.scenarios
            .iter()
            .filter(|s| s.family == family)
            .collect()
    }

    /// Scenarios whose fault load carries the given [`FaultSpec::label`]
    /// (`"clean"`, `"lossy"`, `"crash-wave"`, ...).
    pub fn filter_by_fault(&self, label: &str) -> Vec<&Scenario> {
        self.scenarios
            .iter()
            .filter(|s| s.faults.label() == label)
            .collect()
    }

    /// Iterates the `(baseline, twin)` couples whose members are *both* in this
    /// registry, in twin registration order — the input to baseline-vs-twin
    /// delta tables (`sweep_runner --compare`).
    pub fn pairs(&self) -> impl Iterator<Item = (&Scenario, &Scenario)> {
        self.scenarios.iter().filter_map(|twin| {
            let base = self.find(twin.baseline.as_deref()?)?;
            Some((base, twin))
        })
    }
}

impl<'a> IntoIterator for &'a Registry {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;

    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}

fn is_kebab_case(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('-')
        && !name.ends_with('-')
        && !name.contains("--")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
}

/// Checks that `twin` differs from `base` only along `axis`.
fn validate_axis(base: &Scenario, twin: &Scenario, axis: VariantAxis) -> Result<(), String> {
    let mut problems = Vec::new();
    let mut require = |ok: bool, what: &str| {
        if !ok {
            problems.push(what.to_string());
        }
    };
    let same_family = twin.family == base.family;
    let same_n = twin.n == base.n;
    let same_capacity = twin.capacity == base.capacity;
    let same_faults = twin.faults == base.faults;
    let same_serve = twin.serve == base.serve;
    let same_transport = twin.transport == base.transport;
    let same_phases = twin.phases == base.phases;
    let same_percent = twin.round_budget.as_percent() == base.round_budget.as_percent();
    let same_budget = twin.round_budget == base.round_budget;
    let same_traffic = twin.traffic == base.traffic;
    match axis {
        VariantAxis::Transport => {
            require(same_family, "transport twin changed the graph family");
            require(same_n, "transport twin changed n");
            require(same_capacity, "transport twin changed the capacity profile");
            require(same_faults, "transport twin changed the fault load");
            require(same_serve, "transport twin changed the serve spec");
            require(same_traffic, "transport twin changed the traffic spec");
            require(same_phases, "transport twin changed the phase overrides");
            require(
                same_percent,
                "transport twin changed the budget multiplier (only flat slack is the axis's)",
            );
            require(
                base.transport.is_none(),
                "baseline of a transport twin already has a transport",
            );
            require(twin.transport.is_some(), "transport twin has no transport");
        }
        VariantAxis::Size => {
            require(same_family, "size twin changed the graph family");
            require(same_capacity, "size twin changed the capacity profile");
            require(same_faults, "size twin changed the fault load");
            require(same_serve, "size twin changed the serve spec");
            require(same_traffic, "size twin changed the traffic spec");
            require(same_transport, "size twin changed the transport");
            require(same_phases, "size twin changed the phase overrides");
            require(same_budget, "size twin changed the round budget");
            require(!same_n, "size twin does not change n");
        }
        VariantAxis::Capacity => {
            require(same_family, "capacity twin changed the graph family");
            require(same_n, "capacity twin changed n");
            require(same_faults, "capacity twin changed the fault load");
            require(same_serve, "capacity twin changed the serve spec");
            require(same_traffic, "capacity twin changed the traffic spec");
            require(same_transport, "capacity twin changed the transport");
            require(same_phases, "capacity twin changed the phase overrides");
            require(same_budget, "capacity twin changed the round budget");
            require(
                !same_capacity,
                "capacity twin does not change the capacity profile",
            );
        }
        VariantAxis::Phases => {
            require(same_family, "phase twin changed the graph family");
            require(same_n, "phase twin changed n");
            require(same_capacity, "phase twin changed the capacity profile");
            require(same_faults, "phase twin changed the fault load");
            require(same_serve, "phase twin changed the serve spec");
            require(same_traffic, "phase twin changed the traffic spec");
            require(
                same_transport,
                "phase twin changed the scenario-wide transport",
            );
            require(
                same_budget,
                "phase twin changed the scenario-wide round budget",
            );
            require(!twin.phases.is_empty(), "phase twin declares no overrides");
            require(
                !same_phases,
                "phase twin does not change the phase overrides",
            );
        }
        VariantAxis::Maintenance => {
            require(same_family, "maintenance twin changed the graph family");
            require(same_n, "maintenance twin changed n");
            require(
                same_capacity,
                "maintenance twin changed the capacity profile",
            );
            require(same_faults, "maintenance twin changed the fault load");
            require(same_traffic, "maintenance twin changed the traffic spec");
            require(same_transport, "maintenance twin changed the transport");
            require(same_phases, "maintenance twin changed the phase overrides");
            require(same_budget, "maintenance twin changed the round budget");
            match (base.serve, twin.serve) {
                (Some(b), Some(t)) => {
                    require(
                        !b.reinvite && t.reinvite,
                        "maintenance twin must switch re-invitation from off to on",
                    );
                    require(
                        ServeSpec {
                            reinvite: false,
                            ..t
                        } == b,
                        "maintenance twin changed the serve spec beyond re-invitation",
                    );
                }
                _ => require(false, "maintenance twin needs serve specs on both sides"),
            }
        }
        VariantAxis::Traffic => {
            require(same_family, "traffic twin changed the graph family");
            require(same_n, "traffic twin changed n");
            require(same_capacity, "traffic twin changed the capacity profile");
            require(same_faults, "traffic twin changed the fault load");
            require(same_serve, "traffic twin changed the serve spec");
            require(same_transport, "traffic twin changed the transport");
            require(same_phases, "traffic twin changed the phase overrides");
            require(same_budget, "traffic twin changed the round budget");
            require(
                base.traffic.is_some() && twin.traffic.is_some(),
                "traffic twin needs traffic specs on both sides",
            );
            require(
                !same_traffic,
                "traffic twin does not change the traffic spec",
            );
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "axis {} violated: {}",
            axis.label(),
            problems.join("; ")
        ))
    }
}

/// The hand-authored baselines: the paper's clean settings plus one scenario per
/// fault family. Sizes are laptop-friendly so the whole registry sweeps in
/// seconds; the specs are fractions of `n` and of the round schedule, so scaling
/// a scenario up is just a bigger `n` (see [`Scenario::at_n`]).
fn baselines() -> Vec<Scenario> {
    vec![
        Scenario::new(
            "clean-line",
            "Baseline: the paper's worst-case input (a line), no faults",
            GraphFamily::Line,
            128,
        ),
        Scenario::new(
            "clean-expander",
            "Baseline: an already-good random 4-regular graph, no faults",
            GraphFamily::RandomRegular { degree: 4 },
            128,
        ),
        Scenario::new(
            "clean-tree",
            "Baseline: a complete binary tree (logarithmic diameter, but highly \
             asymmetric degrees at the root), no faults",
            GraphFamily::BinaryTree,
            128,
        )
        .with_tag("matrix"),
        Scenario::new(
            "lossy-ncc0",
            "0.2% independent message loss on a cycle — enough to kill some seeds \
             (the one-round finalize phase has no redundancy)",
            GraphFamily::Cycle,
            128,
        )
        .with_faults(FaultSpec::Lossy { drop_prob: 0.002 }),
        Scenario::new(
            "lossy-ncc0-heavy",
            "5% independent message loss on a cycle: the protocol has no \
             retransmissions, so this documents the collapse mode",
            GraphFamily::Cycle,
            128,
        )
        .with_faults(FaultSpec::Lossy { drop_prob: 0.05 }),
        // Deliberately the clean budget: a jitter stall is *protocol*-terminated
        // (nodes flag done on schedule and the run stops, stranding delayed
        // messages), so no round-budget multiplier can buy the lost messages
        // back — this scenario documents that collapse mode. Budgets help where
        // completion is *pending* (late joiners keeping `all_done` false), as in
        // `join-churn` below.
        Scenario::new(
            "delay-jitter",
            "25% of messages delayed up to 3 rounds on a line",
            GraphFamily::Line,
            128,
        )
        .with_faults(FaultSpec::Jitter {
            delay_prob: 0.25,
            max_delay: 3,
        }),
        Scenario::new(
            "mid-build-crash-wave",
            "10% of nodes crash a third of the way into construction",
            GraphFamily::RandomRegular { degree: 4 },
            128,
        )
        .with_faults(FaultSpec::CrashWave {
            fraction: 0.10,
            at: 0.33,
        }),
        Scenario::new(
            "join-churn",
            "15% of nodes join late (bounded knowledge), staggered over the first \
             40% of construction",
            GraphFamily::Cycle,
            128,
        )
        .with_faults(FaultSpec::JoinChurn {
            fraction: 0.15,
            spread: 0.40,
        })
        .with_budget(RoundBudget::percent(150)),
        Scenario::new(
            "partition-heal",
            "The id halves are partitioned from 20% to 50% of construction, then heal",
            GraphFamily::TwoCyclesBridged,
            128,
        )
        .with_faults(FaultSpec::PartitionHeal {
            from: 0.20,
            heal: 0.50,
        }),
        Scenario::new(
            "tight-caps",
            "Clean network but only 3/4 of the standard NCC0 capacity",
            GraphFamily::Line,
            128,
        )
        .with_capacity_profile(CapacityProfile::Tight),
        Scenario::new(
            "crash-then-loss",
            "Compound stressor: 10% of nodes crash a third of the way in and the \
             surviving network drops 2% of messages from that round on — \
             membership loss while the network degrades underneath it",
            GraphFamily::RandomRegular { degree: 4 },
            128,
        )
        .with_faults(FaultSpec::CrashThenLoss {
            fraction: 0.10,
            at: 0.33,
            drop_prob: 0.02,
        })
        .with_tag("matrix")
        .with_tag("compound"),
        // ---- The serve-* family: overlay-as-a-service baselines -------
        // Construction is the prologue; the experiment is the 2000-3000
        // rounds of continuous maintenance that follow. Sizes are small
        // (n = 48) because the population *grows* over the horizon.
        Scenario::new(
            "serve-churn",
            "Serve baseline: continuous joins (0.2/round) for 3000 rounds with \
             re-invitation OFF — arrivals pile up outside the overlay forever \
             and sustained coverage collapses, the failure mode the join-churn \
             construction reports first exposed",
            GraphFamily::Cycle,
            48,
        )
        .with_serve(ServeSpec::joins(120, 25, 0.2)),
        Scenario::new(
            "serve-loss",
            "Serve baseline: 2% message loss — during construction (which it \
             usually kills bare) and on every service invitation — with \
             continuous joins (0.1/round) for 2000 rounds; re-invitation is on \
             but bare, one invitation attempt per straggler per epoch",
            GraphFamily::Cycle,
            48,
        )
        .with_faults(FaultSpec::Lossy { drop_prob: 0.02 })
        .with_serve(ServeSpec {
            reinvite: true,
            ..ServeSpec::joins(80, 25, 0.1)
        }),
        Scenario::new(
            "serve-crash",
            "Serve baseline: background crash churn (0.04/round) plus a \
             correlated 10% crash burst every 500 rounds, replenished by joins \
             (0.08/round) over 2500 rounds — measures rounds-to-repair after \
             each burst",
            GraphFamily::RandomRegular { degree: 4 },
            48,
        )
        .with_serve(ServeSpec {
            reinvite: true,
            crash_rate: 0.04,
            burst: Some(CrashBurst {
                every_rounds: 500,
                fraction: 0.10,
            }),
            ..ServeSpec::joins(100, 25, 0.08)
        }),
        // ---- The traffic-* family: workloads over the finished overlay ----
        // Construction is the prologue; the experiment is the request
        // workload the finished overlay carries (see `overlay-traffic`).
        // Sizes are modest (n = 64) because the router phase simulates
        // every request hop-by-hop over the constructed edges.
        Scenario::new(
            "traffic-uniform",
            "Traffic baseline: uniform all-to-all requests greedily routed \
             over the finished clean expander — the p99 hop count witnesses \
             the O(log n) diameter of the constructed overlay",
            GraphFamily::RandomRegular { degree: 4 },
            64,
        )
        .with_traffic(TrafficSpec::new(Workload::Uniform)),
        Scenario::new(
            "traffic-zipf-lossy",
            "Zipf(1.1)-skewed requests with 2% message loss scoped to the \
             traffic phase (construction stays clean): documents how many \
             requests a bare overlay sheds in flight — its -reliable twin \
             buys the deliveries back with retransmission latency",
            GraphFamily::RandomRegular { degree: 4 },
            64,
        )
        .with_traffic(TrafficSpec {
            loss: 0.02,
            ..TrafficSpec::new(Workload::Zipf { exponent: 1.1 })
        }),
        Scenario::new(
            "traffic-serve-churn",
            "Traffic-during-serve baseline: a uniform request wave rides the \
             overlay after every maintenance epoch while continuous joins \
             (0.1/round) churn the membership, with re-invitation on — \
             measures sustained delivered fraction across churn+repair epochs",
            GraphFamily::Cycle,
            48,
        )
        .with_serve(ServeSpec {
            reinvite: true,
            ..ServeSpec::joins(30, 25, 0.1)
        })
        .with_traffic(TrafficSpec::new(Workload::Uniform)),
    ]
}

/// The built-in scenario matrix: hand-authored baselines first, then every
/// derived cell — reliable-transport twins, capacity and phase-override
/// variants — constructed through the variant axis API with pairing metadata
/// intact.
///
/// The result is cached: repeated calls (and [`find`] lookups) share one
/// validated instance instead of rebuilding the scenario list.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let base = Registry::new(baselines()).expect("hand-authored baselines are valid");
        let s = |name: &str| base.find(name).expect("baseline registered").clone();

        let mut all = baselines();
        // ---- Reliable-transport twins ---------------------------------
        // Each twin keeps its baseline's graph, size, capacity and fault load
        // and adds only the `overlay-transport` reliability layer plus flat
        // retry slack (a retransmit+ack round-trip costs a *constant* number of
        // rounds per phase, which a percent multiplier cannot express for the
        // 1-round binarize phase), so the report pair reads as
        // paper-vs-fault-tolerant-variant. The bespoke `describe` texts predate
        // the derivation API and are kept verbatim so the committed report
        // headers stay byte-identical.
        all.push(
            s("lossy-ncc0")
                .reliable(TransportConfig::default(), 12)
                .describe(
                    "Twin of lossy-ncc0 (0.2% loss) over the reliable transport: \
                     retransmission heals the binarization seeds the baseline loses",
                ),
        );
        all.push(
            s("lossy-ncc0-heavy")
                .reliable(TransportConfig::default(), 12)
                .describe(
                    "Twin of lossy-ncc0-heavy (5% loss) over the reliable \
                     transport: the baseline collapses on every seed",
                ),
        );
        all.push(
            s("delay-jitter")
                .reliable(TransportConfig::default(), 12)
                .describe(
                    "Twin of delay-jitter over the reliable transport: \
                     unacknowledged sends keep the run alive until delayed \
                     messages land, at the cost of spurious retransmissions",
                ),
        );
        all.push(
            s("partition-heal")
                .reliable(TransportConfig::default(), 12)
                .describe(
                    "Twin of partition-heal over the reliable transport: \
                     cross-cut messages are retried until the partition heals \
                     instead of being lost",
                ),
        );
        // `crash-ncc0-reliable` predates the mechanical `<base>-reliable`
        // naming; the historical name is pinned so its committed report (and
        // every cross-reference to it) survives the derivation.
        all.push(
            s("mid-build-crash-wave")
                .reliable(TransportConfig::default().with_max_retransmits(4), 12)
                .renamed("crash-ncc0-reliable")
                .describe(
                    "Twin of mid-build-crash-wave over the reliable transport \
                     with a small give-up budget (max_retransmits = 4): messages \
                     to crashed peers are abandoned after a few retries instead \
                     of burning the full retransmission budget — this documents \
                     the cost of reliability against faults it cannot heal",
                ),
        );
        all.push(
            s("join-churn")
                .reliable(TransportConfig::default(), 12)
                .describe(
                    "Twin of join-churn over the reliable transport: messages to \
                     dormant joiners are retried until they activate, but the \
                     schedule-driven evolutions have moved on by then, so late \
                     deliveries are stale — coverage barely improves and the \
                     twin documents that retransmission alone cannot rescue join \
                     churn",
                ),
        );
        // ---- Matrix cells beyond the historical set -------------------
        // Capacity pressure is itself a message-loss mechanism (the receive cap
        // drops overflow), so the transport twin of `tight-caps` measures
        // whether retransmission heals *congestion* loss the way it heals
        // random loss.
        all.push(
            s("tight-caps")
                .reliable(TransportConfig::default(), 12)
                .with_tag("matrix"),
        );
        // Generous headroom under loss isolates the fault effect from capacity
        // effects: any seed this cell loses is lost to *loss*, not caps.
        all.push(
            s("lossy-ncc0")
                .with_capacity(CapacityProfile::Generous)
                .with_tag("matrix"),
        );
        // Reliability scoped to the one-round binarize phase only: the
        // baseline's failure mode is lost binarization seeds, so this cell buys
        // back exactly those at a fraction of full-pipeline ack volume.
        all.push(
            s("lossy-ncc0")
                .with_phases(
                    PhaseOverrides::none()
                        .with_budget(PhaseId::Binarize, RoundBudget::STANDARD.with_slack(12))
                        .with_transport(
                            PhaseId::Binarize,
                            TransportChoice::Reliable(TransportConfig::default()),
                        ),
                )
                .with_tag("matrix"),
        );
        // The compound stressor's twin: retransmission fights the post-wave
        // loss while the give-up budget stops it from burning rounds on the
        // crashed peers.
        all.push(
            s("crash-then-loss")
                .reliable(TransportConfig::default().with_max_retransmits(4), 12)
                .with_tag("matrix"),
        );
        // The per-peer failure detector against the same crash wave that
        // `crash-ncc0-reliable` fights per-message: the first exhausted
        // payload silences the whole dead peer, so the ~38k-retransmit burn
        // documented in that cell's baseline collapses to one give-up per
        // crashed peer. Named next to its historical sibling.
        all.push(
            s("mid-build-crash-wave")
                .reliable(
                    TransportConfig::default()
                        .with_max_retransmits(4)
                        .with_failure_detector(true),
                    12,
                )
                .renamed("crash-ncc0-detector")
                .describe(
                    "Twin of mid-build-crash-wave over the reliable transport \
                     with the per-peer failure detector on: the first payload \
                     to exhaust its budget marks the whole peer dead, so a \
                     crashed peer costs one give-up instead of one per message \
                     — compare its retransmit total against crash-ncc0-reliable",
                ),
        );
        // ---- Serve twins ----------------------------------------------
        // The maintenance subsystem's headline pair: the same 3000-round join
        // storm with re-invitation switched on. Construction-style transport
        // redelivery cannot rescue stragglers (the join-churn pair proved it:
        // coverage 15.7% -> 16.2%); a protocol-level re-invitation into the
        // *current* evolution does.
        all.push(s("serve-churn").with_reinvitation());
        // The reliable twin of the lossy serve cell heals construction *and*
        // retries invitations (invite_retries = max_retransmits), so the pair
        // reads as bare-vs-reliable for a continuously-serving overlay.
        all.push(s("serve-loss").reliable(TransportConfig::default(), 12));
        // The crash-serving twin is a control: a clean network gains nothing
        // from reliability, so the serve metrics should match the baseline's
        // while the ack overhead appears in the message columns.
        all.push(s("serve-crash").reliable(TransportConfig::default(), 12));
        // ---- Traffic twins --------------------------------------------
        // The routing-policy pair: the same uniform workload over the
        // binarized tree instead of the expander. Tree routing funnels
        // every cross-subtree request through the root, so its p99 hops
        // and max edge load bound what expander routing buys.
        all.push(s("traffic-uniform").with_traffic_axis(
            "tree",
            TrafficSpec {
                policy: RoutingPolicy::Tree,
                ..TrafficSpec::new(Workload::Uniform)
            },
        ));
        // Workload-shape twins live in the flat traffic-* namespace. The
        // hotspot cell is the congestion witness: every request targets one
        // seeded focus node, so the constant-degree overlay must carry the
        // whole workload over the focus's few incident edges.
        all.push(
            s("traffic-uniform")
                .with_traffic_axis("hotspot", TrafficSpec::new(Workload::Hotspot))
                .renamed("traffic-hotspot")
                .describe(
                    "Twin of traffic-uniform with every request aimed at one \
                     seeded focus node: the constant-degree overlay funnels \
                     the whole workload through the focus's few incident \
                     edges, so max edge load and TTL expiry document the \
                     congestion collapse mode",
                ),
        );
        all.push(
            s("traffic-uniform")
                .with_traffic_axis(
                    "flash",
                    TrafficSpec::new(Workload::FlashCrowd {
                        burst_at: 4,
                        burst_len: 2,
                    }),
                )
                .renamed("traffic-flash")
                .describe(
                    "Twin of traffic-uniform with the whole request volume \
                     compressed into a 2-round flash crowd: same total load, \
                     bursty arrival — queue depth absorbs the spike and the \
                     latency tail pays for it",
                ),
        );
        // The lossy traffic cell's transport twin: retransmission recovers
        // the 2% per-hop losses, trading delivered % up for latency.
        all.push(s("traffic-zipf-lossy").reliable(TransportConfig::default(), 12));
        // ---- Automatic lossy × capacity crossing ----------------------
        // Capacity pressure is itself a message-loss mechanism (the receive
        // cap sheds overflow), so every hand-authored lossy construction
        // baseline is crossed with every non-standard capacity profile
        // mechanically instead of hand-listing cells. A hand-authored cell
        // that already occupies a crossing name (lossy-ncc0-generous, kept
        // verbatim above for its committed report header) wins the slot.
        let taken: BTreeSet<String> = all.iter().map(|sc| sc.name.clone()).collect();
        for b in baselines() {
            let lossy = matches!(
                b.faults,
                FaultSpec::Lossy { .. } | FaultSpec::CrashThenLoss { .. }
            );
            if !lossy || b.serve.is_some() || b.traffic.is_some() {
                continue;
            }
            for profile in [CapacityProfile::Tight, CapacityProfile::Generous] {
                let twin = b.with_capacity(profile).with_tag("matrix");
                if !taken.contains(&twin.name) {
                    all.push(twin);
                }
            }
        }
        Registry::new(all).expect("built-in scenario matrix is valid")
    })
}

/// On-demand larger-`n` derivations for the sweep runner's `--full` flag.
///
/// These sweeps take minutes, not seconds, so they are *excluded* from the
/// committed `reports/` baselines and from `--check` (the runner writes them to
/// a `full/` subdirectory that stays untracked); they exist to confirm that the
/// `O(log n)` behavior — and the transport's overhead ratio — holds at sizes the
/// laptop-friendly registry cannot witness. Every cell is derived via
/// [`Scenario::at_n`], so its `full-<base>-<n>` name is a pure function of the
/// baseline and the size — a third size can never be mislabeled.
pub fn full_registry() -> &'static Registry {
    static FULL: OnceLock<Registry> = OnceLock::new();
    FULL.get_or_init(|| {
        let base = registry();
        let mut all = Vec::new();
        for &n in &[1024usize, 4096, 16384, 65536] {
            for name in ["clean-line", "lossy-ncc0-reliable"] {
                all.push(base.find(name).expect("baseline registered").at_n(n));
            }
        }
        Registry::with_external_baselines(all, base).expect("full registry is valid")
    })
}

/// Looks a scenario up by its registry name (committed matrix only; the sweep
/// runner additionally consults [`full_registry`] for `full-*` names).
pub fn find(name: &str) -> Option<Scenario> {
    registry().find(name).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_committed_matrix() {
        let reg = registry();
        assert!(reg.len() >= 15, "only {} scenarios", reg.len());
        for s in reg {
            assert!(is_kebab_case(&s.name), "{} is not kebab-case", s.name);
            assert!(!s.description.is_empty());
        }
        // The historical cells and the new matrix cells are all present.
        for name in [
            "clean-line",
            "clean-tree",
            "lossy-ncc0-reliable",
            "crash-ncc0-reliable",
            "tight-caps-reliable",
            "lossy-ncc0-generous",
            "lossy-ncc0-binarize-reliable",
            "crash-then-loss",
            "crash-then-loss-reliable",
            "traffic-uniform",
            "traffic-uniform-tree",
            "traffic-hotspot",
            "traffic-flash",
            "traffic-zipf-lossy",
            "traffic-zipf-lossy-reliable",
            "traffic-serve-churn",
        ] {
            assert!(reg.find(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn lossy_capacity_crossing_is_complete_and_respects_hand_authored_cells() {
        // Every hand-authored lossy construction baseline must have both
        // capacity crossings, derived or hand-authored — the mechanical loop
        // keeps the matrix complete without hand-listing cells.
        let reg = registry();
        for base in ["lossy-ncc0", "lossy-ncc0-heavy", "crash-then-loss"] {
            for profile in ["tight", "generous"] {
                let name = format!("{base}-{profile}");
                let twin = reg.find(&name).unwrap_or_else(|| panic!("{name} missing"));
                assert_eq!(twin.baseline.as_deref(), Some(base));
                assert_eq!(twin.axis, Some(VariantAxis::Capacity));
            }
        }
        // The hand-authored generous cell won its slot: exactly one entry.
        let count = reg
            .into_iter()
            .filter(|sc| sc.name == "lossy-ncc0-generous")
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn find_round_trips_and_is_indexed() {
        assert_eq!(find("join-churn").unwrap().name, "join-churn");
        assert!(find("no-such-scenario").is_none());
        // The cached registry hands out the same instance every call.
        assert!(std::ptr::eq(registry(), registry()));
    }

    #[test]
    fn every_baseline_reference_resolves_and_mirrors_its_axis() {
        // Registry construction already validates this; the loop documents the
        // invariant independently of `Registry::build`'s implementation.
        let reg = registry();
        let mut pair_count = 0;
        for twin in reg {
            let Some(baseline) = &twin.baseline else {
                assert!(twin.axis.is_none());
                continue;
            };
            let base = reg.find(baseline).expect("resolves");
            validate_axis(base, twin, twin.axis.expect("axis declared"))
                .unwrap_or_else(|e| panic!("{}: {e}", twin.name));
            pair_count += 1;
        }
        assert!(pair_count >= 10, "only {pair_count} derived cells");
        assert_eq!(reg.pairs().count(), pair_count);
    }

    #[test]
    fn pairs_iterates_baseline_twin_couples() {
        let reg = registry();
        let pair = reg
            .pairs()
            .find(|(_, t)| t.name == "lossy-ncc0-reliable")
            .expect("lossy pair present");
        assert_eq!(pair.0.name, "lossy-ncc0");
        assert!(pair.0.transport.is_none() && pair.1.transport.is_some());
    }

    #[test]
    fn filters_cover_tags_families_and_faults() {
        let reg = registry();
        assert!(!reg.filter_by_tag("matrix").is_empty());
        let reliable = reg.filter_by_tag("reliable");
        assert!(reliable.iter().all(|s| s.uses_reliable_transport()));
        // Phase-scoped reliability counts as reliable (and is marked as scoped),
        // so a "sweep everything reliable" filter cannot silently miss it.
        assert!(reliable
            .iter()
            .any(|s| s.name == "lossy-ncc0-binarize-reliable"));
        assert_eq!(
            reg.filter_by_tag("phase-reliable")
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            vec!["lossy-ncc0-binarize-reliable"],
        );
        assert!(!reg.filter_by_family(GraphFamily::BinaryTree).is_empty());
        assert_eq!(
            reg.filter_by_fault("crash-then-loss")
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            vec![
                "crash-then-loss",
                "crash-then-loss-reliable",
                "crash-then-loss-tight",
                "crash-then-loss-generous",
            ],
        );
    }

    #[test]
    fn validation_rejects_duplicates_bad_names_and_dangling_baselines() {
        let s = |name: &str| Scenario::new(name, "d", GraphFamily::Line, 16);
        assert_eq!(
            Registry::new(vec![s("a"), s("a")]).unwrap_err(),
            RegistryError::DuplicateName("a".into())
        );
        assert_eq!(
            Registry::new(vec![s("Bad_Name")]).unwrap_err(),
            RegistryError::InvalidName("Bad_Name".into())
        );
        let dangling = s("base").reliable(TransportConfig::default(), 4);
        assert_eq!(
            Registry::new(vec![dangling]).unwrap_err(),
            RegistryError::UnresolvedBaseline {
                scenario: "base-reliable".into(),
                baseline: "base".into(),
            }
        );
        let mut half_pair = s("half");
        half_pair.baseline = Some("base".into());
        assert_eq!(
            Registry::new(vec![s("base"), half_pair]).unwrap_err(),
            RegistryError::MissingAxis("half".into())
        );
    }

    #[test]
    fn validation_rejects_off_axis_drift() {
        let base = Scenario::new("base", "d", GraphFamily::Line, 16);
        // A "transport twin" that also changed the graph family must be refused.
        let mut twin = base.reliable(TransportConfig::default(), 4);
        twin.family = GraphFamily::Cycle;
        match Registry::new(vec![base.clone(), twin]).unwrap_err() {
            RegistryError::AxisViolation { scenario, problem } => {
                assert_eq!(scenario, "base-reliable");
                assert!(problem.contains("graph family"), "{problem}");
            }
            other => panic!("expected AxisViolation, got {other:?}"),
        }
        // A size twin that does not actually change n is refused too.
        let mut same_n = base.at_n(1024);
        same_n.n = base.n;
        assert!(matches!(
            Registry::new(vec![base, same_n]).unwrap_err(),
            RegistryError::AxisViolation { .. }
        ));
    }

    #[test]
    fn full_registry_is_large_n_derived_and_does_not_collide() {
        let base = registry();
        let full = full_registry();
        assert!(!full.is_empty());
        for s in full {
            assert!(s.n >= 1024, "{} is not a large-n sweep", s.name);
            assert!(
                s.name.starts_with("full-"),
                "{} must be namespaced away from the committed baselines",
                s.name
            );
            assert!(base.find(&s.name).is_none());
            // Every full cell is a size-axis derivation of a committed cell.
            assert_eq!(s.axis, Some(VariantAxis::Size));
            let baseline = s.baseline.as_deref().expect("derived");
            assert!(base.find(baseline).is_some(), "{baseline} dangling");
        }
        let mut names: Vec<&str> = full.names().collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len(), "full names must be unique");
    }

    #[test]
    fn three_size_full_sets_never_mislabel() {
        // Regression for the old `match n { 1024 => ..., _ => "4096" }` naming,
        // which silently labeled any third size as 4096: derived names are a
        // pure function of (baseline, n), so a 3-size set keeps 3 exact names.
        let clean = registry().find("clean-line").unwrap();
        let set: Vec<Scenario> = [512usize, 1024, 4096]
            .iter()
            .map(|&n| clean.at_n(n))
            .collect();
        let reg = Registry::with_external_baselines(set, registry()).expect("valid");
        assert_eq!(
            reg.names().collect::<Vec<_>>(),
            vec![
                "full-clean-line-512",
                "full-clean-line-1024",
                "full-clean-line-4096",
            ],
        );
    }

    #[test]
    fn every_registered_scenario_runs() {
        for s in registry() {
            let r = s.run(1);
            assert!(r.rounds > 0, "{} executed no rounds", s.name);
            assert!(r.delivered > 0, "{} delivered nothing", s.name);
        }
    }
}
