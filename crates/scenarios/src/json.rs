//! A minimal JSON writer and parser — just enough for the sweep reports and their
//! cross-run diffs, with no external dependency (the build container vendors its
//! crates).

use std::fmt::Write;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// A float rendered with the shortest decimal string that round-trips to the
    /// same `f64` (Rust's `Display`), so no nonzero value ever collapses to `"0"`
    /// and no precision is silently lost. Non-finite values render as `null`.
    Num(f64),
    /// An integer rendered exactly.
    Int(i64),
    /// An unsigned integer rendered exactly (JSON integers are arbitrary-precision
    /// text, so values above `i64::MAX` — e.g. sweep seeds near `u64::MAX` — must
    /// not be squeezed through `i64`).
    UInt(u64),
    /// A boolean.
    Bool(bool),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
    /// The `null` literal (only produced by the parser; the writer emits it for
    /// non-finite floats).
    Null,
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Num(x) => {
                if x.is_finite() {
                    // Shortest round-trip formatting; `-0.0` is normalized to `0`
                    // so equal-valued reports stay byte-identical.
                    if *x == 0.0 {
                        out.push('0');
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Null => out.push_str("null"),
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::UInt(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Obj(fields) => {
                write_items(
                    out,
                    indent,
                    pretty,
                    '{',
                    '}',
                    fields.len(),
                    |out, i, ind, p| {
                        let (k, v) = &fields[i];
                        write_escaped(out, k);
                        out.push(':');
                        if p {
                            out.push(' ');
                        }
                        v.write(out, ind, p);
                    },
                );
            }
            Json::Arr(items) => {
                write_items(
                    out,
                    indent,
                    pretty,
                    '[',
                    ']',
                    items.len(),
                    |out, i, ind, p| {
                        items[i].write(out, ind, p);
                    },
                );
            }
        }
    }
}

fn write_items(
    out: &mut String,
    indent: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize, bool),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..(indent + 1) * 2 {
                out.push(' ');
            }
        }
        item(out, i, indent + 1, pretty);
    }
    if pretty && len > 0 {
        out.push('\n');
        for _ in 0..indent * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

impl Json {
    /// Parses a JSON document (the subset this module writes: objects, arrays,
    /// strings with escapes, numbers, booleans, `null`).
    ///
    /// Numbers without a fraction or exponent parse as [`Json::Int`] when they fit
    /// an `i64`, as [`Json::UInt`] when they only fit a `u64`, and as [`Json::Num`]
    /// otherwise, so every integer a writer can produce reparses exactly.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(value)
    }
}

/// A recursive-descent parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.at) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.at) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.at) {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.at) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.bytes.get(self.at) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.at += 1; // past the 'u'
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by the writer but are
                            // decoded anyway for robustness.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(format!("lone high surrogate at byte {}", self.at));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "high surrogate not followed by a low surrogate at byte {}",
                                        self.at
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| {
                                format!("invalid \\u escape ending at byte {}", self.at)
                            })?);
                            // hex4 advanced past the digits; skip the final += 1.
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences are copied through verbatim.
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.at))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits starting at the current position (the caller
    /// has already consumed the `\u` prefix).
    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.at..self.at + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.at))?;
        let s = std::str::from_utf8(digits)
            .map_err(|_| format!("bad \\u escape at byte {}", self.at))?;
        let code = u32::from_str_radix(s, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.at))?;
        self.at += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.bytes.get(self.at) == Some(&b'-') {
            self.at += 1;
        }
        let mut fractional = false;
        while let Some(&b) = self.bytes.get(self.at) {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII by scan");
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Integers above i64::MAX (e.g. u64 sweep seeds) stay exact.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("lossy \"ncc0\"".into())),
            ("rate", Json::Num(0.875)),
            ("runs", Json::Int(16)),
            ("ok", Json::Bool(true)),
            (
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"lossy \"ncc0\"","rate":0.875,"runs":16,"ok":true,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_compactly() {
        let v = Json::obj(vec![("a", Json::Arr(vec![Json::Int(1)]))]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"a\""));
        assert_eq!(pretty.replace(['\n', ' '], ""), v.render());
    }

    #[test]
    fn floats_are_trimmed() {
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn tiny_and_precise_floats_survive_rendering() {
        // Regression: the old fixed-6-decimals formatting rendered any nonzero
        // value below 5e-7 as "0" and rounded everything else to 6 decimals.
        assert_eq!(Json::Num(5e-7).render(), "0.0000005");
        assert_eq!(Json::Num(-5e-7).render(), "-0.0000005");
        assert_eq!(Json::Num(1.0 / 3.0).render(), "0.3333333333333333");
        assert_eq!(Json::Num(-0.0).render(), "0");
        // Shortest round-trip: parsing the rendered text recovers the exact bits.
        for x in [5e-7, -5e-7, 1.0 / 3.0, 0.1 + 0.2, 123456.789012345] {
            let rendered = Json::Num(x).render();
            assert_eq!(rendered.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let v = Json::obj(vec![
            (
                "escapes",
                Json::Str("a\"b\\c\nd\te\rf\u{1}g — ünïcode".into()),
            ),
            ("tiny", Json::Num(5e-7)),
            ("negative", Json::Num(-0.25)),
            ("int", Json::Int(-42)),
            ("big", Json::Int(i64::MAX)),
            ("flag", Json::Bool(false)),
            ("nan", Json::Num(f64::NAN)),
            (
                "nested",
                Json::Arr(vec![
                    Json::obj(vec![("k", Json::Str(String::new()))]),
                    Json::Arr(vec![]),
                    Json::obj(vec![]),
                ]),
            ),
        ]);
        for rendered in [v.render(), v.render_pretty()] {
            let parsed = Json::parse(&rendered).expect("writer output parses");
            // NaN renders as null, so compare via a second render.
            assert_eq!(parsed.render(), v.render());
        }
    }

    #[test]
    fn parser_classifies_ints_and_floats() {
        assert_eq!(Json::parse("17").unwrap(), Json::Int(17));
        assert_eq!(Json::parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(Json::parse("17.5").unwrap(), Json::Num(17.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
    }

    #[test]
    fn parser_decodes_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap(),
            Json::Str("A\u{e9}".into())
        );
        // A non-BMP character escaped the standard JSON way (UTF-16 surrogates).
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ud83dx""#).is_err(), "unpaired surrogate");
        // A high surrogate followed by a non-surrogate escape must be an error,
        // not an arithmetic underflow.
        assert!(
            Json::parse(r#""\ud83dA""#).is_err(),
            "high surrogate + raw char"
        );
        assert!(
            Json::parse(r#""\ud83d\u0041""#).is_err(),
            "high surrogate + BMP escape"
        );
    }

    #[test]
    fn u64_values_render_and_reparse_exactly() {
        let max = u64::MAX;
        assert_eq!(Json::UInt(max).render(), "18446744073709551615");
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(max)
        );
        // Values that fit i64 keep parsing as Int (render-identical either way).
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::UInt(42).render(), Json::Int(42).render());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
