//! A minimal JSON writer — just enough for the sweep reports, with no external
//! dependency (the build container vendors its crates).

use std::fmt::Write;

/// A JSON value under construction.
pub enum Json {
    /// A string (escaped on render).
    Str(String),
    /// A float rendered with up to 6 significant decimals.
    Num(f64),
    /// An integer rendered exactly.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
    /// An array.
    Arr(Vec<Json>),
}

impl Json {
    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Str(s) => write_escaped(out, s),
            Json::Num(x) => {
                if x.is_finite() {
                    // Trim trailing zeros for stable, compact output.
                    let s = format!("{x:.6}");
                    let s = s.trim_end_matches('0').trim_end_matches('.');
                    out.push_str(if s.is_empty() { "0" } else { s });
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(x) => {
                let _ = write!(out, "{x}");
            }
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Obj(fields) => {
                write_items(
                    out,
                    indent,
                    pretty,
                    '{',
                    '}',
                    fields.len(),
                    |out, i, ind, p| {
                        let (k, v) = &fields[i];
                        write_escaped(out, k);
                        out.push(':');
                        if p {
                            out.push(' ');
                        }
                        v.write(out, ind, p);
                    },
                );
            }
            Json::Arr(items) => {
                write_items(
                    out,
                    indent,
                    pretty,
                    '[',
                    ']',
                    items.len(),
                    |out, i, ind, p| {
                        items[i].write(out, ind, p);
                    },
                );
            }
        }
    }
}

fn write_items(
    out: &mut String,
    indent: usize,
    pretty: bool,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize, bool),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            for _ in 0..(indent + 1) * 2 {
                out.push(' ');
            }
        }
        item(out, i, indent + 1, pretty);
    }
    if pretty && len > 0 {
        out.push('\n');
        for _ in 0..indent * 2 {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj(vec![
            ("name", Json::Str("lossy \"ncc0\"".into())),
            ("rate", Json::Num(0.875)),
            ("runs", Json::Int(16)),
            ("ok", Json::Bool(true)),
            (
                "xs",
                Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"lossy \"ncc0\"","rate":0.875,"runs":16,"ok":true,"xs":[1,2,3]}"#
        );
    }

    #[test]
    fn pretty_output_is_indented_and_reparses_compactly() {
        let v = Json::obj(vec![("a", Json::Arr(vec![Json::Int(1)]))]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"a\""));
        assert_eq!(pretty.replace(['\n', ' '], ""), v.render());
    }

    #[test]
    fn floats_are_trimmed() {
        assert_eq!(Json::Num(1.0).render(), "1");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
