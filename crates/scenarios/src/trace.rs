//! JSONL serialization of structured run traces.
//!
//! A traced run ([`crate::Scenario::run_traced`]) yields a stream of
//! [`TraceEvent`]s; this module renders it as JSON Lines — one compact JSON
//! object per event, in emission order — the format `sweep_runner --trace`
//! writes under `reports/traces/`. Serialization is a pure function of the
//! event stream, so one `(scenario, seed)` always produces a byte-identical
//! trace file.
//!
//! # Schema
//!
//! Every line is an object with an `event` discriminator; all other keys are
//! fixed per event kind and always present:
//!
//! | `event` | keys | meaning |
//! |---|---|---|
//! | `round-start` | `round` | a simulated round began |
//! | `round-end` | `round`, `delivered`, `dropped` | round finished, with delivery totals |
//! | `phase-start` | `phase` | a pipeline phase began |
//! | `phase-end` | `phase`, `rounds`, `completed` | phase finished (or stalled: `completed: false`) |
//! | `drop` | `round`, `from`, `to`, `channel`, `cause` | a message was lost |
//! | `crash` | `round`, `node` | crash-stop at the start of `round` |
//! | `join` | `round`, `node` | late joiner activated |
//! | `retransmits` | `round`, `node`, `count` | transport re-sends by `node` this round |
//! | `give-ups` | `round`, `node`, `count` | transport abandonments by `node` this round |
//! | `epoch` | `epoch`, `round`, `alive`, `stragglers` | maintenance epoch boundary processed |
//! | `re-invite` | `epoch`, `joiner`, `contact`, `delivered` | re-invitation issued to a straggler |
//! | `repair` | `epoch`, `healed`, `tree-valid` | repair evolution ran at an epoch boundary |
//! | `request-injected` | `round`, `src`, `dst` | a traffic request entered its source's queue |
//! | `request-delivered` | `round`, `dst`, `hops`, `latency` | a traffic request reached its destination |
//! | `request-dropped` | `node`, `dropped`, `expired` | per-node traffic shed rollup (overflow/no-route vs TTL) |
//!
//! `round` numbers restart at 0 inside each `phase-start`/`phase-end` pair
//! (each phase is its own simulation). `from`/`to`/`node` are node indices
//! *within the phase's simulation*: phases after the survivor-core remap
//! (`bfs`, `binarize`) number the core nodes 0..core_size, and
//! `BuildReport::survivor_ids` maps them back to original ids — the forensics
//! analyzer does this for you. `channel` is `"global"` or `"local"`;
//! `cause` is a [`overlay_netsim::DropCause::label`] (see the glossary in
//! `overlay_netsim::metrics`).

use crate::json::Json;
use overlay_netsim::protocol::Channel;
use overlay_netsim::TraceEvent;

fn channel_label(channel: Channel) -> &'static str {
    match channel {
        Channel::Global => "global",
        Channel::Local => "local",
    }
}

/// Renders one event as its JSONL object (see the module-level schema).
pub fn event_json(event: &TraceEvent) -> Json {
    let uint = |v: usize| Json::UInt(v as u64);
    match *event {
        TraceEvent::RoundStart { round } => Json::obj(vec![
            ("event", Json::Str("round-start".into())),
            ("round", uint(round)),
        ]),
        TraceEvent::RoundEnd {
            round,
            delivered,
            dropped,
        } => Json::obj(vec![
            ("event", Json::Str("round-end".into())),
            ("round", uint(round)),
            ("delivered", uint(delivered)),
            ("dropped", uint(dropped)),
        ]),
        TraceEvent::PhaseStart { phase } => Json::obj(vec![
            ("event", Json::Str("phase-start".into())),
            ("phase", Json::Str(phase.into())),
        ]),
        TraceEvent::PhaseEnd {
            phase,
            rounds,
            completed,
        } => Json::obj(vec![
            ("event", Json::Str("phase-end".into())),
            ("phase", Json::Str(phase.into())),
            ("rounds", uint(rounds)),
            ("completed", Json::Bool(completed)),
        ]),
        TraceEvent::Drop {
            round,
            from,
            to,
            channel,
            cause,
        } => Json::obj(vec![
            ("event", Json::Str("drop".into())),
            ("round", uint(round)),
            ("from", uint(from.index())),
            ("to", uint(to.index())),
            ("channel", Json::Str(channel_label(channel).into())),
            ("cause", Json::Str(cause.label().into())),
        ]),
        TraceEvent::Crash { round, node } => Json::obj(vec![
            ("event", Json::Str("crash".into())),
            ("round", uint(round)),
            ("node", uint(node.index())),
        ]),
        TraceEvent::Join { round, node } => Json::obj(vec![
            ("event", Json::Str("join".into())),
            ("round", uint(round)),
            ("node", uint(node.index())),
        ]),
        TraceEvent::Retransmits { round, node, count } => Json::obj(vec![
            ("event", Json::Str("retransmits".into())),
            ("round", uint(round)),
            ("node", uint(node.index())),
            ("count", uint(count)),
        ]),
        TraceEvent::GiveUps { round, node, count } => Json::obj(vec![
            ("event", Json::Str("give-ups".into())),
            ("round", uint(round)),
            ("node", uint(node.index())),
            ("count", uint(count)),
        ]),
        TraceEvent::Epoch {
            epoch,
            round,
            alive,
            stragglers,
        } => Json::obj(vec![
            ("event", Json::Str("epoch".into())),
            ("epoch", uint(epoch)),
            ("round", uint(round)),
            ("alive", uint(alive)),
            ("stragglers", uint(stragglers)),
        ]),
        TraceEvent::ReInvite {
            epoch,
            joiner,
            contact,
            delivered,
        } => Json::obj(vec![
            ("event", Json::Str("re-invite".into())),
            ("epoch", uint(epoch)),
            ("joiner", uint(joiner.index())),
            ("contact", uint(contact.index())),
            ("delivered", Json::Bool(delivered)),
        ]),
        TraceEvent::Repair {
            epoch,
            healed,
            tree_valid,
        } => Json::obj(vec![
            ("event", Json::Str("repair".into())),
            ("epoch", uint(epoch)),
            ("healed", uint(healed)),
            ("tree-valid", Json::Bool(tree_valid)),
        ]),
        TraceEvent::RequestInjected { round, src, dst } => Json::obj(vec![
            ("event", Json::Str("request-injected".into())),
            ("round", uint(round)),
            ("src", uint(src.index())),
            ("dst", uint(dst.index())),
        ]),
        TraceEvent::RequestDelivered {
            round,
            dst,
            hops,
            latency,
        } => Json::obj(vec![
            ("event", Json::Str("request-delivered".into())),
            ("round", uint(round)),
            ("dst", uint(dst.index())),
            ("hops", uint(hops)),
            ("latency", uint(latency)),
        ]),
        TraceEvent::RequestDropped {
            node,
            dropped,
            expired,
        } => Json::obj(vec![
            ("event", Json::Str("request-dropped".into())),
            ("node", uint(node.index())),
            ("dropped", uint(dropped)),
            ("expired", uint(expired)),
        ]),
    }
}

/// Renders a whole event stream as JSON Lines: one compact object per event,
/// each line newline-terminated. Deterministic for a deterministic stream.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event_json(event).render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{FaultSpec, GraphFamily, Scenario};

    fn stormy() -> Scenario {
        Scenario::new("trace-jsonl-x", "x", GraphFamily::Cycle, 48).with_faults(
            FaultSpec::CrashThenLoss {
                fraction: 0.15,
                at: 0.4,
                drop_prob: 0.05,
            },
        )
    }

    #[test]
    fn same_scenario_and_seed_give_byte_identical_traces() {
        let a = to_jsonl(&stormy().run_traced(3).events);
        let b = to_jsonl(&stormy().run_traced(3).events);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn every_line_parses_and_carries_the_discriminator() {
        let jsonl = to_jsonl(&stormy().run_traced(3).events);
        let mut kinds = std::collections::BTreeSet::new();
        for line in jsonl.lines() {
            let value = Json::parse(line).expect("valid JSON line");
            let Json::Obj(fields) = value else {
                panic!("each line must be an object");
            };
            let (key, event) = &fields[0];
            assert_eq!(key, "event", "discriminator comes first");
            let Json::Str(kind) = event else {
                panic!("event must be a string");
            };
            kinds.insert(kind.clone());
        }
        // The stormy scenario exercises the core of the schema.
        for expected in [
            "round-start",
            "round-end",
            "phase-start",
            "phase-end",
            "drop",
            "crash",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
    }
}
