//! Failure post-mortems from structured run traces.
//!
//! Aggregate sweep counters say *that* a cell failed; the post-mortem says
//! *why*. [`post_mortem`] consumes a traced run ([`crate::Scenario::run_traced`])
//! and distills the forensic facts a person reverse-engineers by hand today:
//! which phase failed, which nodes are missing from the final overlay and when
//! each went dark, which drop cause dominated each phase, and how much
//! transport effort was burned retransmitting to peers that were already dead.
//!
//! Node ids in the trace are simulation-local (phases after the survivor-core
//! remap number the core 0..core_size); the analyzer folds them back to
//! original ids through `BuildReport::survivor_ids`, so everything a
//! [`PostMortem`] reports is in the caller's id space.

use crate::scenario::{ForensicRun, Scenario};
use overlay_core::PhaseId;
use overlay_netsim::TraceEvent;
use std::collections::BTreeMap;

/// Why a node is absent from the final overlay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissingCause {
    /// The node crashed (crash-stop) and never came back.
    Crashed,
    /// The node survived construction but landed outside the largest surviving
    /// component when the core was extracted.
    OutsideCore,
}

/// One node missing from the final overlay: who, since when, and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MissingNode {
    /// The node's original id.
    pub node: usize,
    /// The first *global* round (cumulative across phases) the node went dark:
    /// its crash round, or the end of construction for nodes cut with the core.
    pub first_silent: usize,
    /// Why the node is missing.
    pub cause: MissingCause,
}

/// The distilled facts of one failed (or suspicious) run.
#[derive(Clone, Debug)]
pub struct PostMortem {
    /// The scenario's name.
    pub scenario: String,
    /// The seed of the analyzed run.
    pub seed: u64,
    /// `true` when the run did not produce a valid tree over the final
    /// survivors.
    pub failed: bool,
    /// The phase that sank the run: the first stalled phase, or `finalize` when
    /// every phase completed but the tree failed validation. `None` for
    /// successful runs.
    pub failing_phase: Option<&'static str>,
    /// Every node absent from the final overlay, ordered by id.
    pub missing: Vec<MissingNode>,
    /// Per simulated phase, the dominant drop cause as `(phase, cause, count)`
    /// — phases that dropped nothing are omitted.
    pub dominant_drops: Vec<(&'static str, &'static str, u64)>,
    /// Messages addressed to already-crashed nodes (`offline` drops to peers in
    /// the missing set) — the "dead-peer burn" that retransmission budgets leak
    /// into.
    pub dead_peer_burn: u64,
    /// Total transport retransmissions across the run.
    pub retransmits: u64,
    /// Total transport give-ups (payloads abandoned on presumed-dead peers).
    pub give_ups: u64,
}

/// Analyzes one traced run into a [`PostMortem`]. Works for successful runs
/// too ([`PostMortem::failed`] is `false`); `--explain` only prints it for
/// failures.
pub fn post_mortem(scenario: &Scenario, run: &ForensicRun) -> PostMortem {
    let n = scenario.actual_n();
    let report = &run.report;

    // Map a simulation-local id to the original id: phases on the remapped
    // core go through survivor_ids, the construction phase is the identity.
    let survivors: Vec<usize> = report.survivor_ids.iter().map(|v| v.index()).collect();
    let to_original = |phase: &str, local: usize| -> usize {
        if phase == PhaseId::CreateExpander.name() || survivors.is_empty() {
            local
        } else {
            survivors.get(local).copied().unwrap_or(local)
        }
    };

    // Scan the event stream once, tracking the current phase and the global
    // round offset (rounds completed by earlier phases).
    let mut phase = PhaseId::CreateExpander.name();
    let mut offset = 0usize;
    let mut construction_end = 0usize;
    let mut crashed: BTreeMap<usize, usize> = BTreeMap::new(); // id -> first silent round
    let mut offline_drops_to: BTreeMap<usize, u64> = BTreeMap::new();
    for event in &run.events {
        match event {
            TraceEvent::PhaseStart { phase: name } => phase = name,
            TraceEvent::PhaseEnd {
                phase: name,
                rounds,
                ..
            } => {
                if *name == PhaseId::CreateExpander.name() {
                    construction_end = offset + rounds;
                }
                offset += rounds;
            }
            TraceEvent::Crash { round, node } => {
                crashed
                    .entry(to_original(phase, node.index()))
                    .or_insert(offset + round);
            }
            TraceEvent::Drop { to, cause, .. } if *cause == overlay_netsim::DropCause::Offline => {
                *offline_drops_to
                    .entry(to_original(phase, to.index()))
                    .or_insert(0) += 1;
            }
            _ => {}
        }
    }

    // The missing set: every crashed node, plus — once a core exists — every
    // node the core extraction left behind.
    let mut missing: BTreeMap<usize, MissingNode> = crashed
        .iter()
        .map(|(&node, &first_silent)| {
            (
                node,
                MissingNode {
                    node,
                    first_silent,
                    cause: MissingCause::Crashed,
                },
            )
        })
        .collect();
    if !survivors.is_empty() {
        for node in 0..n {
            if !survivors.contains(&node) {
                missing.entry(node).or_insert(MissingNode {
                    node,
                    first_silent: construction_end,
                    cause: MissingCause::OutsideCore,
                });
            }
        }
    }

    let dead_peer_burn = missing
        .keys()
        .map(|node| offline_drops_to.get(node).copied().unwrap_or(0))
        .sum();

    let dominant_drops = report
        .phase_metrics
        .iter()
        .filter_map(|m| {
            m.dominant_drop()
                .map(|(cause, count)| (m.phase, cause, count))
        })
        .collect();

    let failed = !run.record.success;
    let failing_phase = if !failed {
        None
    } else if !run.record.stalled_phase.is_empty() {
        Some(run.record.stalled_phase)
    } else {
        Some("finalize")
    };

    PostMortem {
        scenario: scenario.name.clone(),
        seed: run.record.seed,
        failed,
        failing_phase,
        missing: missing.into_values().collect(),
        dominant_drops,
        dead_peer_burn,
        retransmits: run.record.retransmits,
        give_ups: run.report.phase_metrics.iter().map(|m| m.give_ups).sum(),
    }
}

impl PostMortem {
    /// Renders the post-mortem as a short human-readable block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = if self.failed { "FAILED" } else { "ok" };
        out.push_str(&format!(
            "post-mortem {} seed {}: {}\n",
            self.scenario, self.seed, verdict
        ));
        if let Some(phase) = self.failing_phase {
            out.push_str(&format!("  failing phase: {phase}\n"));
        }
        if self.missing.is_empty() {
            out.push_str("  missing nodes: none\n");
        } else {
            let ids: Vec<String> = self
                .missing
                .iter()
                .map(|m| {
                    let tag = match m.cause {
                        MissingCause::Crashed => "crashed",
                        MissingCause::OutsideCore => "cut",
                    };
                    format!("{} ({} r{})", m.node, tag, m.first_silent)
                })
                .collect();
            out.push_str(&format!(
                "  missing nodes ({}): {}\n",
                self.missing.len(),
                ids.join(", ")
            ));
        }
        for (phase, cause, count) in &self.dominant_drops {
            out.push_str(&format!(
                "  dominant drop in {phase}: {cause} ({count} messages)\n"
            ));
        }
        if self.retransmits > 0 || self.dead_peer_burn > 0 {
            out.push_str(&format!(
                "  transport: {} retransmits, {} give-ups, {} messages burned on dead peers\n",
                self.retransmits, self.give_ups, self.dead_peer_burn
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::find;

    #[test]
    fn explains_a_failed_crash_then_loss_seed() {
        let scenario = find("crash-then-loss").expect("registered scenario");
        // The cell fails on almost every seed (~6% success); find one.
        let (seed, run) = (0..16)
            .map(|seed| (seed, scenario.run_traced(seed)))
            .find(|(_, run)| !run.record.success)
            .expect("crash-then-loss must fail within 16 seeds");

        let pm = post_mortem(&scenario, &run);
        assert!(pm.failed);
        assert_eq!(pm.seed, seed);
        let phase = pm.failing_phase.expect("a failing phase is named");
        assert!(!phase.is_empty());
        // A crash wave hit: the crashed nodes appear with their crash round.
        assert!(!pm.missing.is_empty(), "crash wave leaves missing nodes");
        assert!(pm.missing.iter().any(|m| m.cause == MissingCause::Crashed));
        assert_eq!(pm.missing.len(), {
            let mut ids: Vec<usize> = pm.missing.iter().map(|m| m.node).collect();
            ids.dedup();
            ids.len()
        });
        // Loss plus a crash wave must register a dominant drop cause somewhere.
        assert!(!pm.dominant_drops.is_empty());
        let rendered = pm.render();
        assert!(rendered.contains("FAILED"));
        assert!(rendered.contains("failing phase"));
        assert!(rendered.contains("missing nodes"));
        assert!(rendered.contains("dominant drop"));
    }

    #[test]
    fn successful_runs_produce_a_clean_post_mortem() {
        let scenario = find("clean-line").expect("registered scenario");
        let run = scenario.run_traced(0);
        assert!(run.record.success, "clean-line seed 0 succeeds");
        let pm = post_mortem(&scenario, &run);
        assert!(!pm.failed);
        assert_eq!(pm.failing_phase, None);
        assert!(pm.missing.is_empty());
        assert_eq!(pm.dead_peer_burn, 0);
    }
}
