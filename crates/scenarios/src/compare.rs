//! Baseline-vs-twin delta tables.
//!
//! A twin scenario exists to answer *"what did the variant buy, and what did it
//! cost?"* — but two 16-seed JSON reports side by side make the reader do the
//! subtraction. This module does it mechanically: [`PairDelta`] condenses a
//! `(baseline, twin)` sweep-report couple (see [`crate::Registry::pairs`]) into
//! the four headline quantities — success rate, mean rounds, mean delivered
//! messages, total retransmissions — and [`render_table`] lays any number of
//! couples out as one markdown table, which `sweep_runner --compare` prints and
//! persists next to the reports (and CI uploads as an artifact).
//!
//! The table is a pure function of the deterministic report bodies (wall-clock
//! and worker counts never enter), so regenerating it on an unchanged tree is
//! byte-identical.

use crate::json::Json;
use crate::report::load_report;
use crate::sweep::SweepReport;
use std::io;
use std::path::{Path, PathBuf};

/// The headline deltas of one `(baseline, twin)` couple.
#[derive(Clone, Debug, PartialEq)]
pub struct PairDelta {
    /// Baseline scenario name.
    pub baseline: String,
    /// Twin scenario name.
    pub twin: String,
    /// The twin's declared variant axis label (empty when undeclared).
    pub axis: String,
    /// Success rate, baseline then twin (fractions in `[0, 1]`).
    pub success: (f64, f64),
    /// Mean coverage, baseline then twin (for serve cells this is the
    /// *sustained* service coverage — the maintenance subsystem's headline).
    pub coverage: (f64, f64),
    /// Mean total rounds, baseline then twin.
    pub rounds: (f64, f64),
    /// Mean delivered messages per run, baseline then twin.
    pub delivered: (f64, f64),
    /// Total transport retransmissions across the sweep, baseline then twin.
    pub retransmits: (u64, u64),
    /// Traffic-phase deltas, present only when *both* sides of the pair carry
    /// a workload — the latency columns of `sweep_runner --compare` come from
    /// here and are omitted entirely for classic construction pairs.
    pub traffic: Option<TrafficDeltas>,
}

/// The traffic-phase columns of a `(baseline, twin)` couple that both route a
/// workload: what the variant bought in delivered requests, and what it cost
/// in rounds-to-delivery.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficDeltas {
    /// Mean delivered fraction, baseline then twin (fractions in `[0, 1]`).
    pub delivered_fraction: (f64, f64),
    /// Mean per-seed median rounds-to-delivery, baseline then twin.
    pub latency_p50: (f64, f64),
    /// Mean per-seed 99th-percentile rounds-to-delivery, baseline then twin.
    pub latency_p99: (f64, f64),
}

impl PairDelta {
    /// Condenses a baseline/twin report couple into its headline deltas.
    pub fn from_reports(base: &SweepReport, twin: &SweepReport) -> PairDelta {
        PairDelta {
            baseline: base.scenario.name.clone(),
            twin: twin.scenario.name.clone(),
            axis: twin
                .scenario
                .axis
                .map(|a| a.label().to_string())
                .unwrap_or_default(),
            success: (base.success_rate(), twin.success_rate()),
            coverage: (base.mean_coverage(), twin.mean_coverage()),
            rounds: (base.mean_rounds(), twin.mean_rounds()),
            delivered: (base.mean_delivered(), twin.mean_delivered()),
            retransmits: (base.total_retransmits(), twin.total_retransmits()),
            traffic: (base.scenario.traffic.is_some() && twin.scenario.traffic.is_some()).then(
                || TrafficDeltas {
                    delivered_fraction: (
                        base.mean_delivered_fraction(),
                        twin.mean_delivered_fraction(),
                    ),
                    latency_p50: (base.mean_latency_p50(), twin.mean_latency_p50()),
                    latency_p99: (base.mean_latency_p99(), twin.mean_latency_p99()),
                },
            ),
        }
    }

    /// Condenses a couple of *committed* report documents (as parsed by
    /// [`crate::report::load_report`]) into the same headline deltas — no
    /// re-sweep needed, which is what makes `sweep_runner --compare --no-run`
    /// free in CI. `axis` comes from the registry (the variant axis is not part
    /// of the report body).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped header field; a
    /// document written by [`crate::report::write_report`] always has them all.
    pub fn from_committed(base: &Json, twin: &Json, axis: &str) -> Result<PairDelta, String> {
        let scenario = |doc: &Json, side: &str| -> Result<String, String> {
            str_field(doc, "scenario").ok_or_else(|| format!("{side}: missing \"scenario\""))
        };
        let headline = |doc: &Json| -> Result<(f64, f64, f64, f64, u64), String> {
            let name = scenario(doc, "report")?;
            let get = |key: &str| {
                num_field(doc, key)
                    .ok_or_else(|| format!("{name}: missing or non-numeric \"{key}\""))
            };
            Ok((
                get("success_rate")?,
                get("mean_coverage")?,
                get("mean_rounds")?,
                get("mean_delivered")?,
                uint_field(doc, "total_retransmits").ok_or_else(|| {
                    format!("{name}: missing or non-numeric \"total_retransmits\"")
                })?,
            ))
        };
        let b = headline(base)?;
        let t = headline(twin)?;
        // The traffic columns exist only when both committed headers carry the
        // (conditional) traffic object; a written traffic header always has
        // all three aggregates, so a missing one is a malformed document.
        let traffic_side = |doc: &Json| -> Result<Option<(f64, f64, f64)>, String> {
            let Some(header) = field(doc, "traffic") else {
                return Ok(None);
            };
            let name = scenario(doc, "report")?;
            let get = |key: &str| {
                num_field(header, key)
                    .ok_or_else(|| format!("{name}: traffic header missing \"{key}\""))
            };
            Ok(Some((
                get("mean_delivered_fraction")?,
                get("mean_latency_p50")?,
                get("mean_latency_p99")?,
            )))
        };
        let traffic = match (traffic_side(base)?, traffic_side(twin)?) {
            (Some(tb), Some(tt)) => Some(TrafficDeltas {
                delivered_fraction: (tb.0, tt.0),
                latency_p50: (tb.1, tt.1),
                latency_p99: (tb.2, tt.2),
            }),
            _ => None,
        };
        Ok(PairDelta {
            baseline: scenario(base, "baseline")?,
            twin: scenario(twin, "twin")?,
            axis: axis.to_string(),
            success: (b.0, t.0),
            coverage: (b.1, t.1),
            rounds: (b.2, t.2),
            delivered: (b.3, t.3),
            retransmits: (b.4, t.4),
            traffic,
        })
    }
}

/// Looks up a top-level object field.
fn field<'a>(doc: &'a Json, key: &str) -> Option<&'a Json> {
    match doc {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// A top-level string field.
fn str_field(doc: &Json, key: &str) -> Option<String> {
    match field(doc, key)? {
        Json::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// A top-level numeric field as `f64` (integral values reparse as ints, so all
/// three numeric variants are accepted).
fn num_field(doc: &Json, key: &str) -> Option<f64> {
    match field(doc, key)? {
        Json::Num(x) => Some(*x),
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        _ => None,
    }
}

/// A top-level non-negative integer field.
fn uint_field(doc: &Json, key: &str) -> Option<u64> {
    match field(doc, key)? {
        Json::Int(i) if *i >= 0 => Some(*i as u64),
        Json::UInt(u) => Some(*u),
        _ => None,
    }
}

/// Renders the couples as one markdown table, in input order: each cell shows
/// `baseline → twin`, with the signed round delta spelled out (the round cost of
/// a variant is the number readers reach for first).
pub fn render_table(deltas: &[PairDelta]) -> String {
    let mut out = String::from(
        "| baseline | twin | axis | success | coverage | mean rounds | mean delivered | retransmits |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for d in deltas {
        out.push_str(&format!(
            "| {} | {} | {} | {:.1}% → {:.1}% | {:.1}% → {:.1}% | {:.1} → {:.1} ({:+.1}) | {:.0} → {:.0} | {} → {} |\n",
            d.baseline,
            d.twin,
            d.axis,
            100.0 * d.success.0,
            100.0 * d.success.1,
            100.0 * d.coverage.0,
            100.0 * d.coverage.1,
            d.rounds.0,
            d.rounds.1,
            d.rounds.1 - d.rounds.0,
            d.delivered.0,
            d.delivered.1,
            d.retransmits.0,
            d.retransmits.1,
        ));
    }
    // Traffic pairs get a second table with the latency columns; pairs
    // without a workload never appear in it, and a pair set without any
    // traffic couple renders exactly the historical single table.
    let traffic: Vec<(&PairDelta, &TrafficDeltas)> = deltas
        .iter()
        .filter_map(|d| d.traffic.as_ref().map(|t| (d, t)))
        .collect();
    if !traffic.is_empty() {
        out.push_str(
            "\n### Traffic\n\n\
             | baseline | twin | delivered | latency p50 | latency p99 |\n\
             |---|---|---|---|---|\n",
        );
        for (d, t) in traffic {
            out.push_str(&format!(
                "| {} | {} | {:.1}% → {:.1}% | {:.1} → {:.1} | {:.1} → {:.1} ({:+.1}) |\n",
                d.baseline,
                d.twin,
                100.0 * t.delivered_fraction.0,
                100.0 * t.delivered_fraction.1,
                t.latency_p50.0,
                t.latency_p50.1,
                t.latency_p99.0,
                t.latency_p99.1,
                t.latency_p99.1 - t.latency_p99.0,
            ));
        }
    }
    out
}

/// Writes the rendered table (with a short provenance header) to
/// `<dir>/compare.md` and returns the written path. The file sits next to the
/// committed reports but stays untracked — it is derived output, regenerated by
/// every `--compare` run.
///
/// # Errors
///
/// Propagates any filesystem error (directory creation or file write).
pub fn write_compare_table(
    deltas: &[PairDelta],
    seeds: usize,
    dir: impl AsRef<Path>,
) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join("compare.md");
    let body = format!(
        "# Baseline vs twin deltas\n\n\
         One row per registered (baseline, twin) pair, {seeds} seeds each; see\n\
         `Registry::pairs` and `sweep_runner --compare`.\n\n{}",
        render_table(deltas)
    );
    std::fs::write(&path, body)?;
    Ok(path)
}

/// The committed regression floor of one `(baseline, twin)` pair: the twin's
/// success and coverage *deltas* (twin minus baseline) must not shrink below
/// these values. Committed as `reports/thresholds.json` next to the sweep
/// baselines, so the floors are data under review, not constants in code.
///
/// `--check` already pins every report byte-for-byte; the thresholds bite when
/// baselines are *intentionally* regenerated — a regen that quietly erodes a
/// headline delta (say, re-invitation's coverage lift) fails the compare gate
/// until the floors are deliberately revised.
#[derive(Clone, Debug, PartialEq)]
pub struct PairThreshold {
    /// The twin whose pair is gated (the baseline comes from the registry).
    pub twin: String,
    /// Floor for `success.twin - success.baseline`.
    pub min_success_delta: f64,
    /// Floor for `coverage.twin - coverage.baseline`.
    pub min_coverage_delta: f64,
}

/// Slack absorbing float formatting, not behavior: deltas are pure functions of
/// the deterministic report bodies, so any real shrink exceeds this by orders
/// of magnitude.
const THRESHOLD_TOLERANCE: f64 = 1e-9;

impl PairThreshold {
    /// The floor that pins a pair exactly where a measured delta stands.
    pub fn from_delta(delta: &PairDelta) -> PairThreshold {
        PairThreshold {
            twin: delta.twin.clone(),
            min_success_delta: delta.success.1 - delta.success.0,
            min_coverage_delta: delta.coverage.1 - delta.coverage.0,
        }
    }
}

/// Loads committed pair thresholds from `path` (written by
/// [`write_thresholds`]).
///
/// # Errors
///
/// Returns the filesystem error, or [`io::ErrorKind::InvalidData`] when the
/// document is not valid JSON or lacks the expected fields.
pub fn load_thresholds(path: impl AsRef<Path>) -> io::Result<Vec<PairThreshold>> {
    let doc = load_report(&path)?;
    let invalid = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {what}", path.as_ref().display()),
        )
    };
    let Some(Json::Arr(pairs)) = field(&doc, "pairs") else {
        return Err(invalid("missing \"pairs\" array"));
    };
    pairs
        .iter()
        .map(|entry| {
            Ok(PairThreshold {
                twin: str_field(entry, "twin").ok_or_else(|| invalid("pair without \"twin\""))?,
                min_success_delta: num_field(entry, "min_success_delta")
                    .ok_or_else(|| invalid("pair without \"min_success_delta\""))?,
                min_coverage_delta: num_field(entry, "min_coverage_delta")
                    .ok_or_else(|| invalid("pair without \"min_coverage_delta\""))?,
            })
        })
        .collect()
}

/// Writes the current deltas as the committed floors to
/// `<dir>/thresholds.json` (one entry per pair, in table order) and returns the
/// written path — the `sweep_runner --compare --write-thresholds` workflow for
/// establishing or deliberately revising the gate.
///
/// # Errors
///
/// Propagates any filesystem error.
pub fn write_thresholds(deltas: &[PairDelta], dir: impl AsRef<Path>) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let path = dir.join("thresholds.json");
    let pairs: Vec<Json> = deltas
        .iter()
        .map(PairThreshold::from_delta)
        .map(|t| {
            Json::obj(vec![
                ("twin", Json::Str(t.twin)),
                ("min_success_delta", Json::Num(t.min_success_delta)),
                ("min_coverage_delta", Json::Num(t.min_coverage_delta)),
            ])
        })
        .collect();
    let mut body = Json::obj(vec![("pairs", Json::Arr(pairs))]).render_pretty();
    body.push('\n');
    std::fs::write(&path, body)?;
    Ok(path)
}

/// Checks the deltas against the committed floors and returns one line per
/// violation (empty when the gate passes). A thresholded twin missing from
/// `deltas` is itself a violation — a silently vanished pair must not read as
/// a passing gate.
pub fn check_thresholds(deltas: &[PairDelta], thresholds: &[PairThreshold]) -> Vec<String> {
    let mut violations = Vec::new();
    for t in thresholds {
        let Some(d) = deltas.iter().find(|d| d.twin == t.twin) else {
            violations.push(format!(
                "{}: thresholded pair missing from the compared set",
                t.twin
            ));
            continue;
        };
        let success_delta = d.success.1 - d.success.0;
        if success_delta < t.min_success_delta - THRESHOLD_TOLERANCE {
            violations.push(format!(
                "{}: success delta {:.4} shrank below committed floor {:.4}",
                t.twin, success_delta, t.min_success_delta
            ));
        }
        let coverage_delta = d.coverage.1 - d.coverage.0;
        if coverage_delta < t.min_coverage_delta - THRESHOLD_TOLERANCE {
            violations.push(format!(
                "{}: coverage delta {:.4} shrank below committed floor {:.4}",
                t.twin, coverage_delta, t.min_coverage_delta
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;
    use crate::sweep::Sweep;

    fn lossy_pair_delta(seeds: usize) -> PairDelta {
        let (base, twin) = registry()
            .pairs()
            .find(|(_, t)| t.name == "lossy-ncc0-reliable")
            .expect("pair registered");
        PairDelta::from_reports(
            &Sweep::over_seeds(base.clone(), 0, seeds).run(),
            &Sweep::over_seeds(twin.clone(), 0, seeds).run(),
        )
    }

    #[test]
    fn delta_condenses_the_pair_and_names_the_axis() {
        let d = lossy_pair_delta(3);
        assert_eq!(d.baseline, "lossy-ncc0");
        assert_eq!(d.twin, "lossy-ncc0-reliable");
        assert_eq!(d.axis, "transport");
        assert!(d.success.1 >= d.success.0, "reliability lost seeds: {d:?}");
        assert_eq!(d.retransmits.0, 0, "bare baseline cannot retransmit");
    }

    #[test]
    fn table_renders_one_row_per_pair_and_is_deterministic() {
        let d = lossy_pair_delta(2);
        let table = render_table(std::slice::from_ref(&d));
        assert_eq!(table.lines().count(), 3, "header + divider + row:\n{table}");
        assert!(table.contains("| lossy-ncc0 | lossy-ncc0-reliable | transport |"));
        assert_eq!(
            table,
            render_table(std::slice::from_ref(&lossy_pair_delta(2)))
        );
    }

    #[test]
    fn committed_reports_reproduce_the_live_delta() {
        // --compare --no-run must agree with a fresh sweep, by construction:
        // write both reports, reload them, and compare the two delta paths.
        let (base, twin) = registry()
            .pairs()
            .find(|(_, t)| t.name == "lossy-ncc0-reliable")
            .expect("pair registered");
        let base_report = Sweep::over_seeds(base.clone(), 0, 2).run();
        let twin_report = Sweep::over_seeds(twin.clone(), 0, 2).run();
        let live = PairDelta::from_reports(&base_report, &twin_report);

        let dir = std::env::temp_dir().join(format!("overlay-committed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base_path = crate::report::write_report(&base_report, &dir).unwrap();
        let twin_path = crate::report::write_report(&twin_report, &dir).unwrap();
        let committed = PairDelta::from_committed(
            &crate::report::load_report(&base_path).unwrap(),
            &crate::report::load_report(&twin_path).unwrap(),
            &live.axis,
        )
        .expect("written reports carry every headline field");
        assert_eq!(committed, live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traffic_columns_exist_only_for_traffic_pairs_and_survive_committing() {
        // A classic construction pair has no traffic section, live or rendered.
        let classic = lossy_pair_delta(2);
        assert!(classic.traffic.is_none());
        assert!(!render_table(std::slice::from_ref(&classic)).contains("### Traffic"));

        let (base, twin) = registry()
            .pairs()
            .find(|(_, t)| t.name == "traffic-uniform-tree")
            .expect("traffic pair registered");
        let base_report = Sweep::over_seeds(base.clone(), 0, 2).run();
        let twin_report = Sweep::over_seeds(twin.clone(), 0, 2).run();
        let live = PairDelta::from_reports(&base_report, &twin_report);
        let t = live.traffic.expect("both sides route a workload");
        assert!(t.delivered_fraction.0 > 0.0);
        let table = render_table(std::slice::from_ref(&live));
        assert!(table.contains("### Traffic"), "{table}");
        assert!(table.contains("| traffic-uniform | traffic-uniform-tree |"));

        // --compare --no-run reproduces the live traffic columns from the
        // committed report headers.
        let dir = std::env::temp_dir().join(format!("overlay-traffic-cmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base_path = crate::report::write_report(&base_report, &dir).unwrap();
        let twin_path = crate::report::write_report(&twin_report, &dir).unwrap();
        let committed = PairDelta::from_committed(
            &crate::report::load_report(&base_path).unwrap(),
            &crate::report::load_report(&twin_path).unwrap(),
            &live.axis,
        )
        .expect("committed traffic headers carry the aggregates");
        assert_eq!(committed, live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_committed_names_the_missing_field() {
        let doc = Json::obj(vec![("scenario", Json::Str("x".into()))]);
        let err = PairDelta::from_committed(&doc, &doc, "").unwrap_err();
        assert!(err.contains("success_rate"), "{err}");
    }

    #[test]
    fn compare_table_persists_under_the_given_dir() {
        let dir = std::env::temp_dir().join(format!("overlay-compare-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d = lossy_pair_delta(2);
        let path = write_compare_table(std::slice::from_ref(&d), 2, &dir).expect("write");
        assert_eq!(path.file_name().unwrap(), "compare.md");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("# Baseline vs twin deltas"));
        assert!(body.contains("lossy-ncc0-reliable"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
