//! Property tests for the maintenance subsystem's two standing contracts.
//!
//! **Determinism.** A serve run is a pure function of `(scenario, seed)`: the
//! maintenance loop itself is single-threaded, and the construction it serves
//! is bitwise-invariant under worker sharding, so the full run — `RunRecord`
//! with its embedded `ServeRecord` plus the serialized trace JSONL, epoch and
//! repair events included — must come out byte-identical whether the round
//! loop steps serially or across worker threads. Sampled over the registered
//! `serve-*` cells, seeds, and worker counts.
//!
//! **Well-formedness.** On a clean network (churn but no message faults), the
//! repair evolution must hand every epoch boundary a valid bounded-degree
//! tree: exactly one `Repair` trace event per epoch, every one reporting
//! `tree_valid`, and the aggregated record counting zero violations.

use overlay_scenarios::{registry, trace, ParallelismConfig, Scenario, TraceEvent};
use proptest::prelude::*;

/// The registered serve cells (the `serve-*` family plus any future cell that
/// declares a serve spec).
fn serve_cells() -> Vec<&'static Scenario> {
    let cells: Vec<_> = registry().iter().filter(|s| s.serve.is_some()).collect();
    assert!(!cells.is_empty(), "registry lost its serve-* family");
    cells
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn any_serve_cell_is_bitwise_identical_serial_vs_sharded(
        cell in 0usize..4,
        seed in 0u64..10_000,
        workers in 2usize..9,
    ) {
        let cells = serve_cells();
        let scenario = cells[cell % cells.len()].clone();
        let serial = scenario
            .clone()
            .with_parallelism(ParallelismConfig::serial())
            .run_traced(seed);
        let parallel = scenario
            .clone()
            .with_parallelism(ParallelismConfig::fixed(workers, 0))
            .run_traced(seed);
        prop_assert_eq!(
            &serial.record,
            &parallel.record,
            "{} seed={} workers={}: records (incl. serve) diverged",
            scenario.name,
            seed,
            workers
        );
        prop_assert_eq!(
            trace::to_jsonl(&serial.events),
            trace::to_jsonl(&parallel.events),
            "{} seed={} workers={}: trace JSONL diverged",
            scenario.name,
            seed,
            workers
        );
    }
}

#[test]
fn clean_serve_run_is_well_formed_at_every_epoch_boundary() {
    let scenario = registry()
        .find("serve-churn-reinvite")
        .expect("headline serve cell registered")
        .clone();
    let epochs = scenario.serve.expect("serve cell has a spec").epochs;
    let run = scenario.run_traced(7);

    let repairs: Vec<bool> = run
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Repair { tree_valid, .. } => Some(*tree_valid),
            _ => None,
        })
        .collect();
    assert_eq!(repairs.len(), epochs, "one repair event per epoch boundary");
    assert!(
        repairs.iter().all(|&valid| valid),
        "clean-network repair must keep the tree well-formed at every boundary"
    );

    let serve = run.record.serve.expect("serve cell records serve outcome");
    assert!(serve.served);
    assert_eq!(serve.wf_violations, 0);
    assert!(run.record.success);
}
