//! Property tests for the traffic subsystem's determinism contract.
//!
//! A traffic run is a pure function of `(scenario, seed)`: the workload is
//! pre-scheduled from a seed derived before any rounds execute, the routers
//! draw no mid-round randomness, and the underlying round loop is
//! bitwise-invariant under worker sharding. So the full `RunRecord` — with
//! its embedded `TrafficRecord` delivery ledgers, hop and latency percentiles
//! and congestion counters — must come out identical whether the round loop
//! steps serially or across worker threads, and whether tracing is attached
//! or not. Sampled over the registered traffic cells, seeds, and worker
//! counts.

use overlay_scenarios::{registry, trace, ParallelismConfig, Scenario};
use proptest::prelude::*;

/// The registered traffic cells (the `traffic-*` family plus any future cell
/// that declares a traffic spec).
fn traffic_cells() -> Vec<&'static Scenario> {
    let cells: Vec<_> = registry().iter().filter(|s| s.traffic.is_some()).collect();
    assert!(!cells.is_empty(), "registry lost its traffic-* family");
    cells
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn any_traffic_cell_is_bitwise_identical_serial_vs_sharded(
        cell in 0usize..8,
        seed in 0u64..10_000,
        workers in 2usize..9,
    ) {
        let cells = traffic_cells();
        let scenario = cells[cell % cells.len()].clone();
        let serial = scenario
            .clone()
            .with_parallelism(ParallelismConfig::serial())
            .run_traced(seed);
        let parallel = scenario
            .clone()
            .with_parallelism(ParallelismConfig::fixed(workers, 0))
            .run_traced(seed);
        prop_assert_eq!(
            &serial.record,
            &parallel.record,
            "{} seed={} workers={}: records (incl. traffic) diverged",
            scenario.name,
            seed,
            workers
        );
        prop_assert_eq!(
            trace::to_jsonl(&serial.events),
            trace::to_jsonl(&parallel.events),
            "{} seed={} workers={}: trace JSONL diverged",
            scenario.name,
            seed,
            workers
        );
    }

    #[test]
    fn tracing_does_not_perturb_a_traffic_run(
        cell in 0usize..8,
        seed in 0u64..10_000,
    ) {
        let cells = traffic_cells();
        let scenario = cells[cell % cells.len()].clone();
        let untraced = scenario.run(seed);
        let traced = scenario.run_traced(seed);
        prop_assert_eq!(
            &untraced,
            &traced.record,
            "{} seed={}: attaching a trace buffer changed the run",
            scenario.name,
            seed
        );
    }
}
