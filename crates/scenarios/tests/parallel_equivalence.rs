//! Property test for the simulator's parallelism contract: any committed
//! matrix cell, run at any seed, produces bitwise-identical results whether
//! the round loop steps nodes serially or sharded across worker threads.
//!
//! Each case draws a random `(scenario, seed, workers)` triple, runs the cell
//! once with parallelism forced off and once with `workers` threads engaged
//! from node 0 up (`min_nodes = 0`, so even n=128 cells take the sharded
//! path), and compares the full [`ForensicRun`]: the `RunRecord`, the phase
//! metrics, and the serialized trace JSONL byte for byte. This is the same
//! identity `sweep_runner --check --par-threshold 0` gates in CI, but sampled
//! across the whole matrix and a spread of worker counts rather than the
//! ambient thread pool.

use overlay_scenarios::{registry, trace, ParallelismConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn any_cell_is_bitwise_identical_serial_vs_parallel(
        cell in 0usize..registry().len(),
        seed in 0u64..10_000,
        workers in 2usize..9,
    ) {
        let scenario = registry().iter().nth(cell).expect("index in range").clone();
        let serial = scenario
            .clone()
            .with_parallelism(ParallelismConfig::serial())
            .run_traced(seed);
        let parallel = scenario
            .clone()
            .with_parallelism(ParallelismConfig::fixed(workers, 0))
            .run_traced(seed);
        prop_assert_eq!(
            &serial.record,
            &parallel.record,
            "{} seed={} workers={}: records diverged",
            scenario.name,
            seed,
            workers
        );
        prop_assert_eq!(
            &serial.report.phase_metrics,
            &parallel.report.phase_metrics,
            "{} seed={} workers={}: phase metrics diverged",
            scenario.name,
            seed,
            workers
        );
        prop_assert_eq!(
            trace::to_jsonl(&serial.events),
            trace::to_jsonl(&parallel.events),
            "{} seed={} workers={}: trace JSONL diverged",
            scenario.name,
            seed,
            workers
        );
    }
}
