//! Centralized graph analysis: BFS, diameter, connected components and degree
//! statistics.
//!
//! These routines run on the *global* view of a graph and are used by the experiment
//! harness to verify the outputs of the distributed algorithms (which themselves only
//! ever use local knowledge).

use crate::{NodeId, UGraph};
use std::collections::VecDeque;

/// Breadth-first search distances from `source`.
///
/// Returns a vector of `Option<usize>`: `None` for unreachable nodes.
pub fn bfs_distances(g: &UGraph, source: NodeId) -> Vec<Option<usize>> {
    let n = g.node_count();
    let mut dist = vec![None; n];
    if source.index() >= n {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The eccentricity of `source`: the largest finite BFS distance from it.
pub fn eccentricity(g: &UGraph, source: NodeId) -> usize {
    bfs_distances(g, source)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// The diameter of the graph (maximum shortest-path distance over all pairs), ignoring
/// edge directions. Returns `None` for disconnected graphs.
///
/// Runs one BFS per node, which is fine for the graph sizes used in experiments.
pub fn diameter(g: &UGraph) -> Option<usize> {
    if g.node_count() == 0 {
        return Some(0);
    }
    if !is_connected(g) {
        return None;
    }
    let mut best = 0usize;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v));
    }
    Some(best)
}

/// A cheaper upper bound for the diameter: twice the eccentricity of node 0.
pub fn diameter_upper_bound(g: &UGraph) -> usize {
    if g.node_count() == 0 {
        return 0;
    }
    2 * eccentricity(g, NodeId::from(0usize))
}

/// Returns `true` if the graph is connected (ignoring edge directions); the empty graph
/// and single nodes count as connected.
pub fn is_connected(g: &UGraph) -> bool {
    let n = g.node_count();
    if n <= 1 {
        return true;
    }
    bfs_distances(g, NodeId::from(0usize))
        .iter()
        .all(Option::is_some)
}

/// The partition of nodes into connected components.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    labels: Vec<usize>,
    count: usize,
}

impl Components {
    /// The component label (`0..component_count()`) of each node.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The component label of a single node.
    pub fn label(&self, v: NodeId) -> usize {
        self.labels[v.index()]
    }

    /// Number of connected components.
    pub fn component_count(&self) -> usize {
        self.count
    }

    /// Returns `true` if `u` and `v` lie in the same component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u.index()] == self.labels[v.index()]
    }

    /// The members of every component.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &label) in self.labels.iter().enumerate() {
            groups[label].push(NodeId::from(i));
        }
        groups
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.members().iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Computes connected components by repeated BFS.
pub fn connected_components(g: &UGraph) -> Components {
    let n = g.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0usize;
    for s in 0..n {
        if labels[s] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        labels[s] = count;
        queue.push_back(NodeId::from(s));
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v.index()] == usize::MAX {
                    labels[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Components { labels, count }
}

/// Degree statistics of a graph.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes minimum, maximum and mean degree.
pub fn degree_stats(g: &UGraph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats::default();
    }
    let degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    DegreeStats {
        min: *degs.iter().min().expect("non-empty"),
        max: *degs.iter().max().expect("non-empty"),
        mean: degs.iter().sum::<usize>() as f64 / n as f64,
    }
}

/// Checks whether `parent` encodes a spanning tree of the (undirected) graph `g`:
/// exactly one root (its own parent), every non-root's parent edge exists in `g`, and
/// following parents from every node reaches the root (no cycles).
pub fn is_spanning_tree(g: &UGraph, parent: &[NodeId]) -> bool {
    let n = g.node_count();
    if parent.len() != n {
        return false;
    }
    let roots: Vec<usize> = (0..n).filter(|&v| parent[v].index() == v).collect();
    if n > 0 && roots.len() != 1 {
        return false;
    }
    // Every parent edge must exist in g.
    for (v, &p) in parent.iter().enumerate() {
        if p.index() == v {
            continue;
        }
        if !g.neighbors(NodeId::from(v)).contains(&p) {
            return false;
        }
    }
    // Following parent pointers must terminate at the root within n steps.
    for v in 0..n {
        let mut cur = v;
        let mut steps = 0usize;
        while parent[cur].index() != cur {
            cur = parent[cur].index();
            steps += 1;
            if steps > n {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_line() {
        let g = generators::line(5).to_undirected();
        let d = bfs_distances(&g, NodeId::from(0usize));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = UGraph::new(3);
        let d = bfs_distances(&g, NodeId::from(0usize));
        assert_eq!(d, vec![Some(0), None, None]);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::line(8).to_undirected()), Some(7));
        assert_eq!(diameter(&generators::cycle(9).to_undirected()), Some(4));
        assert_eq!(diameter(&generators::star(10).to_undirected()), Some(2));
        assert_eq!(diameter(&UGraph::new(0)), Some(0));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = UGraph::new(4);
        assert_eq!(diameter(&g), None);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_upper_bound_holds() {
        for g in [
            generators::line(33),
            generators::cycle(20),
            generators::grid(5, 7),
        ] {
            let u = g.to_undirected();
            assert!(diameter_upper_bound(&u) >= diameter(&u).unwrap());
        }
    }

    #[test]
    fn components_of_forest() {
        let g = generators::disjoint_union(&[generators::line(4), generators::cycle(3)]);
        let comps = connected_components(&g.to_undirected());
        assert_eq!(comps.component_count(), 2);
        assert!(comps.same_component(0.into(), 3.into()));
        assert!(!comps.same_component(0.into(), 4.into()));
        assert_eq!(comps.largest(), 4);
        assert_eq!(comps.members()[1].len(), 3);
    }

    #[test]
    fn degree_stats_of_star() {
        let g = generators::star(11).to_undirected();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!((s.mean - 20.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn spanning_tree_checker_accepts_valid_tree() {
        let g = generators::cycle(6).to_undirected();
        // Parent pointers along the cycle rooted at 0.
        let parent: Vec<NodeId> = (0..6)
            .map(|v| if v == 0 { 0.into() } else { (v - 1).into() })
            .collect();
        assert!(is_spanning_tree(&g, &parent));
    }

    #[test]
    fn spanning_tree_checker_rejects_cycle_and_bad_edges() {
        let g = generators::line(4).to_undirected();
        // Cycle between 1 and 2.
        let bad: Vec<NodeId> = vec![0.into(), 2.into(), 1.into(), 2.into()];
        assert!(!is_spanning_tree(&g, &bad));
        // Parent edge not present in g (0-3 is not an edge of the line).
        let missing: Vec<NodeId> = vec![0.into(), 0.into(), 1.into(), 0.into()];
        assert!(!is_spanning_tree(&g, &missing));
        // Two roots.
        let two_roots: Vec<NodeId> = vec![0.into(), 1.into(), 1.into(), 2.into()];
        assert!(!is_spanning_tree(&g, &two_roots));
    }
}
