//! Workload generators: the initial topologies used by every experiment.
//!
//! All generators return a [`DiGraph`] knowledge graph whose undirected version is the
//! intended topology. Directions follow the natural construction order (e.g. a line has
//! edges pointing towards higher indices), matching the paper's setting where the
//! initial knowledge graph is merely *weakly* connected.
//!
//! Randomized generators take an explicit seed so that every experiment is reproducible.

use crate::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A path (line) graph `0 - 1 - … - (n-1)`.
///
/// This is the paper's canonical worst case: its conductance is `Θ(1/n)` and the two
/// endpoints need `Ω(log n)` rounds to learn about each other.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line(n: usize) -> DiGraph {
    assert!(n > 0, "graph must have at least one node");
    let mut g = DiGraph::new(n);
    for i in 0..n.saturating_sub(1) {
        g.add_edge(i.into(), (i + 1).into());
    }
    g
}

/// A cycle graph `0 - 1 - … - (n-1) - 0`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> DiGraph {
    assert!(n >= 3, "a cycle needs at least three nodes");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        g.add_edge(i.into(), ((i + 1) % n).into());
    }
    g
}

/// A complete binary tree with `n` nodes (node `i` has children `2i+1` and `2i+2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> DiGraph {
    assert!(n > 0, "graph must have at least one node");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                g.add_edge(i.into(), c.into());
            }
        }
    }
    g
}

/// A star with node `0` as the center and `n - 1` leaves.
///
/// Stars are the canonical high-degree input for the hybrid-model algorithms (the center
/// has degree `n - 1`, so the NCC0 algorithm cannot be applied directly).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> DiGraph {
    assert!(n > 0, "graph must have at least one node");
    let mut g = DiGraph::new(n);
    for i in 1..n {
        g.add_edge(0.into(), i.into());
    }
    g
}

/// A `rows × cols` grid graph.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> DiGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let idx = |r: usize, c: usize| NodeId::from(r * cols + c);
    let mut g = DiGraph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// A `d`-dimensional hypercube with `2^d` nodes.
///
/// # Panics
///
/// Panics if `d > 20` (guard against accidental huge graphs).
pub fn hypercube(d: u32) -> DiGraph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut g = DiGraph::new(n);
    for v in 0..n {
        for b in 0..d {
            let w = v ^ (1usize << b);
            if w > v {
                g.add_edge(v.into(), w.into());
            }
        }
    }
    g
}

/// A lollipop-like graph: a clique of `clique` nodes attached to a path of `tail` nodes.
///
/// The bottleneck edge between the clique and the tail gives the graph a very small
/// conductance, which makes it a good stress test for conductance-growth experiments.
///
/// # Panics
///
/// Panics if `clique < 2` or `tail == 0`.
pub fn lollipop(clique: usize, tail: usize) -> DiGraph {
    assert!(clique >= 2, "clique part needs at least two nodes");
    assert!(tail > 0, "tail must be non-empty");
    let n = clique + tail;
    let mut g = DiGraph::new(n);
    for i in 0..clique {
        for j in i + 1..clique {
            g.add_edge(i.into(), j.into());
        }
    }
    // Attach the tail to clique node 0.
    g.add_edge(0.into(), clique.into());
    for i in clique..n - 1 {
        g.add_edge(i.into(), (i + 1).into());
    }
    g
}

/// A barbell graph: two cliques of size `clique` connected by a path of `bridge` nodes.
///
/// # Panics
///
/// Panics if `clique < 2`.
pub fn barbell(clique: usize, bridge: usize) -> DiGraph {
    assert!(clique >= 2, "clique part needs at least two nodes");
    let n = 2 * clique + bridge;
    let mut g = DiGraph::new(n);
    let add_clique = |g: &mut DiGraph, offset: usize| {
        for i in 0..clique {
            for j in i + 1..clique {
                g.add_edge((offset + i).into(), (offset + j).into());
            }
        }
    };
    add_clique(&mut g, 0);
    add_clique(&mut g, clique + bridge);
    // Path from node 0 of the first clique through the bridge to node 0 of the second.
    let mut prev = 0usize;
    for b in 0..bridge {
        g.add_edge(prev.into(), (clique + b).into());
        prev = clique + b;
    }
    g.add_edge(prev.into(), (clique + bridge).into());
    g
}

/// An Erdős–Rényi graph `G(n, p)` (undirected edges added with probability `p`, oriented
/// from the lower to the higher index).
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in i + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(i.into(), j.into());
            }
        }
    }
    g
}

/// A connected Erdős–Rényi-style graph: `G(n, p)` plus a random Hamiltonian path to
/// guarantee (weak) connectivity.
pub fn connected_random(n: usize, p: f64, seed: u64) -> DiGraph {
    assert!(n > 0, "graph must have at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut g = erdos_renyi(n, p, seed.wrapping_add(1));
    for w in order.windows(2) {
        g.add_edge(w[0].into(), w[1].into());
    }
    g
}

/// A random `d`-regular-ish graph built from `d/2` superimposed random Hamiltonian
/// cycles (for even `d`), a standard construction that is `d`-regular and connected.
///
/// # Panics
///
/// Panics if `d` is odd, `d == 0`, or `n <= d`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> DiGraph {
    assert!(
        d > 0 && d.is_multiple_of(2),
        "degree must be positive and even"
    );
    assert!(n > d, "need more nodes than the degree");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for _ in 0..d / 2 {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        for i in 0..n {
            let u = order[i];
            let v = order[(i + 1) % n];
            g.add_edge(u.into(), v.into());
        }
    }
    g
}

/// A "caveman"-style graph of `communities` cliques of size `size`, consecutive cliques
/// linked by a single edge (the last one also linked to the first when there are at
/// least three communities, forming a ring of cliques).
///
/// # Panics
///
/// Panics if `communities == 0` or `size < 2`.
pub fn caveman(communities: usize, size: usize) -> DiGraph {
    assert!(communities > 0, "need at least one community");
    assert!(size >= 2, "communities need at least two nodes");
    let n = communities * size;
    let mut g = DiGraph::new(n);
    for c in 0..communities {
        let base = c * size;
        for i in 0..size {
            for j in i + 1..size {
                g.add_edge((base + i).into(), (base + j).into());
            }
        }
    }
    for c in 0..communities.saturating_sub(1) {
        g.add_edge((c * size).into(), ((c + 1) * size).into());
    }
    if communities >= 3 {
        g.add_edge(((communities - 1) * size).into(), 0.into());
    }
    g
}

/// A forest of `k` disjoint components, each generated by `component(i)` with
/// `i ∈ 0..k`, re-labelled to disjoint identifier ranges.
///
/// Used by the connected-components experiments (Theorem 1.2).
pub fn disjoint_union(components: &[DiGraph]) -> DiGraph {
    let total: usize = components.iter().map(DiGraph::node_count).sum();
    let mut g = DiGraph::new(total);
    let mut offset = 0usize;
    for c in components {
        for (u, v) in c.edges() {
            g.add_edge((u.index() + offset).into(), (v.index() + offset).into());
        }
        offset += c.node_count();
    }
    g
}

/// A graph with planted articulation structure: `blocks` biconnected blocks (cycles of
/// length `block_len`) chained together so that consecutive blocks share exactly one cut
/// vertex.
///
/// Used by the biconnectivity experiments (Theorem 1.4): the expected biconnected
/// components are exactly the blocks, and the shared vertices are the cut nodes.
///
/// # Panics
///
/// Panics if `blocks == 0` or `block_len < 3`.
pub fn chained_cycles(blocks: usize, block_len: usize) -> DiGraph {
    assert!(blocks > 0, "need at least one block");
    assert!(block_len >= 3, "cycle blocks need at least three nodes");
    // Block i occupies nodes [i*(block_len-1), i*(block_len-1) + block_len - 1],
    // sharing its last node with the next block's first node.
    let n = blocks * (block_len - 1) + 1;
    let mut g = DiGraph::new(n);
    for b in 0..blocks {
        let base = b * (block_len - 1);
        for i in 0..block_len {
            let u = base + i;
            let v = base + (i + 1) % block_len;
            g.add_edge(u.into(), v.into());
        }
    }
    g
}

/// Randomly relabels the nodes of a graph (edge structure preserved up to isomorphism).
///
/// Useful to rule out accidental dependence on identifier order in the algorithms.
pub fn shuffle_labels(g: &DiGraph, seed: u64) -> DiGraph {
    let n = g.node_count();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    let mut out = DiGraph::new(n);
    for (u, v) in g.edges() {
        out.add_edge(perm[u.index()].into(), perm[v.index()].into());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn line_shape() {
        let g = line(10);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 9);
        let u = g.to_undirected();
        assert!(analysis::is_connected(&u));
        assert_eq!(analysis::diameter(&u), Some(9));
    }

    #[test]
    fn single_node_line() {
        let g = line(1);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(8);
        assert_eq!(g.edge_count(), 8);
        let u = g.to_undirected();
        assert!(u.nodes().all(|v| u.degree(v) == 2));
        assert_eq!(analysis::diameter(&u), Some(4));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        let u = g.to_undirected();
        assert!(analysis::is_connected(&u));
        assert_eq!(analysis::diameter(&u), Some(6));
    }

    #[test]
    fn star_shape() {
        let g = star(17);
        assert_eq!(g.out_degree(0.into()), 16);
        assert_eq!(g.degree(), 16);
        assert!(analysis::is_connected(&g.to_undirected()));
    }

    #[test]
    fn grid_shape() {
        let g = grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 4 * 4 + 3 * 5);
        assert_eq!(analysis::diameter(&g.to_undirected()), Some(7));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 32);
        let u = g.to_undirected();
        assert!(u.nodes().all(|v| u.degree(v) == 4));
        assert_eq!(analysis::diameter(&u), Some(4));
    }

    #[test]
    fn lollipop_connected() {
        let g = lollipop(8, 8);
        assert_eq!(g.node_count(), 16);
        assert!(analysis::is_connected(&g.to_undirected()));
    }

    #[test]
    fn barbell_connected() {
        let g = barbell(5, 3);
        assert_eq!(g.node_count(), 13);
        assert!(analysis::is_connected(&g.to_undirected()));
    }

    #[test]
    fn erdos_renyi_bounds_and_determinism() {
        let g1 = erdos_renyi(50, 0.1, 7);
        let g2 = erdos_renyi(50, 0.1, 7);
        assert_eq!(g1, g2);
        assert!(g1.edge_count() < 50 * 49 / 2);
        let g3 = erdos_renyi(50, 0.1, 8);
        assert_ne!(g1, g3);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(20, 0.0, 1).edge_count(), 0);
        assert_eq!(erdos_renyi(20, 1.0, 1).edge_count(), 190);
    }

    #[test]
    fn connected_random_is_connected() {
        let g = connected_random(64, 0.02, 3);
        assert!(analysis::is_connected(&g.to_undirected()));
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let g = random_regular(40, 4, 11);
        let u = g.to_undirected();
        // Multi-edges may merge in the simple undirected view, so check the directed
        // slot counts instead: every node appears in exactly d cycle positions.
        let indeg = g.in_degrees();
        for v in g.nodes() {
            assert_eq!(g.out_degree(v) + indeg[v.index()], 4);
        }
        assert!(analysis::is_connected(&u));
    }

    #[test]
    fn caveman_structure() {
        let g = caveman(4, 5);
        assert_eq!(g.node_count(), 20);
        assert!(analysis::is_connected(&g.to_undirected()));
    }

    #[test]
    fn disjoint_union_components() {
        let parts = vec![cycle(5), line(7), binary_tree(3)];
        let g = disjoint_union(&parts);
        assert_eq!(g.node_count(), 15);
        let comps = analysis::connected_components(&g.to_undirected());
        assert_eq!(comps.component_count(), 3);
    }

    #[test]
    fn chained_cycles_counts() {
        let g = chained_cycles(3, 4);
        assert_eq!(g.node_count(), 3 * 3 + 1);
        assert!(analysis::is_connected(&g.to_undirected()));
    }

    #[test]
    fn shuffle_preserves_counts() {
        let g = grid(3, 3);
        let s = shuffle_labels(&g, 5);
        assert_eq!(g.node_count(), s.node_count());
        assert_eq!(g.edge_count(), s.edge_count());
        assert_eq!(
            analysis::diameter(&g.to_undirected()),
            analysis::diameter(&s.to_undirected())
        );
    }

    #[test]
    #[should_panic(expected = "at least three nodes")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    #[should_panic(expected = "degree must be positive and even")]
    fn odd_regular_panics() {
        random_regular(10, 3, 0);
    }
}
