//! Graph substrate for the *Time-Optimal Construction of Overlay Networks* reproduction.
//!
//! This crate provides everything the distributed algorithms and the experiment harness
//! need to talk about graphs:
//!
//! * [`NodeId`] — the opaque identifier type used throughout the workspace,
//! * [`DiGraph`] — the directed *knowledge graph* of the paper's model (an edge `(u, v)`
//!   means `u` knows `id(v)`),
//! * [`UGraph`] — an undirected multigraph with explicit self-loops, used for the
//!   *benign* communication graphs maintained by `CreateExpander`,
//! * [`generators`] — workload generators (lines, cycles, trees, random regular graphs,
//!   Erdős–Rényi graphs, grids, lollipops, …) used as the initial topologies of every
//!   experiment,
//! * [`analysis`] — BFS, diameter, connected components, degree statistics,
//! * [`cuts`] — conductance (exact for small graphs, sweep/spectral estimates otherwise)
//!   and global minimum cuts (Stoer–Wagner),
//! * [`spectral`] — power-iteration estimation of the lazy random-walk spectral gap,
//! * [`sequential`] — centralized reference algorithms (union-find components, Tarjan
//!   biconnectivity, Kruskal spanning trees, greedy MIS and validity checkers) that the
//!   distributed implementations are verified against.
//!
//! # Example
//!
//! ```
//! use overlay_graph::{generators, analysis};
//!
//! let g = generators::cycle(64);
//! assert!(analysis::is_connected(&g.to_undirected()));
//! assert_eq!(analysis::diameter(&g.to_undirected()), Some(32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cuts;
pub mod generators;
pub mod graph;
mod ids;
pub mod sequential;
pub mod spectral;
pub mod ugraph;

pub use graph::DiGraph;
pub use ids::NodeId;
pub use ugraph::UGraph;
