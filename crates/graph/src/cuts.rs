//! Conductance and minimum cuts.
//!
//! The analysis of `CreateExpander` is driven by two quantities of the benign
//! communication graph: its (small-set) conductance and the size of its minimum cut.
//! This module provides
//!
//! * exact conductance by exhaustive enumeration for small graphs (used by unit tests),
//! * conductance of explicitly given sets ([`set_conductance`]),
//! * a practical conductance estimate combining spectral sweep cuts with a family of
//!   natural candidate cuts ([`conductance_estimate`]),
//! * the global minimum cut via the Stoer–Wagner algorithm on the collapsed weighted
//!   graph ([`min_cut`]).

use crate::spectral;
use crate::{NodeId, UGraph};
use std::collections::BTreeSet;

/// Conductance of a node set `S` in `g`, following Definition 1.7 of the paper:
/// the number of edge slots leaving `S` divided by `Δ·|S|` where `Δ` is the maximum
/// degree of the graph.
///
/// Returns `None` if the set is empty or contains every node.
pub fn set_conductance(g: &UGraph, set: &BTreeSet<NodeId>) -> Option<f64> {
    if set.is_empty() || set.len() >= g.node_count() {
        return None;
    }
    let delta = g.max_degree();
    if delta == 0 {
        return Some(0.0);
    }
    let boundary = g.boundary_size(set) as f64;
    Some(boundary / (delta as f64 * set.len() as f64))
}

/// Exact conductance `Φ(G)` by enumerating every subset of at most half the nodes.
///
/// Only feasible for very small graphs; intended for unit tests that validate the
/// estimators.
///
/// # Panics
///
/// Panics if the graph has more than 20 nodes.
pub fn exact_conductance(g: &UGraph) -> f64 {
    let n = g.node_count();
    assert!(
        n <= 20,
        "exact conductance is exponential; use conductance_estimate"
    );
    if n <= 1 {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for mask in 1u32..(1u32 << n) - 1 {
        let size = mask.count_ones() as usize;
        if size > n / 2 {
            continue;
        }
        let set: BTreeSet<NodeId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(NodeId::from)
            .collect();
        if let Some(phi) = set_conductance(g, &set) {
            best = best.min(phi);
        }
    }
    if best.is_finite() {
        best
    } else {
        0.0
    }
}

/// A practical upper estimate of the conductance `Φ(G)`.
///
/// Combines:
/// * sweep cuts over an approximate second eigenvector of the lazy random walk
///   (the standard spectral partitioning heuristic, see [`spectral`]),
/// * sweep cuts over the identifier order (which captures the worst cuts of lines,
///   lollipops and other "ordered" topologies),
/// * all singleton cuts.
///
/// The returned value is the conductance of an actual cut, so it is always an upper
/// bound on `Φ(G)`; for the graph families used in the experiments it is a tight one.
pub fn conductance_estimate(g: &UGraph, seed: u64) -> f64 {
    let n = g.node_count();
    if n <= 1 {
        return 0.0;
    }
    if n <= 16 {
        return exact_conductance(g);
    }
    let mut best = f64::INFINITY;

    // Singletons.
    for v in g.nodes() {
        let set: BTreeSet<NodeId> = [v].into_iter().collect();
        if let Some(phi) = set_conductance(g, &set) {
            best = best.min(phi);
        }
    }

    // Sweep over the identifier order.
    best = best.min(sweep_order(
        g,
        &(0..n).map(NodeId::from).collect::<Vec<_>>(),
    ));

    // Sweep over the spectral embedding order.
    let embedding = spectral::fiedler_embedding(g, 200, seed);
    let mut order: Vec<NodeId> = (0..n).map(NodeId::from).collect();
    order.sort_by(|a, b| {
        embedding[a.index()]
            .partial_cmp(&embedding[b.index()])
            .expect("embedding values are finite")
    });
    best = best.min(sweep_order(g, &order));

    best
}

/// Minimum conductance over all prefixes of the given order containing at most half the
/// nodes.
fn sweep_order(g: &UGraph, order: &[NodeId]) -> f64 {
    let n = g.node_count();
    let delta = g.max_degree().max(1);
    let mut in_set = vec![false; n];
    let mut boundary: i64 = 0;
    let mut best = f64::INFINITY;
    for (i, &v) in order.iter().enumerate() {
        // Adding v to the set: an edge from v to an outside node adds one boundary slot
        // (at v); an edge from v to an inside node removes the boundary slot previously
        // counted at that inside endpoint.
        for &w in g.neighbors(v) {
            if w == v {
                continue;
            }
            if in_set[w.index()] {
                boundary -= 1;
            } else {
                boundary += 1;
            }
        }
        // Self-loops never cross the cut.
        in_set[v.index()] = true;
        let size = i + 1;
        if size > n / 2 {
            break;
        }
        let phi = boundary.max(0) as f64 / (delta as f64 * size as f64);
        best = best.min(phi);
    }
    best
}

/// The global minimum cut of `g` (number of edges, counting multiplicities, whose
/// removal disconnects the graph), computed with the Stoer–Wagner algorithm on the
/// collapsed weighted graph. Self-loops are ignored (they never cross a cut).
///
/// Returns `0` for graphs that are already disconnected and `usize::MAX` for graphs
/// with fewer than two nodes.
pub fn min_cut(g: &UGraph) -> usize {
    let n = g.node_count();
    if n < 2 {
        return usize::MAX;
    }
    // Collapse the multigraph into a weight matrix.
    let mut w = vec![vec![0u64; n]; n];
    for (u, a) in (0..n).map(|u| (u, g.neighbors(NodeId::from(u)))) {
        for &v in a {
            if v.index() != u {
                w[u][v.index()] += 1;
            }
        }
    }
    // Note: neighbors() stores a non-loop edge once at each endpoint, so w[u][v] above
    // already equals the edge multiplicity (we added 1 at u for the slot pointing to v).
    stoer_wagner(w)
}

/// Stoer–Wagner minimum cut on a dense weight matrix. Returns the weight of the global
/// minimum cut; `0` if the graph is disconnected.
fn stoer_wagner(mut w: Vec<Vec<u64>>) -> usize {
    let n = w.len();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        let m = active.len();
        let mut in_a = vec![false; m];
        let mut weights = vec![0u64; m];
        let mut prev = 0usize;
        let mut last = 0usize;
        for it in 0..m {
            // Select the most tightly connected remaining vertex.
            let mut sel = usize::MAX;
            for i in 0..m {
                if !in_a[i] && (sel == usize::MAX || weights[i] > weights[sel]) {
                    sel = i;
                }
            }
            in_a[sel] = true;
            if it == m - 1 {
                best = best.min(weights[sel]);
                last = sel;
                // Merge `last` into `prev`.
                for i in 0..m {
                    if i != last && i != prev {
                        w[active[prev]][active[i]] += w[active[last]][active[i]];
                        w[active[i]][active[prev]] = w[active[prev]][active[i]];
                    }
                }
                break;
            }
            prev = sel;
            for i in 0..m {
                if !in_a[i] {
                    weights[i] += w[active[sel]][active[i]];
                }
            }
        }
        active.remove(last);
    }
    if best == u64::MAX {
        0
    } else {
        best as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn to_ug(g: &crate::DiGraph) -> UGraph {
        let mut u = UGraph::new(g.node_count());
        for (a, b) in g.edges() {
            if a != b {
                u.add_edge(a, b);
            }
        }
        u
    }

    #[test]
    fn set_conductance_of_half_line() {
        let g = to_ug(&generators::line(8));
        let set: BTreeSet<NodeId> = (0..4).map(NodeId::from).collect();
        // One crossing edge, Δ = 2, |S| = 4.
        assert_eq!(set_conductance(&g, &set), Some(1.0 / 8.0));
    }

    #[test]
    fn set_conductance_rejects_trivial_sets() {
        let g = to_ug(&generators::line(4));
        assert_eq!(set_conductance(&g, &BTreeSet::new()), None);
        let all: BTreeSet<NodeId> = (0..4).map(NodeId::from).collect();
        assert_eq!(set_conductance(&g, &all), None);
    }

    #[test]
    fn exact_conductance_of_small_graphs() {
        // Complete graph K4: every set of size 1 has conductance 3/3 = 1, size 2 has
        // 4/(3*2) = 2/3, so Φ = 2/3.
        let g = to_ug(&generators::erdos_renyi(4, 1.0, 0));
        assert!((exact_conductance(&g) - 2.0 / 3.0).abs() < 1e-9);

        // Path of 8: worst cut splits it in half over a single edge.
        let p = to_ug(&generators::line(8));
        assert!((exact_conductance(&p) - 1.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_upper_bounds_exact_on_small_graphs() {
        for g in [
            to_ug(&generators::line(12)),
            to_ug(&generators::cycle(12)),
            to_ug(&generators::grid(3, 4)),
        ] {
            let exact = exact_conductance(&g);
            let est = conductance_estimate(&g, 1);
            assert!(est + 1e-9 >= exact, "estimate {est} below exact {exact}");
            // For these ordered topologies the sweep finds the exact cut.
            assert!(est <= exact * 1.5 + 1e-9);
        }
    }

    #[test]
    fn estimate_finds_line_bottleneck() {
        let g = to_ug(&generators::line(256));
        let est = conductance_estimate(&g, 3);
        // The optimal cut has conductance 1/(2*128); the identifier sweep finds it.
        assert!((est - 1.0 / 256.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_on_expander_is_large() {
        let g = to_ug(&generators::hypercube(6));
        let est = conductance_estimate(&g, 3);
        assert!(est > 0.1, "hypercube conductance estimate too small: {est}");
    }

    #[test]
    fn min_cut_of_line_and_cycle() {
        assert_eq!(min_cut(&to_ug(&generators::line(10))), 1);
        assert_eq!(min_cut(&to_ug(&generators::cycle(10))), 2);
        assert_eq!(min_cut(&to_ug(&generators::hypercube(4))), 4);
    }

    #[test]
    fn min_cut_counts_multiplicity() {
        let mut g = UGraph::new(4);
        // Two parallel edges between the halves.
        g.add_edge(0.into(), 1.into());
        g.add_edge(2.into(), 3.into());
        g.add_edge(1.into(), 2.into());
        g.add_edge(1.into(), 2.into());
        assert_eq!(min_cut(&g), 1); // cutting off node 0 costs 1
        g.add_edge(0.into(), 3.into());
        g.add_edge(0.into(), 2.into());
        assert_eq!(min_cut(&g), 2);
    }

    #[test]
    fn min_cut_of_disconnected_graph_is_zero() {
        let g = UGraph::new(5);
        assert_eq!(min_cut(&g), 0);
    }

    #[test]
    fn min_cut_ignores_self_loops() {
        let mut g = UGraph::new(2);
        g.add_edge(0.into(), 1.into());
        g.add_self_loop(0.into());
        g.add_self_loop(1.into());
        assert_eq!(min_cut(&g), 1);
    }
}
